#!/usr/bin/env python
"""Quickstart: run a synthetic workload under GRASS and the LATE baseline.

This is the 60-second tour of the library:

1. generate a Facebook-like synthetic workload of approximation jobs,
2. run it through the discrete-event cluster simulator twice — once under
   the production baseline (LATE) and once under GRASS,
3. print the paper's headline metrics: average accuracy of deadline-bound
   jobs and average duration of error-bound jobs.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Grass,
    GrassConfig,
    LatePolicy,
    Simulation,
    SimulationConfig,
    ClusterConfig,
    WorkloadConfig,
    generate_workload,
)


def main() -> None:
    workload_config = WorkloadConfig(
        workload="facebook",
        framework="hadoop",
        num_jobs=40,
        bound_kind="mixed",      # half deadline-bound, half error-bound
        size_scale=0.25,          # shrink jobs so the demo runs in seconds
        max_tasks_per_job=300,
        seed=7,
    )
    workload = generate_workload(workload_config)
    print(f"generated {len(workload)} jobs "
          f"({sum(spec.num_tasks for spec in workload.specs())} tasks)")

    framework = workload_config.framework_profile
    simulation_config = SimulationConfig(
        cluster=ClusterConfig(num_machines=150, seed=1),
        stragglers=framework.stragglers,
        estimator=framework.estimator,
        seed=1,
    )

    for label, policy in (("LATE (baseline)", LatePolicy()),
                          ("GRASS", Grass(GrassConfig(seed=1)))):
        metrics = Simulation(simulation_config, policy, workload.specs()).run()
        summary = metrics.summary()
        print(f"\n== {label}")
        print(f"  deadline-bound jobs: average accuracy = {summary['avg_accuracy']:.3f}")
        print(f"  error-bound jobs:    average duration = {summary['avg_duration']:.1f}s")
        print(f"  speculative copies:  {metrics.speculative_copies_launched} "
              f"({100 * summary['speculation_ratio']:.1f}% of all copies)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Extending the library: plug a custom speculation policy into the simulator.

The scheduler interface is a single method — ``choose_task(view)`` — so new
policies are easy to prototype.  This example implements a naive
"duplicate-everything-in-the-last-wave" policy, wires it into the simulator,
and compares it against GS, RAS and GRASS on a small workload, demonstrating
that the interface used by the built-in policies is the same one available to
downstream users.

Run with::

    python examples/custom_policy.py
"""

from typing import Optional

from repro import (
    Grass,
    GrassConfig,
    GreedySpeculative,
    ResourceAwareSpeculative,
    Simulation,
    SimulationConfig,
    ClusterConfig,
    StragglerConfig,
    WorkloadConfig,
    generate_workload,
)
from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
    make_decision,
)


class LastWaveDuplicator(SpeculationPolicy):
    """Run originals first; once none are left, duplicate the slowest task.

    This is deliberately simplistic — it ignores the approximation bound and
    the resource cost of duplication — and serves as a template for writing
    your own policy.
    """

    name = "last-wave-duplicator"

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        pending = view.pending()
        if pending:
            return make_decision(min(pending, key=lambda snap: snap.task_id))
        running = [snap for snap in view.running() if snap.copies < 2]
        if not running:
            return None
        return make_decision(max(running, key=lambda snap: snap.trem))


def main() -> None:
    workload = generate_workload(
        WorkloadConfig(bound_kind="error", num_jobs=20, size_scale=0.2, max_tasks_per_job=200, seed=5)
    )
    policies = {
        "last-wave duplicator (custom)": LastWaveDuplicator(),
        "GS": GreedySpeculative(),
        "RAS": ResourceAwareSpeculative(),
        "GRASS": Grass(GrassConfig(seed=5)),
    }
    print("average error-bound job duration under each policy\n")
    for label, policy in policies.items():
        config = SimulationConfig(
            cluster=ClusterConfig(num_machines=120, seed=2),
            stragglers=StragglerConfig(),
            seed=2,
        )
        metrics = Simulation(config, policy, workload.specs()).run()
        print(f"  {label:<30} {metrics.average_duration():8.1f}s")


if __name__ == "__main__":
    main()

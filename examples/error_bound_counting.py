#!/usr/bin/env python
"""Error-bound scenario: approximate counting to the nearest thousand (§2.1).

The paper's motivating error-bound example is counting cars crossing a road
section where an answer within a known error is good enough.  Each job here
only needs (1 - error) of its input tasks; the metric is how quickly the
required fraction completes.  The example sweeps the error bound from exact
(0 %) to 30 % and compares LATE with GRASS, showing both the speedup from
approximation itself and the extra speedup from bound-aware speculation.

Run with::

    python examples/error_bound_counting.py
"""

from repro import (
    ApproximationBound,
    ClusterConfig,
    Grass,
    GrassConfig,
    LatePolicy,
    Simulation,
    SimulationConfig,
    StragglerConfig,
)
from repro.dag import map_only_job
from repro.workload.profiles import framework_profile


def build_counting_job(error: float, job_id: int):
    """A 300-task scan over sensor logs, allotted 60 slots (5 waves)."""
    bound = ApproximationBound.exact() if not error else ApproximationBound.with_error(error)
    return map_only_job(
        job_id=job_id,
        task_works=[5.0] * 300,
        bound=bound,
        max_slots=60,
        name=f"car-count-{int(error * 100)}pct",
    )


def main() -> None:
    spark = framework_profile("spark")
    error_bounds = [0.0, 0.05, 0.10, 0.20, 0.30]
    print("time to reach the error bound (seconds, mean of 3 runs)\n")
    print(f"{'error bound':>12} | {'LATE':>8} | {'GRASS':>8} | speedup")
    print("-" * 48)
    for error in error_bounds:
        durations = {"late": [], "grass": []}
        for seed in range(3):
            config = SimulationConfig(
                cluster=ClusterConfig(num_machines=80, seed=seed),
                stragglers=StragglerConfig(),
                estimator=spark.estimator,
                seed=seed,
            )
            job = build_counting_job(error, job_id=0)
            durations["late"].append(
                Simulation(config, LatePolicy(), [job]).run().results[0].duration
            )
            durations["grass"].append(
                Simulation(config, Grass(GrassConfig(seed=seed)), [job]).run().results[0].duration
            )
        late = sum(durations["late"]) / 3
        grass = sum(durations["grass"]) / 3
        speedup = 100.0 * (late - grass) / late if late else 0.0
        label = "exact" if not error else f"{int(error * 100)}%"
        print(f"{label:>12} | {late:8.1f} | {grass:8.1f} | {speedup:5.1f}%")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Deadline-bound scenario: a real-time advertising dashboard (§2.1).

A dashboard query must return within a hard deadline; whatever fraction of
the data has been processed by then determines the answer's accuracy.  This
example builds one large multi-waved aggregation job (map + reduce), runs it
under every speculation policy, and reports the accuracy each policy reaches
by the deadline — illustrating why bound-aware speculation matters.

Run with::

    python examples/deadline_dashboard.py
"""

from repro import (
    ApproximationBound,
    ClusterConfig,
    Grass,
    GrassConfig,
    GreedySpeculative,
    LatePolicy,
    MantriPolicy,
    NoSpeculationPolicy,
    ResourceAwareSpeculative,
    Simulation,
    SimulationConfig,
    StragglerConfig,
)
from repro.dag import map_reduce_job
from repro.workload.profiles import framework_profile


def build_query_job(deadline: float):
    """A 400-way scan feeding 40 reducers, allotted 100 slots (4 waves)."""
    map_works = [6.0] * 400
    reduce_works = [8.0] * 40
    return map_reduce_job(
        job_id=0,
        map_works=map_works,
        reduce_works=reduce_works,
        bound=ApproximationBound.with_deadline(deadline),
        max_slots=100,
        name="ads-dashboard-query",
    )


def main() -> None:
    hadoop = framework_profile("hadoop")
    deadline = 6.0 * 4 * 1.15 + 8.0  # four map waves plus one reduce wave, 15% slack
    policies = {
        "no speculation": NoSpeculationPolicy(),
        "LATE": LatePolicy(),
        "Mantri": MantriPolicy(),
        "GS only": GreedySpeculative(),
        "RAS only": ResourceAwareSpeculative(),
        "GRASS": Grass(GrassConfig(seed=3)),
    }
    print(f"dashboard query with deadline {deadline:.1f}s; accuracy = fraction of map tasks done\n")
    for label, policy in policies.items():
        accuracies = []
        for seed in range(3):
            config = SimulationConfig(
                cluster=ClusterConfig(num_machines=120, seed=seed),
                stragglers=StragglerConfig(),  # production-calibrated heavy tail
                estimator=hadoop.estimator,
                seed=seed,
            )
            metrics = Simulation(config, policy, [build_query_job(deadline)]).run()
            accuracies.append(metrics.results[0].accuracy)
        mean_accuracy = sum(accuracies) / len(accuracies)
        print(f"  {label:<15} accuracy at the deadline: {100 * mean_accuracy:5.1f}%")


if __name__ == "__main__":
    main()

"""Ablation: how estimator accuracy affects RAS/GRASS gains (DESIGN.md §5).

The paper's prototypes achieve ~72 % / 76 % estimator accuracy (§5.1) and
GRASS uses the realised accuracy as a switching factor.  This ablation runs
the same workload with a perfect, a default and a heavily degraded estimator
and reports the error-bound speedup over LATE for each, showing how much of
the gain survives bad estimates.
"""

from benchmarks.conftest import bench_scale
from repro.core.estimators import EstimatorConfig
from repro.core.policies import ResourceAwareSpeculative
from repro.baselines import LatePolicy
from repro.experiments.runner import build_simulation_config, improvement_in_duration
from repro.simulator.engine import Simulation, SimulationConfig
from repro.utils.stats import mean
from repro.workload.synthetic import WorkloadConfig, generate_workload

ESTIMATORS = {
    "perfect": EstimatorConfig.perfect(),
    "default": EstimatorConfig(),
    "degraded-4x": EstimatorConfig.degraded(4.0),
}


def _run_ablation():
    scale = bench_scale()
    workload = generate_workload(
        WorkloadConfig(
            bound_kind="error",
            num_jobs=scale.num_jobs,
            size_scale=scale.size_scale,
            max_tasks_per_job=scale.max_tasks_per_job,
            seed=31,
        )
    )
    rows = []
    base_config = build_simulation_config(workload, scale, seed=1, oracle_estimates=False)
    late = Simulation(base_config, LatePolicy(), workload.specs()).run()
    late_duration = mean([r.duration for r in late.error_results()])
    for label, estimator in ESTIMATORS.items():
        config = SimulationConfig(
            cluster=base_config.cluster,
            stragglers=base_config.stragglers,
            estimator=estimator,
            seed=base_config.seed,
        )
        metrics = Simulation(config, ResourceAwareSpeculative(), workload.specs()).run()
        duration = mean([r.duration for r in metrics.error_results()])
        rows.append(
            {
                "estimator": label,
                "avg duration": duration,
                "speedup vs late (%)": improvement_in_duration(late_duration, duration),
            }
        )
    return rows


def test_ablation_estimator_accuracy(benchmark):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            f"estimator={row['estimator']:<12} avg_duration={row['avg duration']:8.1f}s "
            f"speedup_vs_late={row['speedup vs late (%)']:6.1f}%"
        )
    perfect = next(r for r in rows if r["estimator"] == "perfect")
    degraded = next(r for r in rows if r["estimator"] == "degraded-4x")
    # Better estimates must never make speculation slower in aggregate.
    assert perfect["avg duration"] <= degraded["avg duration"] * 1.15

"""Figure 15: sensitivity of GRASS to the perturbation probability ξ."""

from benchmarks.conftest import regenerate


def test_figure15_perturbation(benchmark):
    result = regenerate(benchmark, "figure15")
    xis = {row["xi (%)"] for row in result.rows}
    assert 0.0 in xis and 15.0 in xis

"""Micro-benchmark: lazy job-spec streaming inside one simulation.

Times ``runner.replay_stream(stream_specs=True)`` — requests carry a
``TraceSpecSource`` window description, the engine ingests specs through its
one-spec lookahead and evicts finished jobs — against the batch fan-out over
the same synthesized trace, asserts their digests match, and records the
wall-clocks plus the engine's peak-resident-jobs gauge under the
``stream-specs`` kind in ``BENCH_engine.json``.

The trace is deliberately *longer* than the figure-bench workloads (count
scaled up, task sizes scaled down) because the number this bench exists to
track is the residency *ratio*: peak concurrently-resident jobs over trace
length, which must stay ``O(max concurrent)`` — a few percent — however long
the trace grows.
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_scale, bench_scale_name, record_benchmark
from repro.experiments.cli import metrics_digest
from repro.experiments.runner import replay, replay_stream
from repro.workload.trace_replay import TraceReplayConfig, synthesize_trace
from repro.workload.traces import save_trace

#: Trace-length multiplier over the bench scale's job count (see module docs).
TRACE_LENGTH_FACTOR = 12


def test_stream_specs_wall_clock(benchmark, tmp_path):
    scale = bench_scale()
    num_jobs = scale.num_jobs * TRACE_LENGTH_FACTOR
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        num_jobs=num_jobs,
        size_scale=scale.size_scale / 2,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=17,
    )
    path = tmp_path / "bench_trace.jsonl"
    save_trace(trace, path)
    replay_config = TraceReplayConfig(seed=17)

    started = time.perf_counter()
    batch = replay(
        ["gs"], trace, replay_config=replay_config, scale=scale,
        shards=1, workers=scale.workers,
    )
    batch_seconds = time.perf_counter() - started

    def run_stream():
        return replay_stream(
            ["gs"], path, replay_config=replay_config, scale=scale,
            shards=1, workers=scale.workers, stream_specs=True,
        )

    started = time.perf_counter()
    streamed = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    stream_seconds = time.perf_counter() - started

    digests_match = metrics_digest(streamed.comparison) == metrics_digest(batch)
    residency_ratio = streamed.peak_resident_jobs / num_jobs
    record_benchmark(
        "stream-specs",
        "gs",
        wall_time_seconds=round(stream_seconds, 3),
        wall_time_batch_seconds=round(batch_seconds, 3),
        trace_jobs=num_jobs,
        peak_resident_jobs=streamed.peak_resident_jobs,
        residency_ratio=round(residency_ratio, 4),
        digests_match=digests_match,
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print(
        f"\nstream-specs/gs: batch {batch_seconds:.2f}s, "
        f"stream {stream_seconds:.2f}s, peak resident jobs "
        f"{streamed.peak_resident_jobs}/{num_jobs} "
        f"({residency_ratio:.1%}), digests "
        f"{'match' if digests_match else 'DIFFER'}"
    )
    assert digests_match, "spec streaming changed the metrics digest"
    assert streamed.peak_resident_jobs >= 1
    # The load-bearing bound: resident jobs track concurrency, not length.
    assert residency_ratio < 0.10, (
        f"peak resident jobs {streamed.peak_resident_jobs} is "
        f"{residency_ratio:.1%} of the {num_jobs}-job trace"
    )

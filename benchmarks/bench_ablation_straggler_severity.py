"""Ablation: GRASS's gains as a function of straggler-tail severity.

Guideline 1 says speculation only pays off when task durations are heavy
tailed (β < 2).  This ablation sweeps the straggler tail from light to severe
and reports GRASS's error-bound speedup over LATE; the gain should grow with
tail heaviness.
"""

from benchmarks.conftest import bench_scale
from repro.baselines import LatePolicy
from repro.core.policies import Grass, GrassConfig
from repro.experiments.runner import build_simulation_config, improvement_in_duration
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.stragglers import StragglerConfig
from repro.utils.stats import mean
from repro.workload.synthetic import WorkloadConfig, generate_workload

TAILS = {
    "light (beta=1.8)": StragglerConfig.light(),
    "production (beta=1.259)": StragglerConfig(),
    "severe (beta=1.1)": StragglerConfig.severe(),
}


def _run_ablation():
    scale = bench_scale()
    workload = generate_workload(
        WorkloadConfig(
            bound_kind="error",
            num_jobs=scale.num_jobs,
            size_scale=scale.size_scale,
            max_tasks_per_job=scale.max_tasks_per_job,
            seed=32,
        )
    )
    base = build_simulation_config(workload, scale, seed=2, oracle_estimates=False)
    rows = []
    for label, stragglers in TAILS.items():
        config = SimulationConfig(
            cluster=base.cluster,
            stragglers=stragglers,
            estimator=base.estimator,
            seed=base.seed,
        )
        late = Simulation(config, LatePolicy(), workload.specs()).run()
        grass = Simulation(config, Grass(GrassConfig(seed=2)), workload.specs()).run()
        late_duration = mean([r.duration for r in late.error_results()])
        grass_duration = mean([r.duration for r in grass.error_results()])
        rows.append(
            {
                "tail": label,
                "late": late_duration,
                "grass": grass_duration,
                "speedup (%)": improvement_in_duration(late_duration, grass_duration),
            }
        )
    return rows


def test_ablation_straggler_severity(benchmark):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            f"tail={row['tail']:<26} late={row['late']:8.1f}s grass={row['grass']:8.1f}s "
            f"speedup={row['speedup (%)']:6.1f}%"
        )
    assert len(rows) == 3

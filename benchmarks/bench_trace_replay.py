"""Micro-benchmark: trace-driven replay throughput (events/second).

The replay pipeline is the paper's evaluation methodology (§5/§6: replayed
Facebook/Bing traces), so its throughput is tracked alongside the synthetic
engine hot path.  A paper-shaped trace is synthesized at the bench scale,
adapted through :mod:`repro.workload.trace_replay`, and timed directly under
``Simulation.run()`` — no harness or aggregation noise — with the measured
events/second recorded into ``BENCH_engine.json`` under the ``replay`` kind
(which ``scripts/check.sh bench-gate`` diffs against the committed history).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import bench_scale, run_throughput_bench
from repro.experiments.policies import make_policy
from repro.experiments.runner import build_simulation_config
from repro.simulator.engine import Simulation
from repro.workload.trace_replay import (
    TraceReplayConfig,
    synthesize_trace,
    trace_to_workload,
)

#: Same coverage as the engine hot-path bench: one cheap greedy policy and
#: the full learning policy.
POLICIES = ("gs", "grass")


def _build_trace_workload(scale):
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        num_jobs=scale.num_jobs,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=13,
    )
    trace_workload = trace_to_workload(trace, TraceReplayConfig(seed=13))
    sim_config = replace(
        build_simulation_config(
            trace_workload.workload, scale, seed=1, oracle_estimates=False
        ),
        stragglers=trace_workload.stragglers,
    )
    return trace_workload, sim_config


@pytest.mark.parametrize("policy_name", POLICIES)
def test_trace_replay_events_per_second(benchmark, policy_name):
    scale = bench_scale()
    trace_workload, sim_config = _build_trace_workload(scale)
    run_throughput_bench(
        benchmark,
        "replay",
        policy_name,
        lambda: Simulation(
            sim_config, make_policy(policy_name), trace_workload.workload.specs()
        ),
    )

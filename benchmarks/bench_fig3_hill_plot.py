"""Figure 3: Hill plot of task durations (Pareto tail index estimate)."""

from benchmarks.conftest import regenerate


def test_figure3_hill_plot(benchmark):
    result = regenerate(benchmark, "figure3")
    plateau = [row for row in result.rows if row["order statistics (k)"] == "plateau"]
    # Heavy tail in the simulator's task durations, in the vicinity of the
    # paper's beta = 1.259 (the truncation cap biases the estimate upward).
    assert 1.0 < plateau[0]["hill estimate of beta"] < 2.5

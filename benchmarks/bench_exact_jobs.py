"""§6.2.2: GRASS speeds up exact computations (error bound of zero) too."""

from benchmarks.conftest import regenerate


def test_exact_jobs_speedup(benchmark):
    result = regenerate(benchmark, "exact")
    late_rows = [row["speedup (%)"] for row in result.rows if row["baseline"] == "late"]
    # The paper reports a 34% speedup for exact jobs; the simulator should at
    # least reproduce the direction.
    assert sum(late_rows) / len(late_rows) > 0.0

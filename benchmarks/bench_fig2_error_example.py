"""Figure 2: GS vs RAS worked example for an error-bound job."""

from benchmarks.conftest import regenerate


def test_figure2_error_example(benchmark):
    result = regenerate(benchmark, "figure2")
    assert len(result.rows) == 4
    assert all(row["duration"] > 0 for row in result.rows)

"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper via
:mod:`repro.experiments.figures`.  The pytest-benchmark fixture measures the
wall-clock cost of regenerating it (one round — these are experiments, not
micro-benchmarks), and the resulting rows are printed so a benchmark run
doubles as a reproduction run.  ``GRASS_BENCH_SCALE`` selects the experiment
scale: ``quick`` (default, minutes for the whole suite), ``default`` or
``paper``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import FigureResult, run_figure
from repro.experiments.runner import ExperimentScale

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}


def bench_scale() -> ExperimentScale:
    """The experiment scale benchmarks run at (env: GRASS_BENCH_SCALE)."""
    name = os.environ.get("GRASS_BENCH_SCALE", "quick")
    return _SCALES.get(name, ExperimentScale.quick)()


def regenerate(benchmark, figure_name: str) -> FigureResult:
    """Regenerate one figure under the benchmark fixture and print its table."""
    scale = bench_scale()
    result = benchmark.pedantic(
        run_figure, args=(figure_name, scale), rounds=1, iterations=1
    )
    print()
    print(result.format_table())
    return result


@pytest.fixture
def scale() -> ExperimentScale:
    return bench_scale()

"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper via
:mod:`repro.experiments.figures`.  The pytest-benchmark fixture measures the
wall-clock cost of regenerating it (one round — these are experiments, not
micro-benchmarks), and the resulting rows are printed so a benchmark run
doubles as a reproduction run.

Environment knobs:

* ``GRASS_BENCH_SCALE`` — experiment scale: ``quick`` (default, minutes for
  the whole suite), ``default`` or ``paper``.
* ``GRASS_BENCH_WORKERS`` — worker processes for the (policy, seed) fan-out
  inside each figure (``1`` = serial, ``0`` = auto-size to the machine).
  Results are deterministic for any value.

Every run also appends machine-readable records (wall time per figure,
events/second from the engine micro-benchmark) and writes them to
``BENCH_engine.json`` next to this file, so the perf trajectory is tracked
across PRs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

import pytest

from repro.experiments.figures import FigureResult, run_figure
from repro.experiments.runner import ExperimentScale

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}

_BENCH_JSON_PATH = Path(__file__).parent / "BENCH_engine.json"

#: Machine-readable benchmark records accumulated over the session.
_RECORDS: List[Dict] = []


def bench_scale_name() -> str:
    """The validated GRASS_BENCH_SCALE name (also recorded in the JSON)."""
    name = os.environ.get("GRASS_BENCH_SCALE", "quick")
    if name not in _SCALES:
        raise pytest.UsageError(
            f"GRASS_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return name


def bench_scale() -> ExperimentScale:
    """The experiment scale benchmarks run at (env: GRASS_BENCH_SCALE)."""
    scale = _SCALES[bench_scale_name()]()
    raw_workers = os.environ.get("GRASS_BENCH_WORKERS", "1")
    try:
        workers = int(raw_workers)
    except ValueError:
        raise pytest.UsageError(
            f"GRASS_BENCH_WORKERS must be an integer >= 0, got {raw_workers!r}"
        ) from None
    if workers < 0:
        raise pytest.UsageError(
            f"GRASS_BENCH_WORKERS must be >= 0 (0 means auto), got {workers}"
        )
    return replace(scale, workers=workers)


def bench_rounds() -> int:
    """Rounds for the throughput micro-benchmarks (best-of is recorded).

    Quick-scale runs last ~0.1s, where scheduler noise alone can swing
    events/second by ±25% — too close to the bench-gate's 30% regression
    threshold.  Three rounds with best-of selection keeps the gate honest
    without slowing the default/paper scales, whose runs are long enough to
    self-average.
    """
    return 3 if bench_scale_name() == "quick" else 1


def record_benchmark(kind: str, name: str, **fields) -> None:
    """Append one machine-readable record destined for BENCH_engine.json."""
    _RECORDS.append({"kind": kind, "name": name, **fields})


def run_throughput_bench(benchmark, kind: str, name: str, make_simulation):
    """Time ``Simulation.run()`` best-of ``bench_rounds()`` and record it.

    Shared by the throughput micro-benchmarks (engine hot path, trace
    replay) so both record kinds are measured identically.  ``make_simulation``
    builds a fresh ``Simulation`` per round; the best events/second across
    rounds is recorded, because the number feeds the bench-gate regression
    check and should reflect capability, not scheduler noise.
    """
    timings: List[tuple] = []

    def run_once():
        simulation = make_simulation()
        started = time.perf_counter()
        simulation.run()
        elapsed = time.perf_counter() - started
        timings.append((simulation.events_processed, elapsed))
        return simulation.events_processed, elapsed

    benchmark.pedantic(run_once, rounds=bench_rounds(), iterations=1)
    events, elapsed = min(timings, key=lambda pair: pair[1] / max(pair[0], 1))
    events_per_second = events / elapsed if elapsed > 0 else float("inf")
    record_benchmark(
        kind,
        name,
        events=events,
        wall_time_seconds=round(elapsed, 4),
        events_per_second=round(events_per_second, 1),
        scale=bench_scale_name(),
    )
    print(f"\n{kind}/{name}: {events} events in {elapsed:.2f}s "
          f"-> {events_per_second:,.0f} events/s")
    assert events > 0
    return events, elapsed


def calibration_score() -> float:
    """Machine-speed proxy: best iterations/second of a fixed Python loop.

    Stored at the top level of BENCH_engine.json so ``bench_compare.py`` can
    normalise events/second across machines (a CI runner and a laptop differ
    far more than the regression threshold).  The loop is pure-Python integer
    arithmetic — the same kind of work the simulator's hot path does — and
    best-of-3 keeps it stable at ~50ms total.
    """
    iterations = 200_000
    best = 0.0
    for _ in range(3):
        started = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc += i * i % 7
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, iterations / elapsed)
    return round(best, 1)


def regenerate(benchmark, figure_name: str) -> FigureResult:
    """Regenerate one figure under the benchmark fixture and print its table."""
    scale = bench_scale()
    started = time.perf_counter()
    result = benchmark.pedantic(
        run_figure, args=(figure_name, scale), rounds=1, iterations=1
    )
    fallback = time.perf_counter() - started
    try:
        # pytest-benchmark's own measurement of the (single) round, without
        # the pedantic harness overhead; fall back to our timer if the
        # fixture ran with benchmarking disabled.
        wall_time = benchmark.stats.stats.total
    except AttributeError:
        wall_time = fallback
    record_benchmark(
        "figure",
        figure_name,
        wall_time_seconds=round(wall_time, 3),
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print()
    print(result.format_table())
    return result


@pytest.fixture
def scale() -> ExperimentScale:
    return bench_scale()


def record_key_str(record: Dict) -> tuple:
    """String-ified identity key, used to sort records stably in the JSON."""
    return tuple(
        str(record.get(field)) for field in ("kind", "name", "scale", "workers")
    )


def _all_records() -> List[Dict]:
    """Records from this module *and* its importable twin, if any.

    pytest loads ``conftest.py`` as its own plugin module while the bench
    files import ``benchmarks.conftest`` by package path; both module objects
    can coexist, each with its own ``_RECORDS`` list.  The session hook runs
    on the plugin instance, so it merges the twin's records explicitly.
    """
    records = list(_RECORDS)
    twin = sys.modules.get("benchmarks.conftest")
    if twin is not None and getattr(twin, "_RECORDS", _RECORDS) is not _RECORDS:
        records.extend(twin._RECORDS)
    return records


def pytest_sessionfinish(session, exitstatus) -> None:
    """Merge this session's records into BENCH_engine.json.

    Records are keyed by ``(kind, name, scale, workers)``: a partial bench
    run (e.g. ``make bench-smoke``) refreshes only the entries it
    re-measured — at its own scale — and leaves the rest of the tracked
    trajectory intact.
    """

    records = _all_records()
    if not records:
        return
    merged: Dict[tuple, Dict] = {}
    if _BENCH_JSON_PATH.exists():
        try:
            previous = json.loads(_BENCH_JSON_PATH.read_text())
            for record in previous.get("records", []):
                merged[record_key_str(record)] = record
        except (ValueError, OSError):
            pass  # unreadable history: start over rather than crash the run
    for record in records:
        merged[record_key_str(record)] = record
    payload = {
        "schema": 1,
        "unix_time": int(time.time()),
        "calibration_ops_per_second": calibration_score(),
        "records": sorted(merged.values(), key=record_key_str),
    }
    _BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

"""Micro-benchmark: shared warm-up caching in ``compare_policies``.

Measures the same comparison twice — warm-up re-simulated inside every
(policy, seed) request vs. warmed once per policy with the state snapshot
shipped — and records both wall-clocks into ``BENCH_engine.json`` under the
``warmup-cache`` kind, together with whether the two runs' metrics digests
matched (they must: the cache is a wall-clock knob, not a correctness knob;
the assert below enforces it on every bench run).

The bench forces four seeds even at quick scale because cross-seed sharing
is where the cache wins: with ``k`` seeds the uncached path warms each
learning policy ``k`` times, the cached path once.  (At quick scale the
warm-up is a small fraction of a run, so the measured reduction is modest;
at ``paper()`` scale — 150 warm-up jobs, 3 seeds, 7 policies — the saved
warm-ups dominate, which is the ROADMAP's "roughly halves" projection.)
Both wall-clocks are best-of-two to keep the sign of the comparison stable
against scheduler noise.
"""

from __future__ import annotations

import time
from dataclasses import replace

from benchmarks.conftest import bench_scale, bench_scale_name, record_benchmark
from repro.experiments.cli import metrics_digest
from repro.experiments.runner import compare_policies
from repro.workload.synthetic import WorkloadConfig

#: The learning policy — the only kind that pays a warm-up at all.
POLICIES = ("grass",)


def test_warmup_cache_wall_clock(benchmark):
    scale = bench_scale()
    if len(scale.seeds) < 4:
        scale = replace(scale, seeds=(1, 2, 3, 4))
    config = WorkloadConfig(bound_kind="mixed", seed=11)

    def run(warm_cache: bool):
        return compare_policies(
            POLICIES, config, scale=scale, warm_cache=warm_cache,
            workers=scale.workers,
        )

    def best_of_two(warm_cache: bool):
        best_seconds = float("inf")
        result = None
        for _ in range(2):
            started = time.perf_counter()
            result = run(warm_cache)
            best_seconds = min(best_seconds, time.perf_counter() - started)
        return result, best_seconds

    uncached, uncached_seconds = best_of_two(False)

    timings = []

    def run_cached():
        started = time.perf_counter()
        result = run(True)
        timings.append(time.perf_counter() - started)
        return result

    cached = benchmark.pedantic(run_cached, rounds=2, iterations=1)
    cached_seconds = min(timings)

    digests_match = metrics_digest(cached) == metrics_digest(uncached)
    record_benchmark(
        "warmup-cache",
        "compare_policies",
        wall_time_seconds=round(cached_seconds, 3),
        wall_time_uncached_seconds=round(uncached_seconds, 3),
        speedup=round(uncached_seconds / max(cached_seconds, 1e-9), 3),
        digests_match=digests_match,
        seeds=len(scale.seeds),
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print(
        f"\nwarmup-cache/compare_policies: uncached {uncached_seconds:.2f}s "
        f"-> cached {cached_seconds:.2f}s "
        f"({uncached_seconds / max(cached_seconds, 1e-9):.2f}x), "
        f"digests {'match' if digests_match else 'DIFFER'}"
    )
    assert digests_match, "warm-up caching changed the metrics digest"

"""Figure 11: GS-only vs RAS-only vs GRASS for error-bound jobs."""

from benchmarks.conftest import regenerate


def test_figure11_switching_error(benchmark):
    result = regenerate(benchmark, "figure11")
    grass_rows = [row["overall (%)"] for row in result.rows if row["policy"] == "grass"]
    gs_rows = [row["overall (%)"] for row in result.rows if row["policy"] == "gs"]
    assert grass_rows and gs_rows
    # GRASS must not be dominated by always-greedy speculation overall.
    assert sum(grass_rows) >= sum(gs_rows) - 10.0

"""Micro-benchmark: the content-addressed replay cache, cold vs. warm.

Executes the same :class:`ReplayPlan` three ways at the bench scale —
without a cache, against an empty cache (cold: every slice simulates and
stores), and against the populated store (warm: every slice restores from
disk) — asserting all three digests are byte-identical and recording the
cold/warm throughputs under the ``replay-cache`` kind in
``BENCH_engine.json``.

Two numbers gate the feature's worth: the warm path must be at least an
order of magnitude faster than simulating (the whole point of the cache),
and the cold path must not pay more than a few percent for fingerprinting
and stores (else nobody would leave the cache on).  Both are asserted here.
The overhead is measured over *interleaved* plain/cold pairs with the
minimum pairwise ratio: scheduler noise on a busy machine swings
independent wall-clocks by ±10%, far above the real overhead (~1%, per
profile), and the paired minimum is the only estimator of the two-run
ratio that stays stable under that noise.

The record deliberately uses ``cold_events_per_second`` /
``warm_events_per_second`` field names: the bench-gate regression check
keys on ``events_per_second``, and a cache-restore throughput is not
comparable to a simulation throughput.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List

from benchmarks.conftest import (
    bench_rounds,
    bench_scale,
    bench_scale_name,
    record_benchmark,
)
from repro.experiments.plan import ReplayPlan
from repro.experiments.runner import execute
from repro.workload.trace_replay import synthesize_trace
from repro.workload.traces import save_trace

POLICIES = ("no-spec", "grass")
SHARDS = 4
#: Interleaved plain/cold measurement pairs for the overhead ratio.
OVERHEAD_PAIRS = 5
#: The warm path must beat re-simulation by at least this factor.
MIN_WARM_SPEEDUP = 10.0
#: Fractional wall-clock the cold path may pay over a cache-less run.
MAX_COLD_OVERHEAD = 0.05


def _run(plan: ReplayPlan) -> tuple:
    """Execute ``plan``; returns (digest, events, elapsed, cache_stats)."""
    events: List[int] = []

    def on_metrics(policy, seed, shard, metrics):
        events.append(metrics.events_processed)

    started = time.perf_counter()
    executed = execute(plan, on_metrics=on_metrics)
    elapsed = time.perf_counter() - started
    return executed.digest, sum(events), elapsed, executed.cache_stats


def test_replay_cache_cold_vs_warm(benchmark, tmp_path):
    scale = bench_scale()
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        # 4x the scale's job count: long enough runs that per-plan constant
        # costs (fingerprints, the probe) sit in the regime the cache
        # targets, short enough for bench-smoke.
        num_jobs=scale.num_jobs * 4,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=17,
    )
    trace_path = tmp_path / "bench_trace.jsonl"
    save_trace(trace, trace_path)
    plan = ReplayPlan(
        trace=str(trace_path),
        policies=POLICIES,
        scale=bench_scale_name(),
        shards=SHARDS,
        seed=17,
        workers=scale.workers,
    ).validate()
    rounds = bench_rounds()

    # Plain vs cold, interleaved: each pair runs back to back under the
    # same machine conditions, each cold round gets a fresh (empty) store,
    # and the overhead is the *minimum* pairwise ratio — see module doc.
    plain: List[tuple] = []
    cold: List[tuple] = []
    for index in range(OVERHEAD_PAIRS):
        plain.append(_run(plan))
        cold_plan = replace(plan, cache=str(tmp_path / f"cold{index}" / "cache"))
        cold.append(_run(cold_plan))
    plain_digest, events, plain_seconds, _stats = min(plain, key=lambda r: r[2])
    cold_digest, _events, cold_seconds, cold_stats = min(cold, key=lambda r: r[2])
    cold_overhead = min(
        c[2] / p[2] for p, c in zip(plain, cold) if p[2] > 0
    ) - 1.0

    # Warm: one store populated by a discarded priming run, then best-of
    # timed restores — the benchmark.pedantic rounds measure only these.
    warm_plan = replace(plan, cache=str(tmp_path / "warm" / "cache"))
    _run(warm_plan)  # prime
    warm: List[tuple] = []
    benchmark.pedantic(lambda: warm.append(_run(warm_plan)), rounds=rounds, iterations=1)
    warm_digest, _events, warm_seconds, warm_stats = min(warm, key=lambda r: r[2])

    digests_match = plain_digest == cold_digest == warm_digest
    warm_speedup = plain_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    record_benchmark(
        "replay-cache",
        "grass",
        events=events,
        cold_events_per_second=round(events / cold_seconds, 1) if cold_seconds else 0.0,
        warm_events_per_second=round(events / warm_seconds, 1) if warm_seconds else 0.0,
        wall_time_plain_seconds=round(plain_seconds, 4),
        wall_time_cold_seconds=round(cold_seconds, 4),
        wall_time_warm_seconds=round(warm_seconds, 4),
        warm_speedup=round(warm_speedup, 1),
        cold_overhead_fraction=round(cold_overhead, 4),
        digests_match=digests_match,
        shards=SHARDS,
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print(
        f"\nreplay-cache/grass: plain {plain_seconds:.3f}s, cold "
        f"{cold_seconds:.3f}s (overhead {cold_overhead:+.1%}), warm "
        f"{warm_seconds:.4f}s ({warm_speedup:,.0f}x), digests "
        f"{'match' if digests_match else 'DIFFER'}"
    )
    assert digests_match, "caching changed the metrics digest"
    assert cold_stats is not None and cold_stats.hits == 0
    assert warm_stats is not None and warm_stats.misses == 0, (
        f"warm run missed the cache: {warm_stats.summary()}"
    )
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache only {warm_speedup:.1f}x faster than simulating "
        f"(need >= {MIN_WARM_SPEEDUP:.0f}x)"
    )
    assert cold_overhead < MAX_COLD_OVERHEAD, (
        f"cold cache overhead {cold_overhead:.1%} exceeds "
        f"{MAX_COLD_OVERHEAD:.0%} of the cache-less wall clock"
    )

"""Figure 9: GRASS's gains across job DAG lengths 2-6."""

from benchmarks.conftest import regenerate


def test_figure9_dag(benchmark):
    result = regenerate(benchmark, "figure9")
    lengths = {row["dag length"] for row in result.rows}
    assert lengths == {2, 3, 4, 5, 6}

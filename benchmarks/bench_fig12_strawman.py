"""Figure 12: learned switching vs the static two-wave strawman."""

from benchmarks.conftest import regenerate


def test_figure12_strawman(benchmark):
    result = regenerate(benchmark, "figure12")
    policies = {row["policy"] for row in result.rows}
    assert policies == {"grass", "grass-strawman"}

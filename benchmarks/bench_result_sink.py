"""Micro-benchmark: streaming result sinks vs retaining every JobResult.

Runs the fully streaming replay (``--stream-specs``) twice over the same
synthesized trace — once with the retaining sink (the default) and once with
the aggregate sink — and records what the sink architecture exists to
deliver: with ``--sink aggregate`` the comparison holds **zero** resident
``JobResult`` objects and the digest still matches the retain path
byte-for-byte, while the memory still traced once the pipeline has drained
(the part that grows with trace length under the retain sink: results plus
per-job metadata) drops to a small fraction of the retaining run's.

Peak traced memory is recorded for context but does not gate: the peak is
dominated by transient engine state — concurrent jobs' tasks and copies —
which ``--stream-specs`` already bounds to O(max concurrent) regardless of
the sink.  The *residency ratio* is the sink's own number.

Both legs run with ``workers=1`` so every allocation happens in this
process, where ``tracemalloc`` can see it; the digest identity across worker
counts is locked elsewhere (``tests/test_result_sinks.py`` and the
``replay-determinism`` CI job).

Like ``bench_stream_specs``, the trace is longer than the figure-bench
workloads (count scaled up, task sizes scaled down): the number under test
is how memory scales with trace *length*.
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from benchmarks.conftest import bench_scale, bench_scale_name, record_benchmark
from repro.experiments.cli import metrics_digest
from repro.experiments.runner import replay_stream
from repro.simulator.sinks import SinkFactory
from repro.workload.trace_replay import TraceReplayConfig, synthesize_trace
from repro.workload.traces import save_trace

#: Trace-length multiplier over the bench scale's job count (see module docs).
TRACE_LENGTH_FACTOR = 12


def test_result_sink_residency(benchmark, tmp_path):
    scale = bench_scale()
    num_jobs = scale.num_jobs * TRACE_LENGTH_FACTOR
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        num_jobs=num_jobs,
        size_scale=scale.size_scale / 2,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=19,
    )
    path = tmp_path / "bench_trace.jsonl"
    save_trace(trace, path)
    replay_config = TraceReplayConfig(seed=19)

    def run(sink_kind: str):
        tracemalloc.start()
        started = time.perf_counter()
        streamed = replay_stream(
            ["gs"], path, replay_config=replay_config, scale=scale,
            shards=1, workers=1, stream_specs=True,
            sink=SinkFactory(kind=sink_kind),
        )
        elapsed = time.perf_counter() - started
        # pytest-benchmark disables the cyclic GC while timing; collect
        # explicitly so "resident" counts live objects, not engine cycles
        # (Job <-> Task observer references) awaiting collection.
        gc.collect()
        resident, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return streamed, resident, peak, elapsed

    retained, retain_resident, retain_peak, retain_seconds = run("retain")
    folded_holder = []

    def run_aggregate():
        folded_holder.append(run("aggregate"))
        return folded_holder[-1]

    benchmark.pedantic(run_aggregate, rounds=1, iterations=1)
    folded, aggregate_resident, aggregate_peak, aggregate_seconds = folded_holder[-1]

    digests_match = metrics_digest(folded.comparison) == metrics_digest(
        retained.comparison
    )
    resident_retain = sum(
        len(metrics.results) for metrics in retained.comparison.runs["gs"].metrics
    )
    resident_aggregate = sum(
        len(metrics.sink.results or ())
        for metrics in folded.comparison.runs["gs"].metrics
    )
    residency_ratio = (
        aggregate_resident / retain_resident if retain_resident else float("inf")
    )
    peak_ratio = aggregate_peak / retain_peak if retain_peak else float("inf")
    record_benchmark(
        "result-sink",
        "gs",
        trace_jobs=num_jobs,
        resident_results_retain=resident_retain,
        resident_results_aggregate=resident_aggregate,
        resident_bytes_retain=retain_resident,
        resident_bytes_aggregate=aggregate_resident,
        residency_ratio=round(residency_ratio, 4),
        peak_traced_bytes_retain=retain_peak,
        peak_traced_bytes_aggregate=aggregate_peak,
        peak_ratio=round(peak_ratio, 4),
        wall_time_seconds=round(aggregate_seconds, 3),
        wall_time_retain_seconds=round(retain_seconds, 3),
        digests_match=digests_match,
        scale=bench_scale_name(),
        workers=1,
    )
    print(
        f"\nresult-sink/gs: retain resident {retain_resident / 1e6:.2f}MB "
        f"({resident_retain} results), aggregate resident "
        f"{aggregate_resident / 1e6:.2f}MB ({resident_aggregate} results) "
        f"-> residency ratio {residency_ratio:.2f} (peak ratio "
        f"{peak_ratio:.2f}), digests {'match' if digests_match else 'DIFFER'}"
    )
    assert digests_match, "the aggregate sink changed the metrics digest"
    # The load-bearing claims: the aggregate path holds zero JobResults, its
    # post-drain resident memory sits materially below the retaining path's
    # (what grows with trace length), and its transient peak is no worse.
    assert resident_retain == num_jobs
    assert resident_aggregate == 0
    assert residency_ratio < 0.5, (
        f"aggregate-sink resident memory is {residency_ratio:.2f}x the retain "
        "path's — expected a material reduction"
    )
    # Sanity bound only: the transient peak belongs to the engine (bounded by
    # --stream-specs, identical across sinks) and tracemalloc's peak is noisy
    # across a shared pytest session, so the gate is deliberately loose.
    assert peak_ratio < 1.5, (
        f"aggregate-sink peak memory is {peak_ratio:.2f}x the retain path's"
    )

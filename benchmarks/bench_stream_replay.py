"""Micro-benchmark: streaming sharded replay vs. the batch fan-out.

Times ``runner.replay_stream`` (lazy parse, lazy shards, windowed merge)
against batch ``runner.replay`` over the same synthesized trace at the bench
scale, asserts their digests match, and records both wall-clocks plus the
observed peak shard residency under the ``replay-stream`` kind in
``BENCH_engine.json``.  Streaming exists for traces that do not fit in
memory; this record tracks that its bookkeeping stays cheap enough that it
could be the default path.
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_scale, bench_scale_name, record_benchmark
from repro.experiments.cli import metrics_digest
from repro.experiments.runner import replay, replay_stream
from repro.workload.trace_replay import TraceReplayConfig, synthesize_trace
from repro.workload.traces import save_trace

SHARDS = 4
MAX_RESIDENT = 2


def test_stream_replay_wall_clock(benchmark, tmp_path):
    scale = bench_scale()
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        num_jobs=scale.num_jobs,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=13,
    )
    path = tmp_path / "bench_trace.jsonl"
    save_trace(trace, path)
    replay_config = TraceReplayConfig(seed=13)

    started = time.perf_counter()
    batch = replay(
        ["gs"], trace, replay_config=replay_config, scale=scale,
        shards=SHARDS, workers=scale.workers,
    )
    batch_seconds = time.perf_counter() - started

    def run_stream():
        return replay_stream(
            ["gs"], path, replay_config=replay_config, scale=scale,
            shards=SHARDS, workers=scale.workers, max_resident_shards=MAX_RESIDENT,
        )

    started = time.perf_counter()
    streamed = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    stream_seconds = time.perf_counter() - started

    digests_match = metrics_digest(streamed.comparison) == metrics_digest(batch)
    record_benchmark(
        "replay-stream",
        "gs",
        wall_time_seconds=round(stream_seconds, 3),
        wall_time_batch_seconds=round(batch_seconds, 3),
        peak_resident_shards=streamed.peak_resident_shards,
        max_resident_shards=MAX_RESIDENT,
        shards=SHARDS,
        digests_match=digests_match,
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print(
        f"\nreplay-stream/gs: batch {batch_seconds:.2f}s, "
        f"stream {stream_seconds:.2f}s, peak resident "
        f"{streamed.peak_resident_shards}/{MAX_RESIDENT}, "
        f"digests {'match' if digests_match else 'DIFFER'}"
    )
    assert digests_match, "streaming replay changed the metrics digest"
    assert streamed.peak_resident_shards <= MAX_RESIDENT

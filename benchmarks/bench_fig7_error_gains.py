"""Figure 7: GRASS's speedup for error-bound jobs."""

from benchmarks.conftest import regenerate


def test_figure7_error_gains(benchmark):
    result = regenerate(benchmark, "figure7")
    overall = [row["overall (%)"] for row in result.rows if row["baseline"] == "late"]
    # GRASS speeds up error-bound jobs versus LATE (paper: 24-38%).
    assert sum(overall) / len(overall) > 5.0

"""Macro-benchmark: the generated ``cluster`` tier under full streaming.

Replays a :class:`~repro.workload.trace_replay.ClusterTierConfig` slice —
the lazily generated stand-in for a real cluster trace, a million jobs at
full size — through ``replay_stream(stream_specs=True)`` with the aggregate
sink: the fully streaming configuration where no process ever materialises
the trace, a shard spec list, or a per-job result row.

Records under the ``cluster-scale`` kind in ``BENCH_engine.json``:
events/second (summed engine events over wall-clock), wall time, peak
concurrently-resident jobs, and the residency ratio (peak resident jobs over
trace length) — the number the scheduled CI leg asserts stays under 1% at
100 K+ jobs.

Environment knobs (on top of the usual ``GRASS_BENCH_SCALE``):

* ``GRASS_CLUSTER_JOBS`` — tier length; defaults to a per-scale count
  (quick: 1200) sized so ``make bench-smoke`` stays fast.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import bench_scale, bench_scale_name, record_benchmark
from repro.experiments.runner import replay_stream
from repro.simulator.sinks import parse_sink_spec
from repro.workload.trace_replay import ClusterTierConfig, TraceReplayConfig

#: Default tier length per bench scale (overridden by GRASS_CLUSTER_JOBS).
_DEFAULT_JOBS = {"quick": 1200, "default": 20_000, "paper": 100_000}

#: Residency bound asserted at every scale; the scheduled CI leg re-asserts
#: the tighter 1% bound at 100 K jobs, where concurrency is a smaller slice.
_RESIDENCY_BOUND = 0.10


def _cluster_jobs() -> int:
    raw = os.environ.get("GRASS_CLUSTER_JOBS")
    if raw is None:
        return _DEFAULT_JOBS[bench_scale_name()]
    try:
        jobs = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"GRASS_CLUSTER_JOBS must be an integer >= 1, got {raw!r}"
        ) from None
    if jobs < 1:
        raise pytest.UsageError(f"GRASS_CLUSTER_JOBS must be >= 1, got {jobs}")
    return jobs


def test_cluster_tier_replay(benchmark):
    scale = bench_scale()
    num_jobs = _cluster_jobs()
    tier = ClusterTierConfig(num_jobs=num_jobs, seed=0)
    replay_config = TraceReplayConfig(seed=0)
    shards = max(1, min(8, num_jobs // 100))

    def run_stream():
        return replay_stream(
            ["gs"], tier, replay_config=replay_config, scale=scale,
            shards=shards, workers=scale.workers, stream_specs=True,
            sink=parse_sink_spec("aggregate"),
        )

    started = time.perf_counter()
    streamed = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - started

    events = sum(
        metrics.events_processed
        for run in streamed.comparison.runs.values()
        for metrics in run.metrics
    )
    events_per_second = events / wall_seconds if wall_seconds > 0 else 0.0
    residency_ratio = streamed.peak_resident_jobs / num_jobs
    record_benchmark(
        "cluster-scale",
        "gs",
        trace_jobs=num_jobs,
        events=events,
        wall_time_seconds=round(wall_seconds, 3),
        events_per_second=round(events_per_second, 1),
        peak_resident_jobs=streamed.peak_resident_jobs,
        residency_ratio=round(residency_ratio, 5),
        scale=bench_scale_name(),
        workers=scale.workers,
    )
    print(
        f"\ncluster-scale/gs: {num_jobs} jobs, {events} events in "
        f"{wall_seconds:.2f}s -> {events_per_second:,.0f} events/s, "
        f"peak resident jobs {streamed.peak_resident_jobs} "
        f"({residency_ratio:.2%})"
    )
    assert events > 0
    assert streamed.num_jobs == num_jobs
    assert streamed.peak_resident_jobs >= 1
    # The bound the tier exists to demonstrate: resident jobs track
    # concurrency, not trace length.
    assert residency_ratio < _RESIDENCY_BOUND, (
        f"peak resident jobs {streamed.peak_resident_jobs} is "
        f"{residency_ratio:.1%} of the {num_jobs}-job tier"
    )

"""§2.3: potential gains of an informed scheduler over LATE and Mantri."""

from benchmarks.conftest import regenerate


def test_sec23_potential_gains(benchmark):
    result = regenerate(benchmark, "sec2.3")
    # The oracle should beat the production baselines on average; the paper
    # reports 48%/44% (accuracy) and 32%/40% (speedup) headroom.
    improvements = [row["oracle improvement (%)"] for row in result.rows]
    assert sum(improvements) / len(improvements) > 0.0

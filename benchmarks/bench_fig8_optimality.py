"""Figure 8: GRASS approaches the informed oracle scheduler."""

from benchmarks.conftest import regenerate


def test_figure8_optimality(benchmark):
    result = regenerate(benchmark, "figure8")
    grass = [row["overall (%)"] for row in result.rows if row["policy"] == "grass"]
    oracle = [row["overall (%)"] for row in result.rows if row["policy"] == "oracle"]
    # The oracle bounds GRASS from above; GRASS should capture a meaningful
    # share of the oracle's improvement.
    assert len(grass) == len(oracle) == 2

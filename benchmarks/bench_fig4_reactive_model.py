"""Figure 4: near-optimality of GS and RAS in the reactive ω-policy model."""

from benchmarks.conftest import regenerate


def test_figure4_reactive_model(benchmark):
    result = regenerate(benchmark, "figure4")
    # For single-wave jobs, small omega (aggressive speculation, the GS end of
    # the spectrum) must not be far from optimal; for 5-wave jobs never
    # speculating early (very large omega) must not be optimal either.
    one_wave = [row for row in result.rows if row["waves"] == 1]
    five_waves = [row for row in result.rows if row["waves"] == 5]
    assert min(row["time/optimal"] for row in one_wave) <= 1.05
    assert five_waves[0]["time/optimal"] >= five_waves[2]["time/optimal"] - 0.25

"""Figure 5: GRASS's accuracy improvement for deadline-bound jobs."""

from benchmarks.conftest import regenerate


def test_figure5_deadline_gains(benchmark):
    result = regenerate(benchmark, "figure5")
    overall = [row["overall (%)"] for row in result.rows if row["baseline"] == "late"]
    # GRASS should improve over LATE on average across the four panels
    # (paper: 34-47%; the simulator reproduces the direction and ordering).
    assert sum(overall) / len(overall) > 0.0

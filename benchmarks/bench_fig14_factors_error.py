"""Figure 14: switching-factor ablation (Best-1 / Best-2 / all three), error jobs."""

from benchmarks.conftest import regenerate


def test_figure14_factors_error(benchmark):
    result = regenerate(benchmark, "figure14")
    assert {row["factors"] for row in result.rows} == {"best-1", "best-2", "all-3"}

"""Macro-benchmark: the multi-tenant replay service under concurrent load.

Boots an in-process :class:`~repro.service.server.ReplayService` and drives
it with :func:`~repro.service.load.run_load`: dozens of concurrent tenant
sessions each submit a quick-scale streaming plan over a real socket,
stream back per-shard aggregate deltas, and refold them client-side into
the policy-tagged digest — which must match an offline ``execute(plan)`` of
the identical plan for every tenant.  An overload burst against a
deliberately tight instance then asserts admission control sheds load with
explicit 429-style rejections.

Records under the ``service-load`` kind in ``BENCH_engine.json``: sustained
completed plans/second, the p50/p99 submission→first-delta latency (the
interactivity number an approximation-analytics service lives on), digest
parity, and the overload rejection counts.

Environment knobs (on top of the usual ``GRASS_BENCH_SCALE``):

* ``GRASS_SERVICE_TENANTS`` — concurrent tenant sessions; defaults to a
  per-scale count (quick: 50, the acceptance floor of PR 8).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import bench_scale_name, record_benchmark
from repro.service.load import run_load

#: Default concurrent tenants per bench scale (GRASS_SERVICE_TENANTS wins).
_DEFAULT_TENANTS = {"quick": 50, "default": 64, "paper": 96}

#: Execution slots of the benched service instance.
_MAX_INFLIGHT = 4


def _tenants() -> int:
    raw = os.environ.get("GRASS_SERVICE_TENANTS")
    if raw is None:
        return _DEFAULT_TENANTS[bench_scale_name()]
    try:
        tenants = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"GRASS_SERVICE_TENANTS must be an integer >= 1, got {raw!r}"
        ) from None
    if tenants < 1:
        raise pytest.UsageError(f"GRASS_SERVICE_TENANTS must be >= 1, got {tenants}")
    return tenants


def test_service_multi_tenant_load(benchmark):
    tenants = _tenants()

    def drive():
        return run_load(
            tenants=tenants,
            plans_per_tenant=1,
            distinct_plans=8,
            cluster_jobs=12,
            shards=2,
            overload_burst=12,
            max_inflight=_MAX_INFLIGHT,
        )

    report = benchmark.pedantic(drive, rounds=1, iterations=1)

    p50 = report["first_delta_p50_seconds"]
    p99 = report["first_delta_p99_seconds"]
    record_benchmark(
        "service-load",
        "multi-tenant",
        tenants=tenants,
        plans=report["plans"],
        completed=report["completed"],
        digest_mismatches=report["digest_mismatches"],
        wall_time_seconds=round(report["elapsed_seconds"], 3),
        plans_per_second=round(report["plans_per_second"], 2),
        first_delta_p50_ms=round(p50 * 1000.0, 1) if p50 is not None else None,
        first_delta_p99_ms=round(p99 * 1000.0, 1) if p99 is not None else None,
        overload_submitted=report["overload"]["submitted"],
        overload_rejected=report["overload"]["rejected"],
        scale=bench_scale_name(),
        workers=_MAX_INFLIGHT,
    )
    print(
        f"\nservice-load/multi-tenant: {report['completed']}/{report['plans']} "
        f"plans from {tenants} tenants in {report['elapsed_seconds']:.2f}s -> "
        f"{report['plans_per_second']:.1f} plans/s, p99 first delta "
        f"{p99 * 1000.0:.0f}ms, overload rejected "
        f"{report['overload']['rejected']}/{report['overload']['submitted']}"
    )
    # The acceptance contract of the always-on service: every tenant's
    # streamed digest matches the offline execution, completion is total,
    # and overload drew at least one explicit rejection.
    assert report["ok"], report
    assert report["completed"] == tenants
    assert report["digest_mismatches"] == 0
    assert report["overload"]["rejected"] >= 1

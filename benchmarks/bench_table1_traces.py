"""Table 1: properties of the synthetic Facebook and Bing trace stand-ins."""

from benchmarks.conftest import regenerate


def test_table1_traces(benchmark):
    result = regenerate(benchmark, "table1")
    assert {row["trace"] for row in result.rows} == {"facebook", "bing"}
    # The straggler calibration target: slowest task several times the median.
    assert all(row["slowest/median"] > 2.0 for row in result.rows)

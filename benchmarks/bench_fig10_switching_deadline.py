"""Figure 10: GS-only vs RAS-only vs GRASS for deadline-bound jobs."""

from benchmarks.conftest import regenerate


def test_figure10_switching_deadline(benchmark):
    result = regenerate(benchmark, "figure10")
    policies = {row["policy"] for row in result.rows}
    assert policies == {"gs", "ras", "grass"}

"""Micro-benchmark: raw discrete-event engine throughput (events/second).

Unlike the figure benches, this one bypasses the experiment harness and
times ``Simulation.run()`` directly, so regressions in the engine hot path
(event dispatch, allocation recompute, snapshot construction) are visible
without any workload-generation or aggregation noise.  The measured
events/second lands in ``BENCH_engine.json`` alongside the per-figure wall
times.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, run_throughput_bench
from repro.experiments.policies import make_policy
from repro.experiments.runner import build_simulation_config
from repro.simulator.engine import Simulation
from repro.workload.synthetic import WorkloadConfig, generate_workload

#: One cheap greedy policy and the full learning policy: together they cover
#: the speculative-copy churn (kills, cancellations) and the estimator path.
POLICIES = ("gs", "grass")


def _build_workload_and_config(scale):
    config = WorkloadConfig(
        num_jobs=scale.num_jobs,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
        seed=7,
    )
    workload = generate_workload(config)
    return workload, build_simulation_config(workload, scale, seed=1, oracle_estimates=False)


@pytest.mark.parametrize("policy_name", POLICIES)
def test_engine_hotpath_events_per_second(benchmark, policy_name):
    scale = bench_scale()
    workload, sim_config = _build_workload_and_config(scale)
    run_throughput_bench(
        benchmark,
        "engine_hotpath",
        policy_name,
        lambda: Simulation(sim_config, make_policy(policy_name), workload.specs()),
    )


def _profile_main() -> None:
    """``python benchmarks/bench_engine_hotpath.py --profile [policy]``.

    Runs the same simulation the benchmark times under cProfile and dumps
    the top 25 functions by cumulative time, so hot-path regressions can be
    attributed without setting up a separate profiling harness.  The scale
    is taken from ``GRASS_BENCH_SCALE`` exactly like the pytest run.
    """
    import argparse
    import cProfile
    import pstats

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", action="store_true", required=True)
    parser.add_argument("policy", nargs="?", default="gs", choices=POLICIES)
    args = parser.parse_args()

    scale = bench_scale()
    workload, sim_config = _build_workload_and_config(scale)
    simulation = Simulation(sim_config, make_policy(args.policy), workload.specs())
    profiler = cProfile.Profile()
    profiler.enable()
    simulation.run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(25)
    print(
        f"profiled policy={args.policy} jobs={scale.num_jobs} "
        f"events={simulation.events_processed}"
    )


if __name__ == "__main__":
    _profile_main()

"""Figure 1: GS vs RAS worked example for a deadline-bound job."""

from benchmarks.conftest import regenerate


def test_figure1_deadline_example(benchmark):
    result = regenerate(benchmark, "figure1")
    loose = {row["policy"]: row["tasks completed"] for row in result.rows if "loose" in row["deadline"]}
    # The figure's point: with a loose deadline RAS completes at least as many
    # tasks as GS because it accounts for the straggler's opportunity cost.
    assert loose["ras"] >= loose["gs"]

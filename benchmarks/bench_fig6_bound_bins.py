"""Figure 6: GRASS's gains binned by deadline slack factor and error bound."""

from benchmarks.conftest import regenerate


def test_figure6_bound_bins(benchmark):
    result = regenerate(benchmark, "figure6")
    assert any(row["bound"] == "deadline" for row in result.rows)
    assert any(row["bound"] == "error" for row in result.rows)

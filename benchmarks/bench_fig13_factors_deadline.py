"""Figure 13: switching-factor ablation (Best-1 / Best-2 / all three), deadline jobs."""

from benchmarks.conftest import regenerate


def test_figure13_factors_deadline(benchmark):
    result = regenerate(benchmark, "figure13")
    assert {row["factors"] for row in result.rows} == {"best-1", "best-2", "all-3"}

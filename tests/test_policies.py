"""Unit tests for the GS and RAS policies (Pseudocode 1 and 2)."""

import pytest

from repro.core.bounds import ApproximationBound
from repro.core.job import Job
from repro.core.policies.base import (
    SchedulingView,
    TaskSnapshot,
    deadline_candidates,
    error_candidates,
)
from repro.core.policies.gs import GreedySpeculative
from repro.core.policies.ras import ResourceAwareSpeculative
from repro.core.task import TaskCopy

from tests.conftest import make_job_spec


def make_view(task_specs, bound, remaining_deadline=None, remaining_required=None, wave_width=4):
    """Build a SchedulingView from (work, running, trem, tnew, copies) tuples."""
    works = [entry[0] for entry in task_specs]
    job = Job(make_job_spec(works, bound))
    job.start(0.0)
    snapshots = []
    for task_id, (_work, running, trem, tnew, copies) in enumerate(task_specs):
        task = job.tasks[task_id]
        if running:
            for copy_index in range(copies):
                task.add_copy(
                    TaskCopy(
                        copy_id=copy_index,
                        task_id=task_id,
                        machine_id=0,
                        start_time=0.0,
                        duration=max(trem, 1.0) + 1.0,
                    )
                )
        snapshots.append(
            TaskSnapshot(task=task, running=running, copies=copies if running else 0, trem=trem, tnew=tnew)
        )
    required = remaining_required
    if required is None:
        required = bound.required_tasks(len(task_specs))
    return SchedulingView(
        now=0.0,
        job=job,
        tasks=snapshots,
        bound=bound,
        remaining_deadline=remaining_deadline,
        remaining_required_tasks=required,
        wave_width=wave_width,
        cluster_utilization=0.5,
        estimator_accuracy=0.8,
    )


DEADLINE = ApproximationBound.with_deadline(100.0)
ERROR = ApproximationBound.with_error(0.2)


class TestTaskSnapshot:
    def test_saving_formula(self):
        view = make_view([(10.0, True, 9.0, 3.0, 1)], DEADLINE, remaining_deadline=50.0)
        snap = view.tasks[0]
        assert snap.saving == pytest.approx(1 * 9.0 - 2 * 3.0)

    def test_pending_task_has_zero_saving(self):
        view = make_view([(10.0, False, 10.0, 10.0, 0)], DEADLINE, remaining_deadline=50.0)
        assert view.tasks[0].saving == 0.0

    def test_effective_duration(self):
        view = make_view([(10.0, True, 4.0, 7.0, 1)], DEADLINE, remaining_deadline=50.0)
        assert view.tasks[0].effective_duration == 4.0

    def test_speculation_beneficial_requires_running(self):
        view = make_view(
            [(10.0, True, 9.0, 3.0, 1), (10.0, False, 10.0, 10.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        assert view.tasks[0].speculation_beneficial
        assert not view.tasks[1].speculation_beneficial


class TestPruning:
    def test_deadline_prunes_tasks_that_cannot_finish(self):
        view = make_view(
            [(10.0, False, 30.0, 30.0, 0), (10.0, False, 5.0, 5.0, 0)],
            DEADLINE,
            remaining_deadline=10.0,
        )
        kept = deadline_candidates(view, resource_aware=False)
        assert [snap.task_id for snap in kept] == [1]

    def test_deadline_gs_keeps_running_only_if_tnew_below_trem(self):
        view = make_view(
            [(10.0, True, 20.0, 8.0, 1), (10.0, True, 6.0, 8.0, 1)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        kept = deadline_candidates(view, resource_aware=False)
        assert [snap.task_id for snap in kept] == [0]

    def test_deadline_ras_requires_positive_saving(self):
        view = make_view(
            [(10.0, True, 20.0, 8.0, 1), (10.0, True, 12.0, 8.0, 1)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        kept = deadline_candidates(view, resource_aware=True)
        # saving of task 0 = 20 - 16 = 4 > 0; task 1 = 12 - 16 < 0.
        assert [snap.task_id for snap in kept] == [0]

    def test_error_keeps_only_earliest_contributors(self):
        view = make_view(
            [
                (10.0, False, 10.0, 10.0, 0),
                (10.0, False, 2.0, 2.0, 0),
                (10.0, False, 5.0, 5.0, 0),
            ],
            ERROR,
            remaining_required=2,
        )
        kept = error_candidates(view, resource_aware=False)
        assert sorted(snap.task_id for snap in kept) == [1, 2]

    def test_error_with_zero_required_keeps_all(self):
        view = make_view(
            [(10.0, False, 10.0, 10.0, 0), (10.0, False, 2.0, 2.0, 0)],
            ERROR,
            remaining_required=0,
        )
        assert len(error_candidates(view, resource_aware=False)) == 2


class TestGreedySpeculative:
    def test_deadline_picks_smallest_tnew(self):
        policy = GreedySpeculative()
        view = make_view(
            [(10.0, False, 9.0, 9.0, 0), (10.0, False, 4.0, 4.0, 0), (10.0, False, 6.0, 6.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 1
        assert not decision.speculative

    def test_deadline_speculates_when_duplicate_is_fastest(self):
        policy = GreedySpeculative()
        view = make_view(
            [(10.0, True, 20.0, 3.0, 1), (10.0, False, 8.0, 8.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 0
        assert decision.speculative

    def test_deadline_tie_prefers_original_over_duplicate(self):
        policy = GreedySpeculative()
        view = make_view(
            [(10.0, True, 20.0, 8.0, 1), (10.0, False, 8.0, 8.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        assert policy.choose_task(view).task.task_id == 1

    def test_deadline_falls_back_to_pending_when_everything_pruned(self):
        # The deadline filter drops every task, but leaving the slot idle is
        # never better than trying the shortest pending task (durations are
        # stochastic), so the policy falls back instead of returning None.
        policy = GreedySpeculative()
        view = make_view(
            [(10.0, False, 30.0, 30.0, 0)], DEADLINE, remaining_deadline=5.0
        )
        decision = policy.choose_task(view)
        assert decision is not None and not decision.speculative

    def test_error_picks_largest_remaining(self):
        policy = GreedySpeculative()
        view = make_view(
            [(10.0, True, 30.0, 10.0, 1), (10.0, False, 10.0, 10.0, 0)],
            ERROR,
            remaining_required=2,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 0 and decision.speculative

    def test_copy_cap_blocks_further_duplicates(self):
        policy = GreedySpeculative(max_copies_per_task=2)
        view = make_view(
            [(10.0, True, 30.0, 3.0, 2)], DEADLINE, remaining_deadline=50.0
        )
        assert policy.choose_task(view) is None

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            GreedySpeculative(max_copies_per_task=0)


class TestResourceAwareSpeculative:
    def test_prefers_positive_saving_duplicate_over_pending(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, True, 20.0, 4.0, 1), (10.0, False, 2.0, 2.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 0 and decision.speculative

    def test_falls_back_to_sjf_without_savings(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, True, 10.0, 8.0, 1), (10.0, False, 2.0, 2.0, 0), (10.0, False, 6.0, 6.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 1 and not decision.speculative

    def test_picks_highest_saving_among_duplicates(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, True, 20.0, 4.0, 1), (10.0, True, 40.0, 4.0, 1)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        assert policy.choose_task(view).task.task_id == 1

    def test_error_bound_default_is_ljf(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, False, 4.0, 4.0, 0), (10.0, False, 9.0, 9.0, 0)],
            ERROR,
            remaining_required=2,
        )
        assert policy.choose_task(view).task.task_id == 1

    def test_error_bound_ignores_low_saving_straggler(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, True, 12.0, 8.0, 1), (10.0, False, 9.0, 9.0, 0)],
            ERROR,
            remaining_required=2,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 1 and not decision.speculative

    def test_falls_back_to_beneficial_duplicate_when_everything_pruned(self):
        policy = ResourceAwareSpeculative()
        view = make_view(
            [(10.0, True, 10.0, 8.0, 1)], DEADLINE, remaining_deadline=5.0
        )
        decision = policy.choose_task(view)
        assert decision is not None and decision.speculative

    def test_returns_none_when_no_useful_fallback_exists(self):
        policy = ResourceAwareSpeculative()
        # The only task's duplicate would be slower than its running copy, so
        # even the fallback has nothing worth launching.
        view = make_view(
            [(10.0, True, 5.0, 8.0, 1)], DEADLINE, remaining_deadline=3.0
        )
        assert policy.choose_task(view) is None

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            ResourceAwareSpeculative(max_copies_per_task=0)

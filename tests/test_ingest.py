"""Tests for the streaming cluster-trace converter and the cluster tier.

Covers the ``grass-experiments ingest`` pipeline end to end: golden
conversions of the bundled 20-row Google and Alibaba samples, malformed-row
errors that name file and line, ``--limit-jobs``/``--window`` slicing,
round-trip replay digest stability of converted traces across worker counts,
and byte-stability of the generated ``cluster`` tier.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cli import main, metrics_digest
from repro.experiments.runner import ExperimentScale, replay, replay_stream
from repro.simulator.sinks import parse_sink_spec
from repro.workload import (
    ClusterTierConfig,
    IngestStats,
    TraceFormatError,
    TraceJob,
    TraceReplayConfig,
    cluster_trace_job,
    ingest_trace,
    iter_cluster_trace,
    iter_ingested_trace,
    load_trace,
    save_trace,
    scan_trace,
)

SAMPLES = Path(__file__).parents[1] / "traces" / "samples"
GOOGLE_SAMPLE = SAMPLES / "google_task_events.sample.csv"
ALIBABA_SAMPLE = SAMPLES / "alibaba_batch_task.sample.csv"

TINY = ExperimentScale.quick()


# ------------------------------------------------------------ golden outputs


class TestGoldenConversions:
    def test_google_sample_converts_exactly(self):
        stats = IngestStats()
        jobs = list(iter_ingested_trace("google", GOOGLE_SAMPLE, stats=stats))
        assert jobs == [
            TraceJob(job_id=0, arrival_time=0.0,
                     task_durations=[3.5, 6.0, 7.5]),
            TraceJob(job_id=1, arrival_time=1.0, task_durations=[7.0, 8.0]),
            TraceJob(job_id=2, arrival_time=3.0, task_durations=[7.0, 5.5]),
            TraceJob(job_id=3, arrival_time=14.0, task_durations=[1.0]),
        ]
        assert stats.rows_read == 20
        assert stats.rows_skipped == 2       # SUBMIT + UPDATE_RUNNING rows
        assert stats.tasks_unfinished == 1   # one EVICT before the re-run
        assert stats.jobs_emitted == 4
        assert stats.tasks_emitted == 8

    def test_alibaba_sample_converts_exactly(self):
        stats = IngestStats()
        jobs = list(iter_ingested_trace("alibaba", ALIBABA_SAMPLE, stats=stats))
        assert [job.job_id for job in jobs] == [0, 1, 2, 3, 4, 5]
        assert [job.arrival_time for job in jobs] == [
            0.0, 10.0, 25.0, 100.0, 200.0, 300.0,
        ]
        # instance_num multiplies the duration rows: j_4011's 3-instance M1
        # becomes three 50 s tasks.
        assert jobs[1].task_durations == [50.0, 50.0, 50.0, 45.0, 45.0]
        assert stats.rows_read == 20
        # Failed, Waiting, zero-duration and zero-instance rows all skip.
        assert stats.rows_skipped == 4
        assert stats.jobs_emitted == 6
        assert stats.tasks_emitted == 28

    def test_ingest_trace_writes_replayable_jsonl(self, tmp_path):
        out = tmp_path / "google.jsonl"
        stats = ingest_trace("google", GOOGLE_SAMPLE, out)
        assert stats.jobs_emitted == 4
        trace = load_trace(out)
        assert [job.job_id for job in trace] == [0, 1, 2, 3]

    def test_empty_conversion_fails_and_removes_output(self, tmp_path):
        source = tmp_path / "empty.csv"
        source.write_text("")
        out = tmp_path / "empty.jsonl"
        with pytest.raises(ValueError, match="no replayable jobs"):
            ingest_trace("google", source, out)
        assert not out.exists()


# --------------------------------------------------------- malformed sources


class TestMalformedSources:
    def test_google_unsorted_rows_name_file_and_line(self, tmp_path):
        source = tmp_path / "unsorted.csv"
        source.write_text(
            "2000000,0,1,0,m,1,u,0,0,0,0,0,0\n"
            "1000000,0,1,0,m,4,u,0,0,0,0,0,0\n"
        )
        with pytest.raises(TraceFormatError, match=r"unsorted\.csv:2: "):
            list(iter_ingested_trace("google", source))

    def test_google_bad_number_names_file_and_line(self, tmp_path):
        source = tmp_path / "bad.csv"
        source.write_text("xyz,0,1,0,m,1,u,0,0,0,0,0,0\n")
        with pytest.raises(TraceFormatError, match=r"bad\.csv:1: "):
            list(iter_ingested_trace("google", source))

    def test_google_short_row_names_file_and_line(self, tmp_path):
        source = tmp_path / "short.csv"
        source.write_text("1000000,0,1\n")
        with pytest.raises(TraceFormatError, match=r"short\.csv:1: "):
            list(iter_ingested_trace("google", source))

    def test_alibaba_unsorted_rows_name_file_and_line(self, tmp_path):
        source = tmp_path / "unsorted.csv"
        source.write_text(
            "t1,1,j_1,m,Terminated,200,230,0,0\n"
            "t2,1,j_2,m,Terminated,100,130,0,0\n"
        )
        with pytest.raises(TraceFormatError, match=r"unsorted\.csv:2: "):
            list(iter_ingested_trace("alibaba", source))

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest format"):
            list(iter_ingested_trace("borg", GOOGLE_SAMPLE))


# ------------------------------------------------------------------- slicing


class TestSlicing:
    def test_limit_jobs_truncates_in_arrival_order(self):
        jobs = list(iter_ingested_trace("google", GOOGLE_SAMPLE, limit_jobs=2))
        assert [job.job_id for job in jobs] == [0, 1]
        assert jobs[0].arrival_time == 0.0

    def test_window_selects_rebased_arrival_range(self):
        # Rebased google arrivals are 0.0, 1.0, 3.0, 14.0.
        jobs = list(
            iter_ingested_trace("google", GOOGLE_SAMPLE, window=(1.0, 14.0))
        )
        assert [job.arrival_time for job in jobs] == [1.0, 3.0]
        # Renumbering happens after the window filter: ids stay dense.
        assert [job.job_id for job in jobs] == [0, 1]

    def test_window_and_limit_compose(self):
        jobs = list(
            iter_ingested_trace(
                "google", GOOGLE_SAMPLE, window=(0.0, 100.0), limit_jobs=3
            )
        )
        assert [job.job_id for job in jobs] == [0, 1, 2]


# ---------------------------------------------------------------- round trip


class TestRoundTripReplay:
    @pytest.mark.parametrize(
        "source_format, sample",
        [("google", GOOGLE_SAMPLE), ("alibaba", ALIBABA_SAMPLE)],
    )
    def test_converted_sample_digest_stable_across_workers(
        self, source_format, sample, tmp_path
    ):
        out = tmp_path / "converted.jsonl"
        ingest_trace(source_format, sample, out)
        replay_config = TraceReplayConfig(seed=0)
        batch = replay(
            ["late"], load_trace(out), replay_config=replay_config,
            scale=TINY, workers=1,
        )
        streamed = replay_stream(
            ["late"], out, replay_config=replay_config, scale=TINY,
            workers=4, stream_specs=True, sink=parse_sink_spec("aggregate"),
        )
        assert metrics_digest(batch) == metrics_digest(streamed.comparison)


# ------------------------------------------------------------- cluster tier


class TestClusterTier:
    def test_tier_validation(self):
        with pytest.raises(ValueError):
            ClusterTierConfig(num_jobs=0)
        with pytest.raises(ValueError):
            ClusterTierConfig(mean_interarrival=0.0)

    def test_arrivals_strictly_increase(self):
        tier = ClusterTierConfig(num_jobs=200, seed=3)
        arrivals = [job.arrival_time for job in iter_cluster_trace(tier)]
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_random_access_matches_iteration(self):
        tier = ClusterTierConfig(num_jobs=50, seed=7)
        streamed = list(iter_cluster_trace(tier))
        assert streamed == [cluster_trace_job(tier, i) for i in range(50)]
        window = list(iter_cluster_trace(tier, start=10, stop=20))
        assert window == streamed[10:20]

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        num_jobs=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_generator_is_byte_stable_across_iterations(self, seed, num_jobs):
        tier = ClusterTierConfig(num_jobs=num_jobs, seed=seed)
        first = list(iter_cluster_trace(tier))
        second = list(iter_cluster_trace(tier))
        assert first == second
        # Byte-for-byte, not merely equal: the digest hashes the encoding.
        encode = lambda job: (
            job.job_id, job.arrival_time.hex(),
            [d.hex() for d in job.task_durations],
        )
        assert [encode(j) for j in first] == [encode(j) for j in second]

    def test_batch_and_stream_specs_digests_match(self):
        tier = ClusterTierConfig(num_jobs=120, seed=0)
        replay_config = TraceReplayConfig(seed=0)
        batch = replay(
            ["late"], list(iter_cluster_trace(tier)),
            replay_config=replay_config, scale=TINY, shards=3, workers=1,
        )
        streamed = replay_stream(
            ["late"], tier, replay_config=replay_config, scale=TINY,
            shards=3, workers=2, stream_specs=True,
            sink=parse_sink_spec("aggregate"),
        )
        assert metrics_digest(batch) == metrics_digest(streamed.comparison)
        assert streamed.num_jobs == 120
        assert 1 <= streamed.peak_resident_jobs < 120


# ----------------------------------------------------- duplicate-id guarding


class TestDuplicateIdGuard:
    def duplicate_trace(self, tmp_path):
        path = tmp_path / "dupes.jsonl"
        trace = [
            TraceJob(job_id=1, arrival_time=0.0, task_durations=[1.0]),
            TraceJob(job_id=1, arrival_time=2.0, task_durations=[2.0]),
        ]
        # save_trace validates too, so write the rows directly.
        path.write_text(
            "\n".join(
                '{"job_id": 1, "arrival_time": %.1f, "task_durations": [1.0]}'
                % job.arrival_time
                for job in trace
            )
            + "\n"
        )
        return path

    def test_scan_trace_rejects_duplicate_ids(self, tmp_path):
        path = self.duplicate_trace(tmp_path)
        with pytest.raises(TraceFormatError, match="duplicate job_id 1"):
            scan_trace(path)

    @pytest.mark.parametrize("flag", ["--stream", "--stream-specs"])
    def test_streaming_cli_rejects_duplicate_ids(self, tmp_path, capsys, flag):
        path = self.duplicate_trace(tmp_path)
        exit_code = main([
            "replay", "--trace", str(path), "--policy", "late",
            "--scale", "quick", flag,
        ])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "duplicate job_id 1" in captured.err


# ----------------------------------------------------------------------- CLI


class TestIngestCli:
    def run_cli(self, capsys, *argv):
        exit_code = main(list(argv))
        return exit_code, capsys.readouterr()

    def test_ingest_verb_converts_and_reports(self, tmp_path, capsys):
        out = tmp_path / "out.jsonl"
        exit_code, captured = self.run_cli(
            capsys, "ingest", "--format", "google",
            "--input", str(GOOGLE_SAMPLE), "--output", str(out),
        )
        assert exit_code == 0
        assert "jobs emitted" in captured.out
        assert out.exists()

    def test_missing_input_is_a_usage_error(self, tmp_path, capsys):
        exit_code, captured = self.run_cli(
            capsys, "ingest", "--format", "google",
            "--input", str(tmp_path / "missing.csv"),
            "--output", str(tmp_path / "out.jsonl"),
        )
        assert exit_code == 2
        assert "not found" in captured.err

    def test_malformed_input_reports_file_and_line(self, tmp_path, capsys):
        source = tmp_path / "bad.csv"
        source.write_text("not,a,google,row\n")
        exit_code, captured = self.run_cli(
            capsys, "ingest", "--format", "google",
            "--input", str(source), "--output", str(tmp_path / "out.jsonl"),
        )
        assert exit_code == 2
        assert "bad.csv:1" in captured.err

    def test_bad_window_is_a_usage_error(self, tmp_path, capsys):
        exit_code, captured = self.run_cli(
            capsys, "ingest", "--format", "google",
            "--input", str(GOOGLE_SAMPLE),
            "--output", str(tmp_path / "out.jsonl"),
            "--window", "5", "5",
        )
        assert exit_code == 2

    def test_cluster_jobs_and_trace_are_exclusive(self, capsys):
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", "x.jsonl", "--cluster-jobs", "10",
        )
        assert exit_code == 2
        assert "exactly one" in captured.err

"""Shared fixtures and helpers for the GRASS reproduction test suite."""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.core.bounds import ApproximationBound
from repro.core.estimators import EstimatorConfig
from repro.core.job import Job, JobPhaseSpec, JobSpec
from repro.simulator.cluster import ClusterConfig
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.stragglers import StragglerConfig


def make_job_spec(
    works: Sequence[float],
    bound: ApproximationBound,
    job_id: int = 0,
    arrival: float = 0.0,
    max_slots: Optional[int] = None,
    intermediate: Optional[Sequence[Sequence[float]]] = None,
) -> JobSpec:
    """Build a job spec with one input phase and optional intermediate phases."""
    phases = [JobPhaseSpec(phase_index=0, task_works=tuple(works))]
    for index, phase_works in enumerate(intermediate or [], start=1):
        phases.append(JobPhaseSpec(phase_index=index, task_works=tuple(phase_works)))
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival,
        phases=tuple(phases),
        bound=bound,
        max_slots=max_slots,
    )


def make_simulation_config(
    machines: int = 20,
    seed: int = 0,
    stragglers: Optional[StragglerConfig] = None,
    oracle: bool = False,
    estimator: Optional[EstimatorConfig] = None,
) -> SimulationConfig:
    """A small, deterministic simulation config for unit tests."""
    return SimulationConfig(
        cluster=ClusterConfig(num_machines=machines, heterogeneity=0.0, seed=seed),
        stragglers=stragglers or StragglerConfig.none(),
        estimator=estimator or EstimatorConfig.perfect(),
        seed=seed,
        oracle_estimates=oracle,
    )


def run_single_job(spec, policy, config: Optional[SimulationConfig] = None):
    """Run one job under one policy and return (metrics, job result)."""
    config = config or make_simulation_config()
    metrics = Simulation(config, policy, [spec]).run()
    assert len(metrics.results) == 1
    return metrics, metrics.results[0]


@pytest.fixture
def deadline_bound() -> ApproximationBound:
    return ApproximationBound.with_deadline(30.0)


@pytest.fixture
def error_bound() -> ApproximationBound:
    return ApproximationBound.with_error(0.1)


@pytest.fixture
def started_job(deadline_bound) -> Job:
    """A running 4-task job used by task/job level unit tests."""
    spec = make_job_spec([5.0, 5.0, 5.0, 5.0], deadline_bound)
    job = Job(spec)
    job.start(0.0)
    return job

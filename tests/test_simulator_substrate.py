"""Unit tests for the simulator substrate: events, machines, cluster, stragglers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.machine import Machine
from repro.simulator.stragglers import StragglerConfig, StragglerModel


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.COPY_FINISH, tag="c")
        queue.push(1.0, EventKind.JOB_ARRIVAL, tag="a")
        queue.push(2.0, EventKind.JOB_DEADLINE, tag="b")
        tags = [queue.pop().payload["tag"] for _ in range(3)]
        assert tags == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.COPY_FINISH, tag="first")
        queue.push(1.0, EventKind.COPY_FINISH, tag="second")
        assert queue.pop().payload["tag"] == "first"
        assert queue.pop().payload["tag"] == "second"

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, EventKind.COPY_FINISH, tag="keep")
        drop = queue.push(0.5, EventKind.COPY_FINISH, tag="drop")
        queue.cancel(drop)
        assert queue.pop() is keep

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, EventKind.COPY_FINISH)
        queue.push(2.0, EventKind.COPY_FINISH)
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_len_and_clear(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.COPY_FINISH)
        assert len(queue) == 1 and bool(queue)
        queue.clear()
        assert len(queue) == 0 and not queue

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.COPY_FINISH)


class TestMachine:
    def test_occupy_release_cycle(self):
        machine = Machine(machine_id=0, num_slots=2)
        machine.occupy(1, 1, 1)
        assert machine.busy_slots == 1 and machine.free_slots == 1
        machine.release(1, 1, 1)
        assert machine.busy_slots == 0

    def test_occupy_beyond_capacity_raises(self):
        machine = Machine(machine_id=0, num_slots=1)
        machine.occupy(1, 1, 1)
        with pytest.raises(RuntimeError):
            machine.occupy(1, 2, 2)

    def test_release_unknown_copy_raises(self):
        machine = Machine(machine_id=0, num_slots=1)
        with pytest.raises(RuntimeError):
            machine.release(1, 1, 1)

    def test_double_occupy_same_copy_raises(self):
        machine = Machine(machine_id=0, num_slots=3)
        machine.occupy(1, 1, 1)
        with pytest.raises(RuntimeError):
            machine.occupy(1, 1, 1)

    def test_duration_scaling(self):
        machine = Machine(machine_id=0, num_slots=1, speed_factor=1.5)
        assert machine.duration_on_machine(10.0) == 15.0
        with pytest.raises(ValueError):
            machine.duration_on_machine(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(machine_id=0, num_slots=0)
        with pytest.raises(ValueError):
            Machine(machine_id=0, num_slots=1, speed_factor=0.0)


class TestCluster:
    def test_total_and_free_slots(self):
        cluster = Cluster(ClusterConfig(num_machines=5, slots_per_machine=2, heterogeneity=0.0))
        assert cluster.total_slots == 10
        assert cluster.free_slots == 10
        assert cluster.utilization() == 0.0

    def test_occupy_updates_utilization(self):
        cluster = Cluster(ClusterConfig(num_machines=4, heterogeneity=0.0))
        machine = cluster.pick_machine()
        cluster.occupy(machine.machine_id, 0, 0, 0)
        assert cluster.busy_slots == 1
        assert cluster.utilization() == pytest.approx(0.25)

    def test_pick_machine_prefers_least_loaded(self):
        cluster = Cluster(ClusterConfig(num_machines=2, slots_per_machine=2, heterogeneity=0.0))
        cluster.occupy(0, 0, 0, 0)
        # Machine 1 is strictly less loaded, so it must be chosen.
        assert cluster.pick_machine().machine_id == 1

    def test_pick_machine_none_when_full(self):
        cluster = Cluster(ClusterConfig(num_machines=1, heterogeneity=0.0))
        cluster.occupy(0, 0, 0, 0)
        assert cluster.pick_machine() is None

    def test_heterogeneity_bounds_speed_factors(self):
        cluster = Cluster(ClusterConfig(num_machines=50, heterogeneity=0.2, seed=1))
        speeds = [machine.speed_factor for machine in cluster.machines]
        assert all(0.8 <= speed <= 1.4 for speed in speeds)
        assert len(set(speeds)) > 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=0)
        with pytest.raises(ValueError):
            ClusterConfig(num_machines=1, heterogeneity=1.0)


class TestFairShare:
    def make_cluster(self, slots: int = 10) -> Cluster:
        return Cluster(ClusterConfig(num_machines=slots, heterogeneity=0.0))

    def test_single_job_gets_its_demand(self):
        cluster = self.make_cluster()
        allocations = cluster.fair_share([1], {1: 4})
        assert allocations == {1: 4}

    def test_equal_split_between_two_jobs(self):
        cluster = self.make_cluster()
        allocations = cluster.fair_share([1, 2], {1: 10, 2: 10})
        assert allocations[1] + allocations[2] == 10
        assert abs(allocations[1] - allocations[2]) <= 1

    def test_unused_share_is_redistributed(self):
        cluster = self.make_cluster()
        allocations = cluster.fair_share([1, 2], {1: 2, 2: 10})
        assert allocations[1] == 2
        assert allocations[2] == 8

    def test_caps_are_respected(self):
        cluster = self.make_cluster()
        allocations = cluster.fair_share([1, 2], {1: 10, 2: 10}, caps={1: 3, 2: None})
        assert allocations[1] == 3
        assert allocations[2] == 7

    def test_capacity_override(self):
        cluster = self.make_cluster()
        allocations = cluster.fair_share([1, 2], {1: 10, 2: 10}, capacity=4)
        assert allocations[1] + allocations[2] == 4

    def test_no_jobs(self):
        cluster = self.make_cluster()
        assert cluster.fair_share([], {}) == {}

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_fair_share_never_exceeds_capacity_or_demand(self, slots, demands):
        cluster = Cluster(ClusterConfig(num_machines=slots, heterogeneity=0.0))
        job_ids = list(range(len(demands)))
        allocations = cluster.fair_share(job_ids, dict(zip(job_ids, demands)))
        assert sum(allocations.values()) <= cluster.total_slots
        for job_id, demand in zip(job_ids, demands):
            assert 0 <= allocations[job_id] <= demand


class TestStragglerModel:
    def test_multiplier_is_deterministic(self):
        model_a = StragglerModel(StragglerConfig(), seed=5)
        model_b = StragglerModel(StragglerConfig(), seed=5)
        for copy_index in range(5):
            assert model_a.multiplier(1, 2, copy_index) == model_b.multiplier(1, 2, copy_index)

    def test_different_copies_differ(self):
        model = StragglerModel(StragglerConfig(), seed=5)
        values = {round(model.multiplier(0, 0, i), 6) for i in range(10)}
        assert len(values) > 1

    def test_multiplier_within_cap(self):
        config = StragglerConfig(shape=1.1, cap=8.0)
        model = StragglerModel(config, seed=1)
        samples = [model.multiplier(0, t, 0) for t in range(300)]
        assert max(samples) <= 8.0 * 1.3  # cap times the maximum jitter
        assert min(samples) > 0.0

    def test_heavy_tail_produces_stragglers(self):
        model = StragglerModel(StragglerConfig(), seed=2)
        samples = [model.multiplier(0, t, 0) for t in range(500)]
        samples.sort()
        median = samples[len(samples) // 2]
        assert max(samples) / median > 4.0

    def test_none_config_is_nearly_deterministic(self):
        model = StragglerModel(StragglerConfig.none(), seed=3)
        samples = [model.multiplier(0, t, 0) for t in range(100)]
        assert all(abs(sample - 1.0) < 0.05 for sample in samples)

    def test_copy_duration_combines_factors(self):
        model = StragglerModel(StragglerConfig.none(), seed=3)
        duration = model.copy_duration(10.0, 1.2, 0, 0, 0)
        assert duration == pytest.approx(12.0, rel=0.05)

    def test_copy_duration_validation(self):
        model = StragglerModel(StragglerConfig.none(), seed=3)
        with pytest.raises(ValueError):
            model.copy_duration(0.0, 1.0, 0, 0, 0)
        with pytest.raises(ValueError):
            model.copy_duration(1.0, 0.0, 0, 0, 0)

    def test_mean_multiplier_analytic_close_to_empirical(self):
        config = StragglerConfig()
        model = StragglerModel(config, seed=7)
        samples = [model.multiplier(0, t, 0) for t in range(4000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(config.mean_multiplier(), rel=0.15)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StragglerConfig(shape=0.0)
        with pytest.raises(ValueError):
            StragglerConfig(cap=0.5, median=1.0)
        with pytest.raises(ValueError):
            StragglerConfig(jitter=-1.0)

"""Unit tests for the baseline policies: no-spec, LATE, Mantri, oracle."""

import pytest

from repro.baselines import LatePolicy, MantriPolicy, NoSpeculationPolicy, OraclePolicy
from repro.core.bounds import ApproximationBound

from tests.test_policies import make_view

DEADLINE = ApproximationBound.with_deadline(100.0)
ERROR = ApproximationBound.with_error(0.2)


class TestNoSpeculation:
    def test_schedules_pending_in_task_order(self):
        policy = NoSpeculationPolicy()
        view = make_view(
            [(10.0, False, 9.0, 9.0, 0), (10.0, False, 3.0, 3.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        assert policy.choose_task(view).task.task_id == 0

    def test_never_speculates(self):
        policy = NoSpeculationPolicy()
        view = make_view([(10.0, True, 50.0, 5.0, 1)], DEADLINE, remaining_deadline=50.0)
        assert policy.choose_task(view) is None


class TestLate:
    def test_pending_tasks_take_priority(self):
        policy = LatePolicy()
        view = make_view(
            [(10.0, True, 50.0, 5.0, 1), (10.0, False, 10.0, 10.0, 0)],
            DEADLINE,
            remaining_deadline=50.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 1 and not decision.speculative

    def test_speculates_slowest_task_when_no_pending(self):
        policy = LatePolicy(min_runtime_before_speculation=0.0)
        view = make_view(
            [(10.0, True, 50.0, 10.0, 1), (10.0, True, 5.0, 10.0, 1)],
            DEADLINE,
            remaining_deadline=100.0,
        )
        decision = policy.choose_task(view)
        assert decision is not None
        assert decision.speculative
        assert decision.task.task_id == 0

    def test_respects_speculative_cap(self):
        policy = LatePolicy(speculative_cap=0.1, min_runtime_before_speculation=0.0)
        # One duplicate already running; wave width 4 -> budget max(1, 0.4)=1.
        view = make_view(
            [(10.0, True, 50.0, 10.0, 2), (10.0, True, 40.0, 10.0, 1)],
            DEADLINE,
            remaining_deadline=100.0,
            wave_width=4,
        )
        assert policy.choose_task(view) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LatePolicy(slow_task_percentile=0.0)
        with pytest.raises(ValueError):
            LatePolicy(speculative_cap=0.0)
        with pytest.raises(ValueError):
            LatePolicy(min_runtime_before_speculation=-1.0)


class TestMantri:
    def test_duplicates_when_remaining_exceeds_twice_new(self):
        policy = MantriPolicy(min_runtime_before_speculation=0.0)
        view = make_view(
            [(10.0, True, 25.0, 10.0, 1), (10.0, False, 10.0, 10.0, 0)],
            DEADLINE,
            remaining_deadline=100.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 0 and decision.speculative

    def test_prefers_pending_when_no_task_qualifies(self):
        policy = MantriPolicy(min_runtime_before_speculation=0.0)
        view = make_view(
            [(10.0, True, 15.0, 10.0, 1), (10.0, False, 10.0, 10.0, 0)],
            DEADLINE,
            remaining_deadline=100.0,
        )
        decision = policy.choose_task(view)
        assert decision.task.task_id == 1 and not decision.speculative

    def test_caps_copies_at_two(self):
        policy = MantriPolicy(min_runtime_before_speculation=0.0)
        view = make_view(
            [(10.0, True, 50.0, 10.0, 2)], DEADLINE, remaining_deadline=100.0
        )
        assert policy.choose_task(view) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MantriPolicy(duplicate_threshold=1.0)
        with pytest.raises(ValueError):
            MantriPolicy(max_copies_per_task=1)


class TestOracle:
    def test_uses_ras_when_many_waves_remain(self):
        policy = OraclePolicy()
        # 20 pending tasks of tnew 10, wave width 2, deadline 200 -> ~20 waves.
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(20)]
        tasks.append((10.0, True, 15.0, 10.0, 1))  # duplicate not beneficial for RAS
        view = make_view(tasks, DEADLINE, remaining_deadline=200.0, wave_width=2)
        decision = policy.choose_task(view)
        assert not decision.speculative

    def test_uses_gs_in_final_waves(self):
        policy = OraclePolicy()
        # Remaining deadline of one median task -> final wave -> GS semantics:
        # a duplicate that merely beats the running copy is accepted.
        view = make_view(
            [(10.0, True, 9.0, 5.0, 1)], DEADLINE, remaining_deadline=10.0, wave_width=2
        )
        decision = policy.choose_task(view)
        assert decision is not None and decision.speculative

    def test_error_bound_waves_from_required_tasks(self):
        policy = OraclePolicy()
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(6)]
        view = make_view(tasks, ERROR, remaining_required=6, wave_width=2)
        assert policy._remaining_waves(view) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OraclePolicy(switch_waves=0.0)

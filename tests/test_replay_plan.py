"""The unified ReplayPlan API: round-trip, validation, CLI generation, parity.

The plan is the PR-8 API collapse: one dataclass replaces the
``replay()`` / ``replay_stream()`` / ``stream_specs=`` / ``sink=`` call
zoo.  These tests pin its three contracts:

* a plan survives the JSON wire format byte-for-byte (the service depends
  on this — a submitted plan must be *the same experiment* offline);
* every cross-field conflict raises exactly one :class:`PlanError` whose
  message names both the CLI flags and the plan fields;
* the ``replay`` CLI flags are generated from the plan's field metadata,
  so the parser's surface and defaults cannot drift from the dataclass;
* ``execute(plan)`` is digest-identical to the deprecated entry points it
  replaced, across the mode × workers × sink matrix.
"""

import dataclasses
import warnings

import pytest

from repro.experiments.cli import build_replay_parser
from repro.experiments.plan import (
    PlanError,
    ReplayPlan,
    add_plan_arguments,
    plan_cli_fields,
    plan_from_args,
)
from repro.experiments.runner import (
    ExperimentScale,
    execute,
    plan_scale,
    replay,
    replay_stream,
)
from repro.simulator.sinks import parse_sink_spec
from repro.workload.trace_replay import TraceReplayConfig, export_trace

import argparse
from dataclasses import replace


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("plan") / "trace.jsonl"
    export_trace(path, num_jobs=18, size_scale=0.1, max_tasks_per_job=60, seed=7)
    return str(path)


class TestWireRoundTrip:
    def test_default_plan_round_trips_through_json(self):
        plan = ReplayPlan(trace="t.jsonl")
        assert ReplayPlan.from_json(plan.to_json()) == plan

    def test_fully_specified_plan_round_trips(self):
        plan = ReplayPlan(
            cluster_jobs=1000,
            policies=("grass", "late", "gs"),
            scale="paper",
            seeds=(3, 1, 4),
            workers=0,
            shards=16,
            stream_specs=True,
            max_resident_shards=5,
            sink="jsonl:out/rows",
            framework="spark",
            bound_kind="deadline",
            seed=42,
        )
        restored = ReplayPlan.from_json(plan.to_json())
        assert restored == plan
        # Tuples (not lists) after the round-trip, so equality is not a fluke
        # of sequence coercion.
        assert isinstance(restored.policies, tuple)
        assert isinstance(restored.seeds, tuple)

    def test_every_field_appears_on_the_wire(self):
        wire = ReplayPlan(trace="t.jsonl").to_wire()
        assert set(wire) == {f.name for f in dataclasses.fields(ReplayPlan)}

    def test_unknown_wire_field_is_rejected(self):
        with pytest.raises(PlanError, match="unknown plan field: bogus"):
            ReplayPlan.from_wire({"trace": "t.jsonl", "bogus": 1})

    def test_non_object_payloads_are_rejected(self):
        with pytest.raises(PlanError, match="JSON object"):
            ReplayPlan.from_wire(["not", "a", "dict"])
        with pytest.raises(PlanError, match="not valid JSON"):
            ReplayPlan.from_json("{nope")


class TestValidation:
    def test_valid_plan_returns_itself(self):
        plan = ReplayPlan(trace="t.jsonl")
        assert plan.validate() is plan

    @pytest.mark.parametrize(
        "fields, message",
        [
            ({}, "exactly one of --trace PATH or --cluster-jobs N"),
            ({"trace": "t", "cluster_jobs": 5}, "exactly one of --trace"),
            ({"cluster_jobs": 0}, "--cluster-jobs must be >= 1"),
            (
                {"trace": "t", "stream": True, "stream_specs": True},
                "at most one of --stream / --stream-specs",
            ),
            ({"trace": "t", "workers": -1}, "--workers must be >= 0"),
            ({"trace": "t", "shards": 0}, "--shards must be >= 1"),
            (
                {"trace": "t", "max_resident_shards": 0},
                "--max-resident-shards must be >= 1",
            ),
            ({"trace": "t", "policies": ()}, "at least one policy"),
            ({"trace": "t", "policies": ("nope",)}, "unknown policy nope"),
            ({"trace": "t", "scale": "galactic"}, "unknown scale 'galactic'"),
            ({"trace": "t", "seeds": ()}, "--seeds needs at least one seed"),
            ({"trace": "t", "framework": "dryad"}, "unknown framework 'dryad'"),
            ({"trace": "t", "bound_kind": "vibes"}, "unknown bound kind 'vibes'"),
            ({"trace": "t", "sink": "tape"}, "sink"),
        ],
    )
    def test_each_conflict_raises_one_named_error(self, fields, message):
        with pytest.raises(PlanError, match=message):
            ReplayPlan(**fields).validate()

    def test_mode_property_tracks_stream_flags(self):
        assert ReplayPlan(trace="t").mode == "batch"
        assert ReplayPlan(trace="t", stream=True).mode == "stream"
        assert ReplayPlan(trace="t", stream_specs=True).mode == "stream-specs"
        assert not ReplayPlan(trace="t").streaming
        assert ReplayPlan(trace="t", stream=True).streaming


class TestGeneratedCli:
    """The replay parser is generated from the plan — no drift possible."""

    def test_every_cli_field_has_a_flag(self):
        parser = argparse.ArgumentParser()
        add_plan_arguments(parser)
        dests = {action.dest for action in parser._actions}
        for spec in plan_cli_fields():
            assert spec.name in dests

    def test_defaults_match_the_dataclass(self):
        args = build_replay_parser().parse_args([])
        plan = plan_from_args(args)
        assert plan == ReplayPlan()

    def test_parsed_flags_land_in_plan_fields(self):
        args = build_replay_parser().parse_args(
            [
                "--cluster-jobs", "500", "--policy", "late", "--policy", "gs",
                "--scale", "quick", "--seeds", "5", "6", "--workers", "3",
                "--shards", "4", "--stream-specs", "--sink", "aggregate",
                "--framework", "spark", "--bound-kind", "error", "--seed", "9",
            ]
        )
        plan = plan_from_args(args)
        assert plan == ReplayPlan(
            cluster_jobs=500,
            policies=("late", "gs"),
            scale="quick",
            seeds=(5, 6),
            workers=3,
            shards=4,
            stream_specs=True,
            sink="aggregate",
            framework="spark",
            bound_kind="error",
            seed=9,
        )

    def test_help_text_comes_from_field_metadata(self):
        parser = build_replay_parser()
        by_dest = {action.dest: action for action in parser._actions}
        for spec in plan_cli_fields():
            assert by_dest[spec.name].help == spec.metadata["cli"]["help"]


def _legacy_digest(trace_path, plan):
    """The digest the deprecated entry points produce for the same shape."""
    scale = plan_scale(plan)
    config = TraceReplayConfig(
        framework=plan.framework, bound_kind=plan.bound_kind, seed=plan.seed
    )
    sink = parse_sink_spec(plan.sink)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if plan.streaming:
            streamed = replay_stream(
                plan.policies,
                trace_path,
                replay_config=config,
                scale=scale,
                shards=plan.shards,
                workers=plan.workers,
                max_resident_shards=plan.max_resident_shards,
                stream_specs=plan.stream_specs,
                sink=sink,
            )
            comparison = streamed.comparison
        else:
            from repro.workload.traces import load_trace

            comparison = replay(
                plan.policies,
                load_trace(trace_path),
                replay_config=config,
                scale=scale,
                shards=plan.shards,
                workers=plan.workers,
                sink=sink,
            )
    from repro.experiments.runner import metrics_digest

    return metrics_digest(comparison)


class TestExecuteParity:
    """execute(plan) == the deprecated API it replaced, digest for digest."""

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize(
        "mode_fields",
        [
            {},
            {"sink": "aggregate"},
            {"stream": True},
            {"stream_specs": True, "sink": "aggregate"},
        ],
        ids=["batch", "batch-aggregate", "stream", "stream-specs-aggregate"],
    )
    def test_digest_matches_legacy_across_matrix(self, trace_path, workers, mode_fields):
        plan = ReplayPlan(
            trace=trace_path,
            policies=("late",),
            scale="quick",
            seeds=(1,),
            workers=workers,
            shards=3,
            **mode_fields,
        )
        executed = execute(plan)
        assert executed.digest == _legacy_digest(trace_path, plan)
        assert executed.num_jobs == 18
        assert executed.num_shards == 3
        assert (executed.streamed is not None) == plan.streaming

    def test_all_modes_agree_with_each_other(self, trace_path):
        base = dict(
            trace=trace_path, policies=("late",), scale="quick", seeds=(1,), shards=3
        )
        digests = {
            execute(ReplayPlan(**base)).digest,
            execute(ReplayPlan(stream=True, **base)).digest,
            execute(ReplayPlan(stream_specs=True, sink="aggregate", **base)).digest,
        }
        assert len(digests) == 1

    def test_cluster_tier_plan_executes_in_batch_and_stream(self):
        base = dict(
            cluster_jobs=30, policies=("late",), scale="quick", seeds=(1,), shards=2
        )
        batch = execute(ReplayPlan(**base))
        streamed = execute(ReplayPlan(stream_specs=True, sink="aggregate", **base))
        assert batch.digest == streamed.digest
        assert batch.num_jobs == 30

    def test_on_metrics_hook_sees_every_simulation(self, trace_path):
        plan = ReplayPlan(
            trace=trace_path, policies=("late", "gs"), scale="quick",
            seeds=(1,), shards=2,
        )
        seen = []
        execute(plan, on_metrics=lambda *coords: seen.append(coords[:3]))
        assert sorted(seen) == sorted(
            (policy, 1, shard) for policy in ("late", "gs") for shard in range(2)
        )

    def test_empty_trace_is_a_plan_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(PlanError, match="trace is empty"):
            execute(ReplayPlan(trace=str(empty)))


class TestDeprecationShims:
    def test_replay_warns_once_per_call(self, trace_path):
        from repro.workload.traces import load_trace

        tiny = replace(ExperimentScale.quick(), seeds=(1,))
        with pytest.warns(DeprecationWarning, match="ReplayPlan"):
            replay(["late"], load_trace(trace_path), scale=tiny)

    def test_replay_stream_warns_once_per_call(self, trace_path):
        tiny = replace(ExperimentScale.quick(), seeds=(1,))
        with pytest.warns(DeprecationWarning, match="ReplayPlan"):
            replay_stream(["late"], trace_path, scale=tiny)


class TestDeprecationWindow:
    """Locks PR 8's deprecation window until the announced removal release.

    The shims survive exactly one release, but "survive" means more than
    "importable": until they are dropped, ``replay()``/``replay_stream()``
    must BOTH still emit :class:`DeprecationWarning` (so callers keep
    getting told to migrate) AND forward to byte-identical digests (so a
    not-yet-migrated pipeline cannot silently change results).  Breaking
    either half without touching this test is impossible.
    """

    def _plan(self, trace_path, **overrides):
        fields = dict(
            trace=trace_path, policies=("late",), scale="quick",
            seeds=(1,), shards=2,
        )
        fields.update(overrides)
        return ReplayPlan(**fields)

    def test_replay_shim_warns_and_forwards_byte_identical(self, trace_path):
        from repro.workload.traces import load_trace

        plan = self._plan(trace_path)
        expected = execute(plan).digest
        with pytest.warns(DeprecationWarning, match="ReplayPlan"):
            comparison = replay(
                list(plan.policies),
                load_trace(trace_path),
                replay_config=TraceReplayConfig(
                    framework=plan.framework,
                    bound_kind=plan.bound_kind,
                    seed=plan.seed,
                ),
                scale=plan_scale(plan),
                shards=plan.shards,
            )
        from repro.experiments.runner import metrics_digest

        assert metrics_digest(comparison) == expected

    def test_replay_stream_shim_warns_and_forwards_byte_identical(
        self, trace_path
    ):
        plan = self._plan(trace_path, stream=True)
        expected = execute(plan).digest
        with pytest.warns(DeprecationWarning, match="ReplayPlan"):
            streamed = replay_stream(
                list(plan.policies),
                trace_path,
                replay_config=TraceReplayConfig(
                    framework=plan.framework,
                    bound_kind=plan.bound_kind,
                    seed=plan.seed,
                ),
                scale=plan_scale(plan),
                shards=plan.shards,
            )
        from repro.experiments.runner import metrics_digest

        assert metrics_digest(streamed.comparison) == expected

    def test_warning_is_deprecation_not_future(self, trace_path):
        # The category matters: DeprecationWarning is silenced for end
        # users but loud under pytest, exactly the window's contract.
        from repro.workload.traces import load_trace

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            replay(
                ["late"],
                load_trace(trace_path),
                scale=replace(ExperimentScale.quick(), seeds=(1,)),
            )
        categories = {type(w.message) for w in caught
                      if issubclass(type(w.message), DeprecationWarning)}
        assert categories == {DeprecationWarning}

"""Tests for the parallel experiment executor.

The load-bearing property is *determinism*: fanning (policy, seed) runs out
over worker processes must produce byte-identical per-run metrics to the
serial path, so ``--workers`` is purely a wall-clock knob and never a
correctness knob.
"""

import pickle

import pytest

from repro.baselines import NoSpeculationPolicy
from repro.experiments.executor import (
    ParallelExecutor,
    RunRequest,
    default_worker_count,
)
from repro.experiments.runner import (
    ExperimentScale,
    build_simulation_config,
    compare_policies,
)
from repro.workload.synthetic import WorkloadConfig, generate_workload

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1, 2), warmup_jobs=4,
)


def _tiny_workload(seed: int = 42):
    return generate_workload(
        WorkloadConfig(
            num_jobs=TINY.num_jobs,
            size_scale=TINY.size_scale,
            max_tasks_per_job=TINY.max_tasks_per_job,
            seed=seed,
        )
    )


class TestRunRequest:
    def test_requires_exactly_one_policy_source(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        with pytest.raises(ValueError):
            RunRequest(workload=workload, config=config)
        with pytest.raises(ValueError):
            RunRequest(
                workload=workload,
                config=config,
                policy_name="late",
                policy=NoSpeculationPolicy(),
            )

    def test_instance_requests_are_not_parallel_safe(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        named = RunRequest(workload=workload, config=config, policy_name="late")
        pinned = RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy())
        assert named.parallel_safe
        assert not pinned.parallel_safe

    def test_execute_returns_metrics(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        metrics = RunRequest(workload=workload, config=config, policy_name="late").execute()
        assert len(metrics.results) == TINY.num_jobs


class TestParallelExecutor:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=-1)

    def test_zero_workers_auto_sizes(self):
        assert ParallelExecutor(workers=0).workers == default_worker_count()
        assert default_worker_count() >= 1

    def test_empty_batch(self):
        assert ParallelExecutor(workers=4).run([]) == []

    def test_mixed_batch_runs_pinned_requests_in_process(self):
        # A batch mixing named (parallel-safe) and instance (pinned)
        # requests must still return everything, in order, with the same
        # bytes as the fully serial path.
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        requests = [
            RunRequest(workload=workload, config=config, policy_name="late"),
            RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy()),
            RunRequest(workload=workload, config=config, policy_name="no-spec"),
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        mixed = ParallelExecutor(workers=4).run(requests)
        assert len(mixed) == 3
        for serial_metrics, mixed_metrics in zip(serial, mixed):
            assert pickle.dumps(serial_metrics) == pickle.dumps(mixed_metrics)

    def test_results_come_back_in_request_order(self):
        workload = _tiny_workload()
        requests = [
            RunRequest(
                workload=workload,
                config=build_simulation_config(workload, TINY, seed, False),
                policy_name=name,
            )
            for name in ("late", "no-spec")
            for seed in (1, 2)
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        parallel = ParallelExecutor(workers=4).run(requests)
        assert len(serial) == len(parallel) == 4
        for serial_metrics, parallel_metrics in zip(serial, parallel):
            assert pickle.dumps(serial_metrics) == pickle.dumps(parallel_metrics)


class TestCompareDeterminism:
    def test_workers_produce_byte_identical_runs(self):
        """compare_policies(workers=4) == compare_policies(workers=1), byte for byte.

        Each (policy, seed) run's MetricsCollector — per-job results included
        — must pickle to the same bytes whether it executed serially or in a
        worker process.
        """
        config = WorkloadConfig(bound_kind="mixed", seed=42)
        serial = compare_policies(["late", "gs"], config, scale=TINY, workers=1)
        parallel = compare_policies(["late", "gs"], config, scale=TINY, workers=4)
        assert set(serial.runs) == set(parallel.runs)
        for name in serial.runs:
            serial_run = serial.runs[name]
            parallel_run = parallel.runs[name]
            assert len(serial_run.metrics) == len(TINY.seeds)
            for ms, mp in zip(serial_run.metrics, parallel_run.metrics):
                assert pickle.dumps(ms) == pickle.dumps(mp)
            assert serial_run.results == parallel_run.results

    def test_scale_workers_is_the_default(self):
        from dataclasses import replace

        config = WorkloadConfig(bound_kind="error", seed=9)
        scaled = replace(TINY, workers=4)
        via_scale = compare_policies(["late"], config, scale=scaled)
        via_arg = compare_policies(["late"], config, scale=TINY, workers=4)
        serial = compare_policies(["late"], config, scale=TINY)
        assert via_scale.runs["late"].results == serial.runs["late"].results
        assert via_arg.runs["late"].results == serial.runs["late"].results

"""Tests for the parallel experiment executor.

The load-bearing property is *determinism*: fanning (policy, seed) runs out
over worker processes must produce byte-identical per-run metrics to the
serial path, so ``--workers`` is purely a wall-clock knob and never a
correctness knob.
"""

import pickle

import pytest

from repro.baselines import NoSpeculationPolicy
from repro.experiments.executor import (
    ParallelExecutor,
    RequestExecutionError,
    RunRequest,
    default_worker_count,
)
from repro.experiments.runner import (
    ExperimentScale,
    build_simulation_config,
    compare_policies,
)
from repro.workload.synthetic import WorkloadConfig, generate_workload

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1, 2), warmup_jobs=4,
)


def _tiny_workload(seed: int = 42):
    return generate_workload(
        WorkloadConfig(
            num_jobs=TINY.num_jobs,
            size_scale=TINY.size_scale,
            max_tasks_per_job=TINY.max_tasks_per_job,
            seed=seed,
        )
    )


class TestRunRequest:
    def test_requires_exactly_one_policy_source(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        with pytest.raises(ValueError):
            RunRequest(workload=workload, config=config)
        with pytest.raises(ValueError):
            RunRequest(
                workload=workload,
                config=config,
                policy_name="late",
                policy=NoSpeculationPolicy(),
            )

    def test_instance_requests_are_not_parallel_safe(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        named = RunRequest(workload=workload, config=config, policy_name="late")
        pinned = RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy())
        assert named.parallel_safe
        assert not pinned.parallel_safe

    def test_execute_returns_metrics(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        metrics = RunRequest(workload=workload, config=config, policy_name="late").execute()
        assert len(metrics.results) == TINY.num_jobs


class TestParallelExecutor:
    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=-1)

    def test_zero_workers_auto_sizes(self):
        assert ParallelExecutor(workers=0).workers == default_worker_count()
        assert default_worker_count() >= 1

    def test_empty_batch(self):
        assert ParallelExecutor(workers=4).run([]) == []

    def test_mixed_batch_runs_pinned_requests_in_process(self):
        # A batch mixing named (parallel-safe) and instance (pinned)
        # requests must still return everything, in order, with the same
        # bytes as the fully serial path.
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        requests = [
            RunRequest(workload=workload, config=config, policy_name="late"),
            RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy()),
            RunRequest(workload=workload, config=config, policy_name="no-spec"),
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        mixed = ParallelExecutor(workers=4).run(requests)
        assert len(mixed) == 3
        for serial_metrics, mixed_metrics in zip(serial, mixed):
            assert pickle.dumps(serial_metrics) == pickle.dumps(mixed_metrics)

    def test_results_come_back_in_request_order(self):
        workload = _tiny_workload()
        requests = [
            RunRequest(
                workload=workload,
                config=build_simulation_config(workload, TINY, seed, False),
                policy_name=name,
            )
            for name in ("late", "no-spec")
            for seed in (1, 2)
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        parallel = ParallelExecutor(workers=4).run(requests)
        assert len(serial) == len(parallel) == 4
        for serial_metrics, parallel_metrics in zip(serial, parallel):
            assert pickle.dumps(serial_metrics) == pickle.dumps(parallel_metrics)


class TestSingleSafeRequestFallback:
    def test_single_safe_request_in_mixed_batch_runs_in_process(self):
        """One parallel-safe request among pinned ones stays in-process.

        Deliberate: forking a pool for a single simulation costs more than
        the simulation.  The batch must still return correct, ordered
        results identical to the serial path.
        """
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        requests = [
            RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy()),
            RunRequest(workload=workload, config=config, policy_name="late"),
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        mixed = ParallelExecutor(workers=4).run(requests)
        assert len(mixed) == 2
        for serial_metrics, mixed_metrics in zip(serial, mixed):
            assert pickle.dumps(serial_metrics) == pickle.dumps(mixed_metrics)


class TestWorkerErrorSurfacing:
    def _failing_request(self):
        # An empty workload makes Simulation's constructor raise inside the
        # worker — the cheapest deterministic failure available.
        from repro.workload.synthetic import GeneratedWorkload, WorkloadConfig

        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        empty = GeneratedWorkload(config=WorkloadConfig())
        return RunRequest(workload=empty, config=config, policy_name="late")

    def test_worker_failure_names_the_request(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        good = RunRequest(workload=workload, config=config, policy_name="late")
        with pytest.raises(RequestExecutionError) as excinfo:
            ParallelExecutor(workers=2).run([good, self._failing_request()])
        message = str(excinfo.value)
        assert "RunRequest(policy=late" in message
        assert "jobs=0" in message  # the failing request, not the good one
        assert "worker traceback" in message

    def test_run_stream_surfaces_worker_failures_too(self):
        with pytest.raises(RequestExecutionError, match="jobs=0"):
            list(
                ParallelExecutor(workers=2).run_stream(
                    iter([self._failing_request(), self._failing_request()])
                )
            )

    def test_request_repr_is_concise(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=3, oracle_estimates=False)
        request = RunRequest(workload=workload, config=config, policy_name="late")
        text = repr(request)
        assert text == f"RunRequest(policy=late, jobs={len(workload.job_specs)}, seed=3, warm=none)"


class TestRunStream:
    def _requests(self, count: int = 6):
        workload = _tiny_workload()
        return [
            RunRequest(
                workload=workload,
                config=build_simulation_config(workload, TINY, seed, False),
                policy_name=name,
            )
            for name in ("late", "no-spec", "gs")
            for seed in range(1, 1 + count // 3)
        ]

    def test_stream_matches_batch_bytes_for_any_workers(self):
        requests = self._requests()
        batch = ParallelExecutor(workers=1).run(requests)
        for workers in (1, 4):
            streamed = list(
                ParallelExecutor(workers=workers).run_stream(iter(requests))
            )
            assert len(streamed) == len(batch)
            for stream_metrics, batch_metrics in zip(streamed, batch):
                assert pickle.dumps(stream_metrics) == pickle.dumps(batch_metrics)

    def test_stream_bounds_materialised_requests(self):
        """The request generator is never pulled past the in-flight window."""
        requests = self._requests()
        pulled = []

        def generator():
            for index, request in enumerate(requests):
                pulled.append(index)
                yield request

        executor = ParallelExecutor(workers=2)
        merged = 0
        for _ in executor.run_stream(generator(), max_in_flight=2):
            # At most window requests may be ahead of the merge point.
            assert len(pulled) <= merged + 2 + 1
            merged += 1
        assert merged == len(requests)

    def test_stream_handles_pinned_requests_in_order(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        requests = [
            RunRequest(workload=workload, config=config, policy_name="late"),
            RunRequest(workload=workload, config=config, policy=NoSpeculationPolicy()),
            RunRequest(workload=workload, config=config, policy_name="no-spec"),
        ]
        serial = ParallelExecutor(workers=1).run(requests)
        streamed = list(ParallelExecutor(workers=4).run_stream(iter(requests)))
        for serial_metrics, stream_metrics in zip(serial, streamed):
            assert pickle.dumps(serial_metrics) == pickle.dumps(stream_metrics)

    def test_stream_empty_iterator(self):
        assert list(ParallelExecutor(workers=4).run_stream(iter([]))) == []

    def test_stream_rejects_bad_window(self):
        with pytest.raises(ValueError):
            list(
                ParallelExecutor(workers=2).run_stream(
                    iter(self._requests()), max_in_flight=0
                )
            )


class TestWarmFieldValidation:
    def test_warm_state_and_warmup_are_exclusive(self):
        workload = _tiny_workload()
        config = build_simulation_config(workload, TINY, seed=1, oracle_estimates=False)
        with pytest.raises(ValueError, match="at most one"):
            RunRequest(
                workload=workload,
                config=config,
                policy_name="grass",
                warmup=workload,
                warm_state={"store": None},
            )


class TestCompareDeterminism:
    def test_workers_produce_byte_identical_runs(self):
        """compare_policies(workers=4) == compare_policies(workers=1), byte for byte.

        Each (policy, seed) run's MetricsCollector — per-job results included
        — must pickle to the same bytes whether it executed serially or in a
        worker process.
        """
        config = WorkloadConfig(bound_kind="mixed", seed=42)
        serial = compare_policies(["late", "gs"], config, scale=TINY, workers=1)
        parallel = compare_policies(["late", "gs"], config, scale=TINY, workers=4)
        assert set(serial.runs) == set(parallel.runs)
        for name in serial.runs:
            serial_run = serial.runs[name]
            parallel_run = parallel.runs[name]
            assert len(serial_run.metrics) == len(TINY.seeds)
            for ms, mp in zip(serial_run.metrics, parallel_run.metrics):
                assert pickle.dumps(ms) == pickle.dumps(mp)
            assert serial_run.results == parallel_run.results

    def test_scale_workers_is_the_default(self):
        from dataclasses import replace

        config = WorkloadConfig(bound_kind="error", seed=9)
        scaled = replace(TINY, workers=4)
        via_scale = compare_policies(["late"], config, scale=scaled)
        via_arg = compare_policies(["late"], config, scale=TINY, workers=4)
        serial = compare_policies(["late"], config, scale=TINY)
        assert via_scale.runs["late"].results == serial.runs["late"].results
        assert via_arg.runs["late"].results == serial.runs["late"].results

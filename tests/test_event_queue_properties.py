"""Property tests pinning the :class:`EventQueue` ordering contract.

The batched event kernel replaces the frozen-dataclass heap entries with
packed tuples; these tests lock the externally observable contract in place
first, so the queue can be rewritten against a fixed specification:

* pop order is ``(time, kind priority, sequence)`` — time first, then the
  kind tie-break (COPY_FINISH < JOB_ARRIVAL < PERIODIC_TICK < JOB_DEADLINE),
  then insertion order;
* cancellation is lazy and idempotent: a cancelled event is never popped,
  cancelling an already-popped or already-cancelled handle is a no-op, and
  ``len``/``bool`` count live events only;
* ``peek_time`` agrees with the next ``pop`` even across cancellations, which
  is what the engine's same-instant cohort drain relies on.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.events import _KIND_PRIORITY, EventKind, EventQueue

KINDS = sorted(EventKind, key=lambda kind: _KIND_PRIORITY[kind])

#: A pushed event: (time, kind); times are coarse floats so ties are common.
event_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(lambda t: t / 2.0),
        st.sampled_from(KINDS),
    ),
    min_size=1,
    max_size=40,
)


class TestPopOrdering:
    @given(specs=event_specs)
    @settings(max_examples=200, deadline=None)
    def test_pop_order_is_time_then_kind_priority_then_sequence(self, specs):
        queue = EventQueue()
        handles = [queue.push(time, kind, index=i) for i, (time, kind) in enumerate(specs)]
        expected = sorted(
            handles,
            key=lambda ev: (ev.time, _KIND_PRIORITY[ev.kind], ev.sequence),
        )
        popped = []
        while queue:
            popped.append(queue.pop())
        assert [ev.payload["index"] for ev in popped] == [
            ev.payload["index"] for ev in expected
        ]
        assert queue.pop() is None

    @given(specs=event_specs)
    @settings(max_examples=100, deadline=None)
    def test_sequence_numbers_are_strictly_increasing(self, specs):
        queue = EventQueue()
        handles = [queue.push(time, kind) for time, kind in specs]
        sequences = [handle.sequence for handle in handles]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_same_instant_kind_priority(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.JOB_DEADLINE, tag="deadline")
        queue.push(1.0, EventKind.JOB_ARRIVAL, tag="arrival")
        queue.push(1.0, EventKind.COPY_FINISH, tag="finish")
        queue.push(1.0, EventKind.PERIODIC_TICK, tag="tick")
        order = [queue.pop().payload["tag"] for _ in range(4)]
        assert order == ["finish", "arrival", "tick", "deadline"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(-0.5, EventKind.COPY_FINISH)


class TestCancellation:
    @given(specs=event_specs, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_cancelled_events_never_pop_and_len_counts_live(self, specs, data):
        queue = EventQueue()
        handles = [queue.push(time, kind, index=i) for i, (time, kind) in enumerate(specs)]
        to_cancel = data.draw(st.sets(st.sampled_from(range(len(handles)))))
        for index in to_cancel:
            queue.cancel(handles[index])
            queue.cancel(handles[index])  # idempotent
        live = [h for i, h in enumerate(handles) if i not in to_cancel]
        assert len(queue) == len(live)
        assert bool(queue) == bool(live)
        expected = sorted(
            live, key=lambda ev: (ev.time, _KIND_PRIORITY[ev.kind], ev.sequence)
        )
        popped = []
        while queue:
            popped.append(queue.pop())
        assert [ev.payload["index"] for ev in popped] == [
            ev.payload["index"] for ev in expected
        ]

    def test_cancel_after_pop_is_noop(self):
        queue = EventQueue()
        first = queue.push(1.0, EventKind.COPY_FINISH, tag="first")
        queue.push(2.0, EventKind.COPY_FINISH, tag="second")
        assert queue.pop() is first
        queue.cancel(first)  # already fired: must not affect the live event
        assert len(queue) == 1
        assert queue.pop().payload["tag"] == "second"

    def test_clear_empties_everything(self):
        queue = EventQueue()
        handle = queue.push(1.0, EventKind.COPY_FINISH)
        queue.push(2.0, EventKind.JOB_ARRIVAL)
        queue.cancel(handle)
        queue.clear()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None
        assert queue.peek_time() is None


class TestPeekAndCohortDrain:
    @given(specs=event_specs, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_peek_time_matches_next_pop(self, specs, data):
        queue = EventQueue()
        handles = [queue.push(time, kind) for time, kind in specs]
        for index in data.draw(st.sets(st.sampled_from(range(len(handles))))):
            queue.cancel(handles[index])
        while True:
            peeked = queue.peek_time()
            event = queue.pop()
            if event is None:
                assert peeked is None
                break
            assert peeked == event.time

    @given(specs=event_specs)
    @settings(max_examples=100, deadline=None)
    def test_same_instant_cohort_drains_completely(self, specs):
        """The engine's cohort drain: pop one event, then drain its instant."""
        queue = EventQueue()
        for time, kind in specs:
            queue.push(time, kind)
        cohorts = []
        while queue:
            event = queue.pop()
            cohort = [event]
            while queue.peek_time() == event.time:
                cohort.append(queue.pop())
            cohorts.append(cohort)
        times = [cohort[0].time for cohort in cohorts]
        assert times == sorted(times)
        assert len(set(times)) == len(times), "each instant drains in one cohort"
        assert sum(len(c) for c in cohorts) == len(specs)

"""Unit tests for tasks and task copies."""

import pytest

from repro.core.task import CopyState, Task, TaskCopy, TaskSpec, TaskState


def make_task(work: float = 10.0, task_id: int = 0) -> Task:
    return Task(spec=TaskSpec(task_id=task_id, job_id=0, work=work))


def make_copy(copy_id: int = 0, task_id: int = 0, start: float = 0.0, duration: float = 10.0) -> TaskCopy:
    return TaskCopy(
        copy_id=copy_id, task_id=task_id, machine_id=0, start_time=start, duration=duration
    )


class TestTaskSpec:
    def test_rejects_non_positive_work(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id=0, job_id=0, work=0.0)

    def test_rejects_negative_phase(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id=0, job_id=0, work=1.0, phase_index=-1)


class TestTaskCopy:
    def test_finish_time(self):
        copy = make_copy(start=3.0, duration=7.0)
        assert copy.finish_time == 10.0

    def test_progress_and_remaining(self):
        copy = make_copy(start=0.0, duration=10.0)
        assert copy.progress(5.0) == pytest.approx(0.5)
        assert copy.remaining(5.0) == pytest.approx(5.0)
        assert copy.remaining(15.0) == 0.0
        assert copy.progress(15.0) == 1.0

    def test_progress_rate(self):
        copy = make_copy(duration=10.0)
        assert copy.progress_rate(2.0) == pytest.approx(0.1)
        assert copy.progress_rate(0.0) == float("inf")

    def test_finish_sets_state_and_end_time(self):
        copy = make_copy(duration=4.0)
        copy.finish(4.0)
        assert copy.state is CopyState.FINISHED
        assert copy.end_time == 4.0

    def test_kill_sets_state(self):
        copy = make_copy()
        copy.kill(2.0)
        assert copy.state is CopyState.KILLED
        assert copy.end_time == 2.0

    def test_cannot_finish_twice(self):
        copy = make_copy()
        copy.finish(1.0)
        with pytest.raises(RuntimeError):
            copy.finish(2.0)

    def test_cannot_kill_finished_copy(self):
        copy = make_copy()
        copy.finish(1.0)
        with pytest.raises(RuntimeError):
            copy.kill(2.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            make_copy(duration=0.0)


class TestTaskLifecycle:
    def test_initial_state_is_pending(self):
        task = make_task()
        assert task.is_pending and not task.is_running and not task.is_completed

    def test_add_copy_moves_to_running(self):
        task = make_task()
        task.add_copy(make_copy())
        assert task.is_running
        assert task.running_copy_count == 1
        assert task.first_start_time == 0.0

    def test_add_copy_rejects_wrong_task(self):
        task = make_task(task_id=1)
        with pytest.raises(ValueError):
            task.add_copy(make_copy(task_id=99))

    def test_complete_kills_losers(self):
        task = make_task()
        winner = make_copy(copy_id=0, duration=10.0)
        loser = make_copy(copy_id=1, start=2.0, duration=20.0)
        task.add_copy(winner)
        task.add_copy(loser)
        killed = task.complete(10.0, winner)
        assert task.is_completed
        assert task.completion_time == 10.0
        assert killed == [loser]
        assert loser.state is CopyState.KILLED

    def test_cannot_add_copy_after_completion(self):
        task = make_task()
        copy = make_copy()
        task.add_copy(copy)
        task.complete(10.0, copy)
        with pytest.raises(RuntimeError):
            task.add_copy(make_copy(copy_id=1))

    def test_abandon_kills_running_copies(self):
        task = make_task()
        task.add_copy(make_copy())
        killed = task.abandon(5.0)
        assert len(killed) == 1
        assert task.state is TaskState.ABANDONED
        assert task.is_finished and not task.is_completed

    def test_abandon_completed_task_keeps_completed_state(self):
        task = make_task()
        copy = make_copy()
        task.add_copy(copy)
        task.complete(10.0, copy)
        task.abandon(11.0)
        assert task.is_completed

    def test_true_remaining_uses_best_copy(self):
        task = make_task()
        task.add_copy(make_copy(copy_id=0, start=0.0, duration=30.0))
        task.add_copy(make_copy(copy_id=1, start=5.0, duration=10.0))
        assert task.true_remaining(10.0) == pytest.approx(5.0)
        assert task.earliest_finish_time() == pytest.approx(15.0)

    def test_true_remaining_without_copies_raises(self):
        with pytest.raises(RuntimeError):
            make_task().true_remaining(0.0)

    def test_best_progress(self):
        task = make_task()
        task.add_copy(make_copy(copy_id=0, duration=20.0))
        task.add_copy(make_copy(copy_id=1, start=0.0, duration=10.0))
        assert task.best_progress(5.0) == pytest.approx(0.5)

    def test_wasted_work_counts_killed_copies_only(self):
        task = make_task()
        winner = make_copy(copy_id=0, duration=10.0)
        loser = make_copy(copy_id=1, start=4.0, duration=30.0)
        task.add_copy(winner)
        task.add_copy(loser)
        task.complete(10.0, winner)
        assert task.wasted_work() == pytest.approx(6.0)  # loser ran 4.0 -> 10.0

"""Property tests for EventQueue cancellation and its use by the engine.

The engine now cancels ``COPY_FINISH`` events of killed copies and the
``JOB_DEADLINE`` event of jobs that finish early, instead of popping dead
events and discarding them.  These tests pin down the queue semantics the
engine relies on: cancelled events are invisible to ``pop``/``peek_time``,
``len`` counts only live events, and cancelling popped events is a no-op.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NoSpeculationPolicy
from repro.core.bounds import ApproximationBound
from repro.core.policies import GreedySpeculative
from repro.simulator.engine import Simulation
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.stragglers import StragglerConfig

from tests.conftest import make_job_spec, make_simulation_config


class TestQueueCancellation:
    def test_cancelled_event_skipped_by_pop(self):
        queue = EventQueue()
        drop = queue.push(1.0, EventKind.COPY_FINISH, tag="drop")
        keep = queue.push(2.0, EventKind.COPY_FINISH, tag="keep")
        queue.cancel(drop)
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        first = queue.push(1.0, EventKind.COPY_FINISH)
        queue.push(2.0, EventKind.COPY_FINISH)
        assert len(queue) == 2
        queue.cancel(first)
        assert len(queue) == 1
        assert bool(queue)

    def test_queue_of_only_cancelled_events_is_falsy(self):
        queue = EventQueue()
        event = queue.push(1.0, EventKind.COPY_FINISH)
        queue.cancel(event)
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_cancel_after_pop_is_a_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, EventKind.COPY_FINISH)
        later = queue.push(2.0, EventKind.COPY_FINISH)
        assert queue.pop() is event
        queue.cancel(event)  # already fired: must not poison the queue
        assert len(queue) == 1
        assert queue.pop() is later

    def test_double_cancel_is_a_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, EventKind.COPY_FINISH)
        queue.push(2.0, EventKind.COPY_FINISH)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.booleans(),  # cancel this event later?
            ),
            min_size=0,
            max_size=40,
        ),
        st.integers(min_value=0, max_value=40),  # pops interleaved at the end
    )
    @settings(max_examples=200, deadline=None)
    def test_queue_matches_reference_model(self, pushes, pops):
        """pop() returns exactly the non-cancelled events in (time, seq) order,
        and len() tracks the model throughout."""
        queue = EventQueue()
        live = []
        for index, (time, cancel_later) in enumerate(pushes):
            event = queue.push(time, EventKind.COPY_FINISH, index=index)
            if cancel_later:
                queue.cancel(event)
            else:
                live.append(event)
        assert len(queue) == len(live)
        expected = sorted(live, key=lambda e: (e.time, e.sequence))
        for expected_event in expected[:pops]:
            assert queue.peek_time() == expected_event.time
            assert queue.pop() is expected_event
        assert len(queue) == max(0, len(live) - pops)
        remaining = expected[pops:]
        assert [queue.pop() for _ in remaining] == remaining
        assert queue.pop() is None


class TestEngineCancellation:
    def test_deadline_event_cancelled_when_job_finishes_early(self):
        # The job finishes its 2 tasks at t=5 while its deadline is t=100;
        # with cancellation the queue must be fully drained at the end
        # (no dead JOB_DEADLINE left to pop) and simulated time stays at 5.
        spec = make_job_spec([5.0] * 2, ApproximationBound.with_deadline(100.0), max_slots=2)
        simulation = Simulation(make_simulation_config(machines=4), NoSpeculationPolicy(), [spec])
        metrics = simulation.run()
        assert len(simulation._events) == 0
        assert metrics.simulated_time == 5.0
        assert metrics.results[0].completed_input_tasks == 2

    def test_killed_copy_events_cancelled(self):
        # Speculation kills loser copies; their COPY_FINISH events must be
        # cancelled rather than fire into a finished task (the engine now
        # asserts on stale completions instead of silently skipping them).
        spec = make_job_spec([5.0] * 6, ApproximationBound.exact(), max_slots=3)
        config = make_simulation_config(
            machines=6, stragglers=StragglerConfig(shape=1.05, cap=20.0, jitter=0.0), seed=11
        )
        simulation = Simulation(config, GreedySpeculative(), [spec])
        metrics = simulation.run()
        assert metrics.results[0].accuracy == 1.0
        assert len(simulation._events) == 0
        assert not simulation._copy_finish_events
        assert not simulation._deadline_events

    def test_events_processed_counter(self):
        spec = make_job_spec([2.0] * 4, ApproximationBound.exact(), max_slots=2)
        simulation = Simulation(make_simulation_config(), NoSpeculationPolicy(), [spec])
        simulation.run()
        # 1 arrival + 4 copy completions, no dead events.
        assert simulation.events_processed == 5

"""Unit and property-based tests for the utility layer (RNG streams, stats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import RngStream, spawn_rng
from repro.utils.stats import (
    OnlineMean,
    OnlineStats,
    clamp,
    gain_percent,
    histogram,
    improvement_percent,
    mean,
    median,
    percentile,
    weighted_mean,
)


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawn_is_deterministic_and_independent(self):
        root1 = RngStream(3)
        root2 = RngStream(3)
        child1 = root1.spawn("a")
        child2 = root2.spawn("a")
        other = root1.spawn("b")
        seq1 = [child1.random() for _ in range(4)]
        assert seq1 == [child2.random() for _ in range(4)]
        assert seq1 != [other.random() for _ in range(4)]

    def test_pareto_respects_scale(self):
        rng = RngStream(1)
        samples = [rng.pareto(1.5, 2.0) for _ in range(200)]
        assert all(sample >= 2.0 for sample in samples)

    def test_bounded_pareto_respects_cap(self):
        rng = RngStream(1)
        samples = [rng.bounded_pareto(1.1, 1.0, 5.0) for _ in range(500)]
        assert all(1.0 <= sample <= 5.0 for sample in samples)

    def test_bounded_pareto_requires_cap_above_scale(self):
        with pytest.raises(ValueError):
            RngStream(0).bounded_pareto(1.1, 2.0, 2.0)

    def test_bernoulli_bounds(self):
        rng = RngStream(2)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_weighted_choice_prefers_heavy_weight(self):
        rng = RngStream(3)
        picks = [rng.weighted_choice(["a", "b"], [0.99, 0.01]) for _ in range(300)]
        assert picks.count("a") > 250

    def test_weighted_choice_validates(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            rng.weighted_choice([], [])

    def test_truncated_gauss_within_bounds(self):
        rng = RngStream(4)
        samples = [rng.truncated_gauss(1.0, 0.5, low=0.5, high=1.5) for _ in range(200)]
        assert all(0.5 <= sample <= 1.5 for sample in samples)

    def test_spawn_rng_returns_named_streams(self):
        streams = spawn_rng(9, ["a", "b"])
        assert set(streams) == {"a", "b"}
        assert streams["a"].random() != streams["b"].random()

    def test_pareto_rejects_bad_parameters(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            rng.pareto(0.0)
        with pytest.raises(ValueError):
            rng.pareto(1.0, 0.0)


class TestStatsHelpers:
    def test_clamp(self):
        assert clamp(5.0, 0.0, 3.0) == 3.0
        assert clamp(-1.0, 0.0, 3.0) == 0.0
        assert clamp(2.0, 0.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            clamp(1.0, 3.0, 0.0)

    def test_mean_median(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            median([])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == 1.5
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 50) == 3.0
        with pytest.raises(ValueError):
            percentile(values, 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_improvement_and_gain_percent(self):
        assert improvement_percent(10.0, 5.0) == pytest.approx(50.0)
        assert gain_percent(0.5, 0.75) == pytest.approx(50.0)
        assert improvement_percent(0.0, 5.0) == 0.0
        assert gain_percent(0.0, 5.0) == 0.0

    def test_histogram(self):
        counts = histogram([0.5, 1.5, 2.5, 3.0], [0.0, 1.0, 2.0, 3.0])
        assert counts == [1, 1, 2]
        with pytest.raises(ValueError):
            histogram([1.0], [0.0])

    def test_online_mean(self):
        online = OnlineMean()
        for value in [1.0, 2.0, 3.0]:
            online.add(value)
        assert online.value == pytest.approx(2.0)
        other = OnlineMean()
        other.add(6.0)
        online.merge(other)
        assert online.value == pytest.approx(3.0)
        assert online.count == 4

    def test_online_stats(self):
        stats = OnlineStats()
        stats.extend([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)
        assert stats.minimum == 2.0 and stats.maximum == 6.0

    def test_online_stats_empty(self):
        stats = OnlineStats()
        assert stats.mean == 0.0 and stats.variance == 0.0
        assert stats.minimum == 0.0 and stats.maximum == 0.0


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_online_stats_matches_batch_mean(self, values):
        stats = OnlineStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(sum(values) / len(values), rel=1e-6, abs=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_median_is_between_min_and_max(self, values):
        result = median(values)
        assert min(values) <= result <= max(values)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_percentile_monotone_in_q(self, values, q):
        lower = percentile(values, max(0.0, q - 10.0))
        upper = percentile(values, min(100.0, q + 10.0))
        assert lower <= upper + 1e-9

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_rng_streams_reproducible(self, seed, name):
        a = RngStream(seed).spawn(name)
        b = RngStream(seed).spawn(name)
        assert a.random() == b.random()

    @given(
        st.floats(min_value=1.05, max_value=3.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_pareto_samples_at_least_scale(self, shape, scale):
        rng = RngStream(11)
        assert rng.pareto(shape, scale) >= scale

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_histogram_counts_everything_within_range(self, values):
        low, high = min(values), max(values) + 1.0
        counts = histogram(values, [low, (low + high) / 2.0, high])
        assert sum(counts) == len(values)

"""Unit tests for GRASS's sample store and switch-point deciders (§4.1, §4.2)."""

import pytest

from repro.core.bounds import ApproximationBound, BoundType
from repro.core.policies.samples import (
    JobSample,
    SampleStore,
    accuracy_bucket,
    utilization_bucket,
)
from repro.core.policies.switching import (
    ALL_FACTORS,
    FACTOR_BOUND,
    LearnedSwitchDecider,
    StrawmanSwitchDecider,
)

from tests.test_policies import make_view

DEADLINE = ApproximationBound.with_deadline(100.0)
ERROR = ApproximationBound.with_error(0.2)


def make_sample(policy="gs", bound="deadline", tasks=20, times=None, util=0.5, acc=0.8):
    return JobSample(
        policy=policy,
        bound_kind=bound,
        total_tasks=tasks,
        completion_times=times if times is not None else [float(i + 1) for i in range(tasks)],
        wave_width=5,
        utilization=util,
        estimator_accuracy=acc,
        observed_duration=float(tasks),
    )


class TestBuckets:
    @pytest.mark.parametrize("value,expected", [(0.1, "low"), (0.5, "medium"), (0.9, "high")])
    def test_utilization_bucket(self, value, expected):
        assert utilization_bucket(value) == expected

    @pytest.mark.parametrize("value,expected", [(0.5, "poor"), (0.75, "fair"), (0.9, "good")])
    def test_accuracy_bucket(self, value, expected):
        assert accuracy_bucket(value) == expected


class TestJobSample:
    def test_fraction_completed_by(self):
        sample = make_sample(times=[1.0, 2.0, 3.0, 4.0], tasks=4)
        assert sample.fraction_completed_by(0.0) == 0.0
        assert sample.fraction_completed_by(2.5) == pytest.approx(0.5)
        assert sample.fraction_completed_by(10.0) == 1.0

    def test_time_to_complete_fraction(self):
        sample = make_sample(times=[1.0, 2.0, 3.0, 4.0], tasks=4)
        assert sample.time_to_complete_fraction(0.5) == pytest.approx(2.0)
        assert sample.time_to_complete_fraction(0.0) == 0.0

    def test_time_to_complete_unreached_fraction_is_none(self):
        sample = make_sample(times=[1.0, 2.0], tasks=4)
        assert sample.time_to_complete_fraction(0.9) is None

    def test_waves_and_buckets(self):
        sample = make_sample(tasks=60, util=0.9, acc=0.6)
        assert sample.size_bucket == "medium"
        assert sample.utilization_bucket == "high"
        assert sample.accuracy_bucket == "poor"
        assert sample.waves == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sample(tasks=0)


class TestSampleStore:
    def test_add_and_len(self):
        store = SampleStore()
        store.add(make_sample())
        assert len(store) == 1
        assert store.total_added == 1

    def test_eviction_at_capacity(self):
        store = SampleStore(max_samples_per_key=2)
        for _ in range(5):
            store.add(make_sample())
        assert len(store) == 2
        assert store.total_added == 5

    def test_lookup_falls_back_to_coarser_keys(self):
        store = SampleStore()
        store.add(make_sample(policy="gs", tasks=20, util=0.1, acc=0.9))
        # Query with non-matching utilisation/accuracy buckets still finds it.
        samples = store.samples_for("gs", "deadline", "small", "high", "poor")
        assert len(samples) == 1

    def test_lookup_respects_policy_and_bound(self):
        store = SampleStore()
        store.add(make_sample(policy="gs", bound="deadline"))
        assert store.samples_for("ras", "deadline") == []
        assert store.samples_for("gs", "error") == []

    def test_expected_fraction_completed(self):
        store = SampleStore()
        store.add(make_sample(policy="ras", times=[1.0, 2.0, 3.0, 4.0], tasks=4))
        assert store.expected_fraction_completed("ras", 2.0) == pytest.approx(0.5)
        assert store.expected_fraction_completed("gs", 2.0) is None

    def test_expected_time_for_fraction(self):
        store = SampleStore()
        store.add(
            make_sample(policy="gs", bound=BoundType.ERROR.value, times=[1.0, 2.0, 3.0, 4.0], tasks=4)
        )
        assert store.expected_time_for_fraction("gs", 0.5) == pytest.approx(2.0)
        assert store.expected_time_for_fraction("ras", 0.5) is None

    def test_sample_counts_diagnostics(self):
        store = SampleStore()
        store.add(make_sample())
        counts = store.sample_counts()
        assert sum(counts.values()) == 1


class TestStrawmanDecider:
    def test_deadline_switches_when_two_waves_remain(self):
        decider = StrawmanSwitchDecider()
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(10)]
        far_view = make_view(tasks, DEADLINE, remaining_deadline=80.0)
        near_view = make_view(tasks, DEADLINE, remaining_deadline=15.0)
        assert not decider.should_switch(far_view)
        assert decider.should_switch(near_view)

    def test_error_switches_when_remaining_fits_two_waves(self):
        decider = StrawmanSwitchDecider()
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(12)]
        far_view = make_view(tasks, ERROR, remaining_required=12, wave_width=3)
        near_view = make_view(tasks, ERROR, remaining_required=5, wave_width=3)
        assert not decider.should_switch(far_view)
        assert decider.should_switch(near_view)


class TestLearnedDecider:
    def _populated_store(self):
        store = SampleStore()
        # RAS completes tasks steadily; GS finishes a burst early then stalls.
        store.add(make_sample(policy="ras", bound="deadline", tasks=20,
                              times=[i * 1.0 for i in range(1, 21)]))
        store.add(make_sample(policy="gs", bound="deadline", tasks=20,
                              times=[0.5 * i for i in range(1, 11)] + [100.0 + i for i in range(10)]))
        store.add(make_sample(policy="ras", bound="error", tasks=20,
                              times=[i * 1.0 for i in range(1, 21)]))
        store.add(make_sample(policy="gs", bound="error", tasks=20,
                              times=[0.5 * i for i in range(1, 21)]))
        return store

    def test_falls_back_to_strawman_with_empty_store(self):
        decider = LearnedSwitchDecider(store=SampleStore())
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(10)]
        view = make_view(tasks, DEADLINE, remaining_deadline=15.0)
        assert decider.should_switch(view) == StrawmanSwitchDecider().should_switch(view)

    def test_deadline_switches_near_bound_with_samples(self):
        decider = LearnedSwitchDecider(store=self._populated_store())
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(20)]
        # GS completes more in a short horizon, so near the deadline it should switch.
        near_view = make_view(tasks, DEADLINE, remaining_deadline=4.0)
        assert decider.should_switch(near_view)

    def test_deadline_does_not_switch_far_from_bound(self):
        decider = LearnedSwitchDecider(store=self._populated_store())
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(20)]
        far_view = make_view(tasks, DEADLINE, remaining_deadline=60.0)
        assert not decider.should_switch(far_view)

    def test_error_switches_when_gs_curve_strictly_faster(self):
        decider = LearnedSwitchDecider(store=self._populated_store())
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(20)]
        view = make_view(tasks, ERROR, remaining_required=4)
        assert decider.should_switch(view)

    def test_factor_subset_is_accepted(self):
        decider = LearnedSwitchDecider(
            store=self._populated_store(), factors=frozenset({FACTOR_BOUND})
        )
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(20)]
        view = make_view(tasks, DEADLINE, remaining_deadline=4.0)
        assert isinstance(decider.should_switch(view), bool)

    def test_unknown_factor_rejected(self):
        with pytest.raises(ValueError):
            LearnedSwitchDecider(store=SampleStore(), factors=frozenset({"bogus"}))

    def test_all_factors_constant(self):
        assert {"bound", "utilization", "accuracy"} == set(ALL_FACTORS)

"""Unit tests for the DAG builders and deadline apportioning (§5.2)."""

import pytest

from repro.core.bounds import ApproximationBound
from repro.dag import chain_job, estimate_intermediate_time, map_only_job, map_reduce_job


class TestBuilders:
    def test_map_only_job(self):
        spec = map_only_job(1, [2.0, 3.0], ApproximationBound.exact())
        assert spec.dag_length == 1
        assert spec.num_input_tasks == 2
        assert spec.name == "map-only-1"

    def test_map_reduce_job(self):
        spec = map_reduce_job(2, [2.0] * 4, [5.0, 5.0], ApproximationBound.with_error(0.25))
        assert spec.dag_length == 2
        assert spec.num_tasks == 6
        assert spec.intermediate_phases[0].task_count == 2

    def test_chain_job_length(self):
        spec = chain_job(
            3,
            [1.0] * 6,
            [[2.0], [2.0, 2.0], [3.0]],
            ApproximationBound.with_deadline(50.0),
        )
        assert spec.dag_length == 4
        assert [phase.phase_index for phase in spec.phases] == [0, 1, 2, 3]

    def test_builders_pass_through_options(self):
        spec = map_only_job(
            4, [1.0], ApproximationBound.exact(), arrival_time=7.0, max_slots=3, name="custom"
        )
        assert spec.arrival_time == 7.0
        assert spec.max_slots == 3
        assert spec.name == "custom"


class TestIntermediateEstimate:
    def test_single_wave_estimate_is_median_work(self):
        spec = map_reduce_job(1, [1.0] * 4, [4.0, 6.0], ApproximationBound.exact())
        assert estimate_intermediate_time(spec, allocation=2) == pytest.approx(5.0)

    def test_multiple_waves_multiply_estimate(self):
        spec = map_reduce_job(1, [1.0] * 4, [4.0, 4.0, 4.0, 4.0], ApproximationBound.exact())
        assert estimate_intermediate_time(spec, allocation=2) == pytest.approx(8.0)

    def test_map_only_job_has_zero_intermediate_time(self):
        spec = map_only_job(1, [1.0, 2.0], ApproximationBound.exact())
        assert estimate_intermediate_time(spec, allocation=2) == 0.0

    def test_allocation_must_be_positive(self):
        spec = map_only_job(1, [1.0], ApproximationBound.exact())
        with pytest.raises(ValueError):
            estimate_intermediate_time(spec, allocation=0)

"""The always-on replay service: admission, protocol, streaming and parity.

Three layers, tested bottom-up:

* :class:`FairShareAdmission` — pure scheduling unit tests (weighted share,
  idle-clamp, bounded queues with explicit 429 rejections), deterministic
  given the submit/dispatch order;
* the wire codecs — JSONL frames and the aggregate-chunk wire format must
  round-trip exactly (chunk digests travel as hex, so parity is byte-exact);
* the server end to end — a real asyncio server on an ephemeral port, real
  client connections, and the PR's headline contract: the streamed deltas a
  tenant receives refold into the *same* policy-tagged digest an offline
  ``execute(plan)`` of the identical plan produces, while overload draws
  explicit rejections instead of unbounded buffering.
"""

import asyncio

import pytest

from repro.experiments.plan import ReplayPlan
from repro.experiments.runner import execute
from repro.service import protocol
from repro.service.admission import AdmissionRejected, FairShareAdmission
from repro.service.client import (
    PlanRejected,
    ReplayServiceClient,
    ServiceError,
    run_plan_sync,
)
from repro.service.load import run_load
from repro.service.server import ReplayService, ServiceConfig
from repro.simulator.sinks import (
    StreamingAggregates,
    chunk_from_wire,
    chunk_to_wire,
)
from repro.utils.stats import OnlineStats


def tiny_plan(**overrides):
    fields = dict(
        cluster_jobs=8,
        policies=("grass",),
        scale="quick",
        seeds=(1,),
        shards=2,
        stream_specs=True,
        sink="aggregate",
    )
    fields.update(overrides)
    return ReplayPlan(**fields)


class TestFairShareAdmission:
    def test_single_tenant_is_fifo(self):
        admission = FairShareAdmission()
        admission.submit("a", "first")
        admission.submit("a", "second")
        assert admission.next() == ("a", "first")
        assert admission.next() == ("a", "second")
        assert admission.next() is None

    def test_equal_weights_alternate_under_contention(self):
        admission = FairShareAdmission(max_pending_per_tenant=4)
        for turn in range(3):
            admission.submit("a", f"a{turn}")
            admission.submit("b", f"b{turn}")
        order = [admission.next()[0] for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_tenant_gets_proportional_share(self):
        admission = FairShareAdmission(
            max_pending_per_tenant=8, weights={"heavy": 2.0}
        )
        for turn in range(6):
            admission.submit("heavy", f"h{turn}")
            admission.submit("light", f"l{turn}")
        first_six = [admission.next()[0] for _ in range(6)]
        # Per unit of virtual time the weight-2 tenant dispatches twice as
        # often: 4 of the first 6 slots.
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_idle_tenant_does_not_bank_credit(self):
        admission = FairShareAdmission(max_pending_per_tenant=8)
        for turn in range(4):
            admission.submit("busy", f"b{turn}")
        for _ in range(4):
            assert admission.next()[0] == "busy"
        # "sleeper" was idle the whole time; on arrival it is clamped to the
        # current virtual clock, so it cannot monopolise the next 4 slots.
        for turn in range(2):
            admission.submit("busy", f"late{turn}")
            admission.submit("sleeper", f"s{turn}")
        order = [admission.next()[0] for _ in range(4)]
        assert order.count("sleeper") == 2
        assert order.count("busy") == 2

    def test_larger_cost_is_debited_proportionally(self):
        admission = FairShareAdmission(max_pending_per_tenant=8)
        admission.submit("big", "b0", cost=4.0)
        admission.submit("small", "s0", cost=1.0)
        admission.submit("big", "b1", cost=4.0)
        admission.submit("small", "s1", cost=1.0)
        admission.submit("small", "s2", cost=1.0)
        # Both clocks start at 0 → "big" dispatches first (earlier arrival),
        # paying 4 units; "small" then owns the clock until it catches up.
        assert [admission.next()[0] for _ in range(4)] == [
            "big", "small", "small", "small",
        ]

    def test_per_tenant_backlog_rejects_with_429(self):
        admission = FairShareAdmission(max_pending_per_tenant=2, max_pending_total=10)
        admission.submit("a", 1)
        admission.submit("a", 2)
        with pytest.raises(AdmissionRejected) as excinfo:
            admission.submit("a", 3)
        assert excinfo.value.code == 429
        assert "tenant 'a' backlog full" in excinfo.value.reason
        # Another tenant is unaffected by a's backlog.
        admission.submit("b", 1)

    def test_service_backlog_rejects_with_429(self):
        admission = FairShareAdmission(max_pending_per_tenant=5, max_pending_total=3)
        for index in range(3):
            admission.submit(f"t{index}", index)
        with pytest.raises(AdmissionRejected) as excinfo:
            admission.submit("t9", 9)
        assert excinfo.value.code == 429
        assert "service backlog full" in excinfo.value.reason

    def test_dispatch_frees_backlog_capacity(self):
        admission = FairShareAdmission(max_pending_per_tenant=1, max_pending_total=1)
        admission.submit("a", 1)
        with pytest.raises(AdmissionRejected):
            admission.submit("b", 2)
        admission.next()
        admission.submit("b", 2)
        assert admission.next() == ("b", 2)

    def test_refund_restores_the_virtual_clock(self):
        admission = FairShareAdmission()
        admission.submit("a", "a0", cost=4.0)
        assert admission.next() == ("a", "a0")
        admission.submit("a", "a1", cost=4.0)
        admission.submit("b", "b0", cost=1.0)
        # Without the refund "a" (clock 4.0) would lose the next dispatch to
        # "b" (clock 0); refunding the dispatched cost puts "a" back at 0
        # and its earlier arrival breaks the tie.
        admission.refund("a", 4.0)
        assert admission.next() == ("a", "a1")

    def test_refund_floors_at_zero_and_ignores_unknown_tenants(self):
        admission = FairShareAdmission()
        admission.submit("a", "a0", cost=1.0)
        admission.next()
        admission.refund("a", 100.0)  # over-refund cannot bank credit
        admission.refund("ghost", 1.0)  # unknown tenant: silent no-op
        admission.submit("a", "a1")
        admission.submit("b", "b0")
        assert admission.next() == ("a", "a1")

    def test_cancel_where_drops_pending_and_frees_slots(self):
        admission = FairShareAdmission(max_pending_per_tenant=2, max_pending_total=3)
        admission.submit("a", "a0")
        admission.submit("a", "keep")
        admission.submit("b", "b0")
        removed = admission.cancel_where(lambda item: item in ("a0", "b0"))
        assert removed == [("a", "a0"), ("b", "b0")]
        assert admission.pending_total == 1
        # Cancelled entries freed real capacity, per tenant and service-wide.
        admission.submit("a", "a1")
        admission.submit("b", "b1")
        assert admission.next() == ("a", "keep")


class TestWireCodecs:
    def test_frame_round_trip(self):
        message = {"op": "submit", "tenant": "t", "plan": {"trace": "x"}}
        assert protocol.decode_message(protocol.encode_message(message)) == message

    def test_oversized_and_malformed_frames_are_protocol_errors(self):
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_message(b"x" * (protocol.MAX_LINE_BYTES + 1))
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.decode_message(b"{nope\n")
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode_message(b"[1,2]\n")

    def test_online_stats_round_trip_is_exact(self):
        stats = OnlineStats()
        stats.extend([1.5, -2.25, 1e-9, 3.14159])
        restored = OnlineStats.from_wire(stats.to_wire())
        assert restored == stats

    def test_empty_online_stats_round_trip(self):
        assert OnlineStats.from_wire(OnlineStats().to_wire()) == OnlineStats()

    def test_chunk_round_trip_preserves_digest(self):
        executed = execute(tiny_plan(shards=1))
        (chunk,) = executed.comparison.runs["grass"].aggregates.chunks
        restored = chunk_from_wire(chunk_to_wire(chunk))
        assert restored == chunk
        assert restored.digest == chunk.digest

    def test_streaming_aggregates_round_trip(self):
        executed = execute(tiny_plan())
        aggregates = executed.comparison.runs["grass"].aggregates
        restored = StreamingAggregates.from_wire(aggregates.to_wire())
        assert restored == aggregates
        assert restored.digest_parts() == aggregates.digest_parts()


def run_service(coro_factory, config=None):
    """Start a service on an ephemeral port, run the test coroutine, stop."""

    async def _scaffold():
        service = ReplayService(config or ServiceConfig())
        host, port = await service.start()
        try:
            return await coro_factory(service, host, port)
        finally:
            await service.stop()

    return asyncio.run(_scaffold())


class TestServiceEndToEnd:
    def test_ping(self):
        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                await client.ping()

        run_service(scenario)

    def test_streamed_deltas_refold_into_the_offline_digest(self):
        plan = tiny_plan()
        offline = execute(plan).digest

        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                return await client.run_plan(plan, tenant="t0")

        outcome = run_service(scenario)
        # Server digest, client refold of the streamed deltas, and the
        # offline execution of the identical plan: all byte-identical.
        assert outcome.digest == offline
        assert outcome.verify() == offline
        # One delta per (policy, seed, shard), coordinates intact.
        assert len(outcome.deltas) == 1 * 1 * outcome.num_shards
        assert outcome.num_jobs == 8
        # The reassembled aggregates answer queries, not just digests.
        assert outcome.aggregates_for("grass").num_results > 0
        assert outcome.first_delta_seconds is not None
        assert outcome.first_delta_seconds <= outcome.total_seconds

    def test_batch_plans_also_stream_deltas(self):
        plan = tiny_plan(stream_specs=False, sink="retain")
        offline = execute(plan).digest

        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                return await client.run_plan(plan, tenant="t0")

        outcome = run_service(scenario)
        assert outcome.verify() == offline

    def test_concurrent_tenants_all_verify(self):
        plans = [tiny_plan(seed=index) for index in range(4)]
        offline = [execute(plan).digest for plan in plans]

        async def scenario(service, host, port):
            async def one(index):
                async with ReplayServiceClient(host, port) as client:
                    return await client.run_plan(plans[index], tenant=f"t{index}")

            return await asyncio.gather(*(one(index) for index in range(4)))

        outcomes = run_service(
            scenario,
            ServiceConfig(max_inflight_plans=2, max_pending_total=16),
        )
        assert [outcome.verify() for outcome in outcomes] == offline
        # Distinct tier seeds are distinct experiments.
        assert len(set(offline)) == len(offline)

    def test_invalid_plan_is_rejected_400_before_admission(self):
        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                with pytest.raises(PlanRejected) as excinfo:
                    await client.run_plan(
                        ReplayPlan(trace="t", cluster_jobs=5), tenant="t0"
                    )
                assert excinfo.value.code == 400
                assert "exactly one of" in excinfo.value.reason
            assert service.rejected_submissions == 0  # never reached admission

        run_service(scenario)

    def test_unreadable_trace_is_an_error_event_not_a_crash(self):
        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="FileNotFoundError"):
                    await client.run_plan(
                        ReplayPlan(trace="/nonexistent/trace.jsonl"), tenant="t0"
                    )
                # The connection (and the service) survive the failure.
                await client.ping()
            assert service.failed_plans == 1

        run_service(scenario)

    def test_overload_draws_explicit_429_rejections(self):
        plan = tiny_plan()

        async def scenario(service, host, port):
            async def one(index):
                try:
                    async with ReplayServiceClient(host, port) as client:
                        await client.run_plan(plan, tenant=f"burst-{index}")
                    return "completed"
                except PlanRejected as exc:
                    assert exc.code == 429
                    return "rejected"

            results = await asyncio.gather(*(one(index) for index in range(10)))
            assert results.count("rejected") >= 1
            assert results.count("completed") >= 1
            assert service.rejected_submissions == results.count("rejected")

        run_service(
            scenario,
            ServiceConfig(
                max_inflight_plans=1, max_pending_per_tenant=1, max_pending_total=2
            ),
        )

    def test_run_plan_sync_wrapper(self):
        plan = tiny_plan()

        async def _start():
            service = ReplayService(ServiceConfig())
            host, port = await service.start()
            return service, host, port

        loop = asyncio.new_event_loop()
        try:
            service, host, port = loop.run_until_complete(_start())
            # The sync client cannot share that loop; but the server needs a
            # running loop to serve.  Exercise the wrapper against a
            # loop-in-thread instead.
            import threading

            thread = threading.Thread(target=loop.run_forever, daemon=True)
            thread.start()
            try:
                outcome = run_plan_sync(host, port, plan, tenant="sync")
                assert outcome.verify() == execute(plan).digest
            finally:
                asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=10)
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=10)
        finally:
            loop.close()


class TestCacheAndRelease:
    def test_repeated_plan_is_answered_from_the_replay_cache(self, tmp_path):
        plan = tiny_plan()

        async def scenario(service, host, port):
            async with ReplayServiceClient(host, port) as client:
                first = await client.run_plan(plan, tenant="t0")
                second = await client.run_plan(plan, tenant="t0")
            return first, second, service.cached_plans

        first, second, cached_plans = run_service(
            scenario, ServiceConfig(cache_dir=str(tmp_path / "cache"))
        )
        # The second submission never reached admission or the bridge pool:
        # the server answered it from the store it populated during the first.
        assert cached_plans == 1
        assert second.digest == first.digest
        assert second.verify() == first.digest
        assert len(second.deltas) == len(first.deltas)
        assert second.cache is not None
        assert second.cache["misses"] == 0
        assert second.cache["hits"] == len(first.deltas)
        assert first.cache is not None and first.cache["stores"] == len(first.deltas)

    def test_disconnect_before_done_releases_the_admission_debit(self):
        # Big enough that the server is still simulating when the client
        # vanishes; the result goes nowhere and the debit must come back.
        slow_plan = tiny_plan(cluster_jobs=1200)

        async def scenario(service, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                protocol.encode_message(
                    protocol.submit_message("drop", slow_plan.to_wire())
                )
            )
            await writer.drain()
            accepted = protocol.decode_message(await reader.readline())
            assert accepted["event"] == "accepted"
            writer.close()
            await writer.wait_closed()
            for _ in range(100):
                if service.released_submissions:
                    break
                await asyncio.sleep(0.05)
            assert service.released_submissions == 1
            # Whether the submission was still pending (cancelled) or already
            # dispatched (refunded), the tenant's fair share is whole again.
            assert service._admission.pending_total == 0
            assert service._admission._tenants["drop"].virtual_time < 1e-9

        run_service(scenario)


class TestLoadDriver:
    def test_run_load_self_hosted_reports_ok(self):
        report = run_load(
            tenants=3,
            distinct_plans=2,
            cluster_jobs=6,
            shards=2,
            overload_burst=6,
        )
        assert report["ok"], report
        assert report["completed"] == 3
        assert report["digest_mismatches"] == 0
        assert report["plans_per_second"] > 0
        assert report["first_delta_p99_seconds"] > 0
        assert report["overload"]["rejected"] >= 1

"""Tests for repro.analysis — the determinism & safety linter.

Covers: one positive and one negative golden fixture per rule, pragma
semantics (reasoned suppressions honored, reason-less and unknown-rule
pragmas rejected), the JSON report schema round-trip, CLI exit codes, and
the self-test that matters most: the analyzer runs clean over the repo's
own ``src/`` tree, so any new digest-hazardous code fails CI before a
single simulation runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import (
    DEFAULT_PATHS,
    AnalysisError,
    Finding,
    RULES,
    analyze_file,
    analyze_paths,
    analyze_source,
    findings_from_json,
    findings_to_json,
    iter_python_files,
    rule_table,
)
from repro.analysis.cli import analyze_main
from repro.analysis.engine import _module_of

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "fixtures", "analysis")

# Each rule's golden fixtures and the virtual module scope they are
# analyzed under (fixtures live outside src/, so the scope is explicit).
RULE_FIXTURES = {
    "DET001": (("repro", "simulator", "fixture"), 4),
    "DET002": (("repro", "simulator", "fixture"), 5),
    "DET003": (("repro", "workload", "fixture"), 4),
    "DET004": (("repro", "core", "fixture"), 2),
    "PIC101": (("repro", "experiments", "fixture"), 3),
    "PIC102": (("repro", "experiments", "fixture"), 3),
    "ASY201": (("repro", "service", "fixture"), 3),
    "ASY202": (("repro", "service", "fixture"), 2),
}


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, name)


def analyze_fixture(name: str, module):
    return analyze_file(fixture_path(name), module=module, is_test=False)


class TestRegistry:
    def test_eight_rules_with_unique_ids(self):
        ids = [rule.id for rule in RULES]
        assert ids == [
            "DET001", "DET002", "DET003", "DET004",
            "PIC101", "PIC102", "ASY201", "ASY202",
        ]

    def test_every_rule_documents_itself(self):
        for rule_id, synopsis, rationale in rule_table():
            assert rule_id and synopsis and rationale

    def test_fixture_table_covers_every_rule(self):
        assert set(RULE_FIXTURES) == {rule.id for rule in RULES}


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_positive_fixture_fires_exactly(self, rule_id):
        module, expected_count = RULE_FIXTURES[rule_id]
        findings = analyze_fixture(f"{rule_id.lower()}_positive.py", module)
        fired = [finding for finding in findings if finding.rule_id == rule_id]
        assert len(fired) == expected_count, findings
        for finding in fired:
            assert finding.line > 0
            assert finding.source.strip()  # carries the offending span

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_negative_fixture_is_clean(self, rule_id):
        module, _ = RULE_FIXTURES[rule_id]
        findings = analyze_fixture(f"{rule_id.lower()}_negative.py", module)
        assert findings == [], findings

    def test_positive_fixture_silent_outside_rule_scope(self):
        # The same wall-clock reads are fine outside digest-affecting
        # packages: scope comes from the module path, not the content.
        findings = analyze_fixture(
            "det002_positive.py", ("repro", "service", "fixture")
        )
        assert [f for f in findings if f.rule_id == "DET002"] == []

    def test_det004_does_not_fire_in_tests(self):
        source = "assert ratio == 1.0\n"
        assert analyze_source(source, "tests/test_x.py") == []
        assert len(analyze_source(source, "src/repro/core/x.py")) == 1


class TestPragmas:
    def test_reasoned_pragmas_suppress_inline_and_standalone(self):
        findings = analyze_fixture(
            "pragma_reasoned.py", ("repro", "simulator", "fixture")
        )
        assert findings == [], findings

    def test_missing_reason_is_rejected_and_reported(self):
        findings = analyze_fixture(
            "pragma_missing_reason.py", ("repro", "simulator", "fixture")
        )
        rules = sorted(finding.rule_id for finding in findings)
        assert rules == ["DET001", "PRG001"]
        (pragma_finding,) = [f for f in findings if f.rule_id == "PRG001"]
        assert "reason" in pragma_finding.message

    def test_unknown_rule_id_is_rejected(self):
        source = (
            "import random\n"
            "rng = random.Random()  # repro: allow[DET999] misspelled rule\n"
        )
        findings = analyze_source(
            source, "src/repro/simulator/x.py"
        )
        assert sorted(f.rule_id for f in findings) == ["DET001", "PRG001"]

    def test_pragma_only_suppresses_named_rule(self):
        source = (
            "import random\n"
            "import time\n"
            "x = (random.Random(), time.time())"
            "  # repro: allow[DET001] seeded elsewhere\n"
        )
        findings = analyze_source(source, "src/repro/simulator/x.py")
        # DET001 fired on the seeded Random? No: it is unseeded-only; the
        # pragma names DET001 but the DET002 wall-clock read still lands.
        assert [f.rule_id for f in findings] == ["DET002"]

    def test_pragma_inside_string_is_not_a_pragma(self):
        source = 'text = "# repro: allow[DET001]"\n'
        assert analyze_source(source, "src/repro/simulator/x.py") == []


class TestJsonSchema:
    def test_round_trip_is_exact(self):
        findings = analyze_fixture(
            "det001_positive.py", ("repro", "simulator", "fixture")
        )
        payload = findings_to_json(findings, files_scanned=1)
        assert findings_from_json(payload) == sorted(findings)

    def test_schema_shape(self):
        findings = analyze_fixture(
            "det001_positive.py", ("repro", "simulator", "fixture")
        )
        payload = json.loads(findings_to_json(findings, files_scanned=1))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"DET001": len(findings)}
        for entry in payload["findings"]:
            assert set(entry) == {
                "path", "line", "col", "rule_id", "message", "source",
            }

    def test_unknown_fields_and_versions_are_rejected(self):
        with pytest.raises(ValueError, match="version"):
            findings_from_json('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="unknown finding fields"):
            Finding.from_dict(
                {
                    "path": "x", "line": 1, "col": 0, "rule_id": "DET001",
                    "message": "m", "source": "s", "extra": True,
                }
            )


class TestEngine:
    def test_module_scope_derivation(self):
        assert _module_of("src/repro/simulator/engine.py") == (
            "repro", "simulator", "engine",
        )
        assert _module_of("src/repro/analysis/__init__.py") == ("repro", "analysis")
        assert _module_of("tests/test_engine.py") == ()
        assert _module_of("benchmarks/bench_engine_hotpath.py") == ()

    def test_fixture_corpus_is_skipped_by_directory_walks(self):
        files = list(iter_python_files(["tests"]))
        assert files, "tests/ walk found nothing"
        assert not any(os.sep + "analysis" + os.sep in path for path in files)

    def test_explicit_fixture_file_is_still_analyzable(self):
        path = fixture_path("pic102_positive.py")
        assert list(iter_python_files([path])) == [path]

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            list(iter_python_files(["does/not/exist"]))

    def test_syntax_error_becomes_a_finding(self):
        findings = analyze_source("def broken(:\n", "src/repro/core/x.py")
        assert [f.rule_id for f in findings] == ["SYN000"]

    def test_findings_sort_by_position(self):
        source = "import random\na = random.random()\nb = random.random()\n"
        findings = analyze_source(source, "src/repro/simulator/x.py")
        assert [f.line for f in findings] == [2, 3]


class TestSelfCheck:
    """The pass that keeps paying for itself: the repo analyzes clean."""

    def test_src_tree_has_zero_unsuppressed_findings(self):
        findings, files_scanned = analyze_paths([os.path.join(REPO_ROOT, "src")])
        assert files_scanned > 50
        assert findings == [], "\n".join(f.format_text() for f in findings)

    def test_default_paths_have_zero_unsuppressed_findings(self):
        paths = [os.path.join(REPO_ROOT, path) for path in DEFAULT_PATHS]
        findings, _ = analyze_paths(paths)
        assert findings == [], "\n".join(f.format_text() for f in findings)

    def test_reintroduced_violation_fails_the_gate(self, tmp_path):
        # The acceptance scenario: an unseeded Random() planted in a
        # simulator-scoped file must flip the exit code to 1.
        bad = "import random\nscratch = random.Random()\n"
        findings = analyze_source(bad, "src/repro/simulator/planted.py")
        assert [f.rule_id for f in findings] == ["DET001"]


def plant_simulator_violation(tmp_path) -> str:
    """An unseeded Random() planted under a src/repro/simulator layout.

    Scoping is path-derived, so the planted file is indistinguishable from
    real simulator code — exactly the acceptance scenario for the gate.
    """
    package = tmp_path / "src" / "repro" / "simulator"
    package.mkdir(parents=True)
    path = package / "planted.py"
    path.write_text("import random\nscratch = random.Random()\n")
    return str(path)


class TestCli:
    def test_clean_paths_exit_zero(self, capsys):
        code = analyze_main([os.path.join(REPO_ROOT, "src")])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_text_report(self, capsys, tmp_path):
        code = analyze_main([plant_simulator_violation(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "planted.py" in out

    def test_json_format_parses_and_counts(self, capsys, tmp_path):
        code = analyze_main(
            ["--format", "json", plant_simulator_violation(tmp_path)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DET001": 1}

    def test_missing_path_exits_two(self, capsys):
        assert analyze_main(["does/not/exist"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules_prints_registry(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_console_entry_point_routes_analyze_verb(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.cli", "analyze",
                plant_simulator_violation(tmp_path),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert result.returncode == 1
        assert "DET001" in result.stdout

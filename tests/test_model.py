"""Unit tests for the analytic model (Appendix A) and the Hill estimator."""

import pytest

from repro.model.hill import estimate_tail_index, hill_estimates
from repro.model.pareto import (
    conditional_residual,
    pareto_mean,
    pareto_min_mean,
    pareto_survival,
    truncated_pareto_mean,
)
from repro.model.proactive import (
    ProactiveDecision,
    blow_up_factor,
    optimal_copies,
    proactive_policy,
    service_rate,
)
from repro.model.reactive import (
    ReactiveModelConfig,
    closed_form_early_wave_cost,
    gs_omega,
    number_of_waves,
    omega_grid,
    ras_omega,
    reactive_response_time,
    response_time_ratio_curve,
)
from repro.utils.rng import RngStream


class TestParetoMath:
    def test_mean(self):
        assert pareto_mean(2.0, 1.0) == pytest.approx(2.0)
        assert pareto_mean(1.0, 1.0) == float("inf")

    def test_survival(self):
        assert pareto_survival(0.5, 2.0, 1.0) == 1.0
        assert pareto_survival(2.0, 2.0, 1.0) == pytest.approx(0.25)

    def test_min_of_k_copies(self):
        # min of 2 Pareto(beta) is Pareto(2 beta).
        assert pareto_min_mean(2, 1.5, 1.0) == pytest.approx(3.0 / 2.0)
        assert pareto_min_mean(1, 1.5, 1.0) == pareto_mean(1.5, 1.0)

    def test_conditional_residual_grows_for_heavy_tail(self):
        small = conditional_residual(2.0, 1.259, 1.0)
        large = conditional_residual(10.0, 1.259, 1.0)
        assert large > small  # the defining property of beta < 2 tails

    def test_truncated_mean_below_full_mean(self):
        assert truncated_pareto_mean(1.5, 1.0, 10.0) < pareto_mean(1.5, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_mean(0.0, 1.0)
        with pytest.raises(ValueError):
            conditional_residual(-1.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            pareto_min_mean(0, 1.5, 1.0)


class TestHillEstimator:
    def test_recovers_pareto_tail_index(self):
        rng = RngStream(1)
        samples = [rng.pareto(1.3, 1.0) for _ in range(8000)]
        estimate = estimate_tail_index(samples)
        assert estimate == pytest.approx(1.3, rel=0.15)

    def test_hill_estimates_are_positive(self):
        rng = RngStream(2)
        samples = [rng.pareto(2.0, 1.0) for _ in range(1000)]
        for _, beta in hill_estimates(samples):
            assert beta > 0

    def test_needs_enough_samples(self):
        with pytest.raises(ValueError):
            hill_estimates([1.0, 2.0, 3.0])

    def test_rejects_bad_fraction(self):
        rng = RngStream(3)
        samples = [rng.pareto(2.0, 1.0) for _ in range(100)]
        with pytest.raises(ValueError):
            hill_estimates(samples, max_fraction=0.0)


class TestProactiveModel:
    def test_blow_up_factor_exceeds_one_for_heavy_tails(self):
        # With beta = 1.259 (infinite variance) duplication saves work.
        assert blow_up_factor(2, 1.259, 1.0) > 1.0

    def test_blow_up_factor_below_one_for_light_tails(self):
        # With beta = 3 duplication wastes work.
        assert blow_up_factor(2, 3.0, 1.0) < 1.0

    def test_optimal_copies_guideline1(self):
        assert optimal_copies(1.259) == 2
        assert optimal_copies(2.5) == 1
        assert optimal_copies(0.9) >= 2

    def test_proactive_policy_early_regime(self):
        decision = proactive_policy(0.9, total_tasks=100, slots=10, shape=1.259)
        assert isinstance(decision, ProactiveDecision)
        assert decision.regime == "early"
        assert decision.copies == 2

    def test_proactive_policy_last_wave_uses_all_slots(self):
        decision = proactive_policy(0.001, total_tasks=100, slots=10, shape=1.259)
        assert decision.regime == "last-wave"
        assert decision.copies == 10

    def test_proactive_policy_transition_regime(self):
        decision = proactive_policy(0.03, total_tasks=100, slots=10, shape=1.259)
        assert decision.regime == "transition"
        assert 1 <= decision.copies <= 10

    def test_service_rate_bounded_by_blow_up(self):
        rate = service_rate(1.0, 100, 10, 1.259, 1.0, copies=2)
        assert rate == pytest.approx(blow_up_factor(2, 1.259, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            proactive_policy(1.5, 100, 10, 1.259)
        with pytest.raises(ValueError):
            optimal_copies(0.0)
        with pytest.raises(ValueError):
            blow_up_factor(0, 1.5)


class TestReactiveModel:
    CONFIG = ReactiveModelConfig(shape=1.259, scale=1.0, slots=8, trials=40, seed=1)

    def test_omega_closed_forms(self):
        assert gs_omega(1.259, 1.0) == pytest.approx(1.259)
        assert ras_omega(1.259, 1.0) == pytest.approx(2.518)
        with pytest.raises(ValueError):
            gs_omega(1.0)

    def test_response_time_positive_and_reproducible(self):
        first = reactive_response_time(1.0, waves=2, config=self.CONFIG)
        second = reactive_response_time(1.0, waves=2, config=self.CONFIG)
        assert first > 0
        assert first == second

    def test_more_waves_take_longer(self):
        short = reactive_response_time(1.0, waves=1, config=self.CONFIG)
        long = reactive_response_time(1.0, waves=4, config=self.CONFIG)
        assert long > short

    def test_speculation_beats_never_speculating_for_heavy_tails(self):
        never = reactive_response_time(1e6, waves=2, config=self.CONFIG)
        with_speculation = reactive_response_time(ras_omega(1.259), waves=2, config=self.CONFIG)
        assert with_speculation < never

    def test_ratio_curve_normalised_to_best(self):
        curves = response_time_ratio_curve([0.0, 1.0, 3.0], [1, 3], self.CONFIG)
        for curve in curves.values():
            ratios = [ratio for _, ratio in curve]
            assert min(ratios) == pytest.approx(1.0)
            assert all(ratio >= 1.0 - 1e-9 for ratio in ratios)

    def test_omega_grid_spans_range(self):
        grid = omega_grid(1.259, points=5, span=5.0)
        assert grid[0] == 0.0
        assert len(grid) == 5
        assert grid[-1] == pytest.approx(5.0 * 1.259)

    def test_closed_form_cost_positive_and_monotone_at_zero(self):
        cheap = closed_form_early_wave_cost(2.0, 1.259, 1.0)
        assert cheap > 0
        assert closed_form_early_wave_cost(0.5, 1.259, 1.0) > 0

    def test_number_of_waves(self):
        assert number_of_waves(100, 20) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            number_of_waves(10, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReactiveModelConfig(shape=1.0)
        with pytest.raises(ValueError):
            ReactiveModelConfig(trials=0)

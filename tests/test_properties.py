"""Property-based tests on core invariants of the simulator and the policies.

These are the "does the whole machine hold together" checks: for arbitrary
small workloads and any policy, the simulator must conserve slots, never
complete more tasks than exist, respect bounds, and stay deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LatePolicy, MantriPolicy, NoSpeculationPolicy
from repro.core.bounds import ApproximationBound
from repro.core.policies import Grass, GrassConfig, GreedySpeculative, ResourceAwareSpeculative
from repro.simulator.engine import Simulation
from repro.simulator.stragglers import StragglerConfig

from tests.conftest import make_job_spec, make_simulation_config

POLICY_FACTORIES = [
    NoSpeculationPolicy,
    LatePolicy,
    MantriPolicy,
    GreedySpeculative,
    ResourceAwareSpeculative,
    lambda: Grass(GrassConfig(seed=0)),
]


def _policy_strategy():
    return st.sampled_from(POLICY_FACTORIES)


@st.composite
def error_jobs(draw):
    num_tasks = draw(st.integers(min_value=2, max_value=20))
    work = draw(st.floats(min_value=1.0, max_value=20.0))
    error = draw(st.sampled_from([0.0, 0.1, 0.25, 0.5]))
    slots = draw(st.integers(min_value=1, max_value=8))
    return make_job_spec(
        [work] * num_tasks, ApproximationBound.with_error(error), max_slots=slots
    )


@st.composite
def deadline_jobs(draw):
    num_tasks = draw(st.integers(min_value=2, max_value=20))
    work = draw(st.floats(min_value=1.0, max_value=10.0))
    slots = draw(st.integers(min_value=1, max_value=8))
    slack = draw(st.floats(min_value=1.05, max_value=2.0))
    waves = -(-num_tasks // slots)
    deadline = waves * work * slack
    return make_job_spec(
        [work] * num_tasks, ApproximationBound.with_deadline(deadline), max_slots=slots
    )


class TestSimulatorInvariants:
    @given(error_jobs(), _policy_strategy(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_error_jobs_meet_their_bound(self, spec, policy_factory, seed):
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=seed)
        metrics = Simulation(config, policy_factory(), [spec]).run()
        result = metrics.results[0]
        assert result.met_bound
        assert result.completed_input_tasks >= spec.bound.required_tasks(spec.num_input_tasks)
        assert result.completed_input_tasks <= spec.num_input_tasks
        assert result.duration >= 0.0

    @given(deadline_jobs(), _policy_strategy(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_deadline_jobs_respect_the_deadline(self, spec, policy_factory, seed):
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=seed)
        metrics = Simulation(config, policy_factory(), [spec]).run()
        result = metrics.results[0]
        assert 0.0 <= result.accuracy <= 1.0
        assert result.duration <= spec.bound.deadline + 1e-6
        # Tasks completed never exceed what exists.
        assert result.completed_input_tasks <= spec.num_input_tasks

    @given(error_jobs(), _policy_strategy())
    @settings(max_examples=25, deadline=None)
    def test_same_seed_is_deterministic(self, spec, policy_factory):
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=7)
        first = Simulation(config, policy_factory(), [spec]).run().results[0]
        second = Simulation(config, policy_factory(), [spec]).run().results[0]
        assert first.duration == second.duration
        assert first.completed_input_tasks == second.completed_input_tasks

    @given(error_jobs(), _policy_strategy(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_all_slots_released_at_the_end(self, spec, policy_factory, seed):
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=seed)
        simulation = Simulation(config, policy_factory(), [spec])
        simulation.run()
        assert simulation.cluster.busy_slots == 0

    @given(error_jobs(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_speculation_never_loses_completions(self, spec, seed):
        # Any speculation policy must still satisfy the error bound; the
        # completed count can never be lower than the bound requires.
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=seed)
        for policy in (GreedySpeculative(), ResourceAwareSpeculative()):
            result = Simulation(config, policy, [spec]).run().results[0]
            assert result.completed_input_tasks >= spec.bound.required_tasks(spec.num_input_tasks)

    @given(
        st.lists(error_jobs(), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_multi_job_workloads_all_finish(self, specs, seed):
        specs = [
            make_job_spec(
                list(spec.input_phase.task_works),
                spec.bound,
                job_id=index,
                arrival=float(index),
                max_slots=spec.max_slots,
            )
            for index, spec in enumerate(specs)
        ]
        config = make_simulation_config(machines=12, stragglers=StragglerConfig(), seed=seed)
        metrics = Simulation(config, LatePolicy(), specs).run()
        assert len(metrics.results) == len(specs)
        assert metrics.simulated_time >= 0.0

"""ASY202 positive: raw cross-thread loop calls."""
import asyncio


def notify(loop, callback, payload):
    loop.call_soon_threadsafe(callback, payload)
    asyncio.run_coroutine_threadsafe(callback(payload), loop)

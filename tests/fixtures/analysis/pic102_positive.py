"""PIC102 positive: mutable default arguments."""


def collect(values=[], table={}, seen=set()):
    return values, table, seen

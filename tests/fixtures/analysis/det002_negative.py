"""DET002 negative: simulated time threaded explicitly, no wall clock."""


def advance(now: float, delta: float) -> float:
    return now + delta

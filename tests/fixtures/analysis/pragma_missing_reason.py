"""Pragma fixtures: a reason-less pragma suppresses nothing."""
import random

scratch = random.Random()  # repro: allow[DET001]

"""DET001 negative: explicitly seeded RNGs are replay-safe."""
import random

seeded = random.Random(42)
value = seeded.random()
pick = seeded.choice([1, 2, 3])

"""DET001 positive: unseeded RNG construction and module-global RNG calls."""
import random

rng = random.Random()
value = random.random()
pick = random.choice([1, 2, 3])
system = random.SystemRandom()

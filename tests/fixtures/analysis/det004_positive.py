"""DET004 positive: float equality comparisons."""


def classify(ratio: float) -> str:
    if ratio == 1.0:
        return "unit"
    if ratio != 0.5:
        return "other"
    return "half"

"""PIC102 negative: None defaults constructed per call."""


def collect(values=None, table=None, seen=None):
    return values or [], table or {}, seen or set()

"""Pragma fixtures: reasoned suppressions are honored."""
import random

scratch = random.Random()  # repro: allow[DET001] reseeded before every draw

# repro: allow[DET001] standalone pragma covers the next code line
other = random.Random()

"""DET003 positive: unordered iteration feeding loops and comprehensions."""
import glob
import os

for item in {3, 1, 2}:
    print(item)

names = [name for name in os.listdir(".")]
paths = [path for path in glob.glob("*.py")]
unique = [value for value in set([3, 1, 2])]

"""ASY202 negative: cross-thread calls routed through the bridge."""
from repro.experiments.executor import AsyncBridge


def notify(callback):
    return AsyncBridge.loop_callback(callback)

"""DET004 negative: isclose and integer comparisons."""
import math


def classify(ratio: float, count: int) -> str:
    if math.isclose(ratio, 1.0):
        return "unit"
    if count == 1:
        return "single"
    return "other"

"""PIC101 positive: unpicklable callables at executor boundaries."""
from repro.experiments.executor import ParallelExecutor, RunRequest


class Harness:
    def hook(self, value):
        return value

    def build(self):
        def local_merge(results):
            return results

        request = RunRequest(on_result=lambda result: result)
        executor = ParallelExecutor(merge=local_merge)
        other = RunRequest(callback=self.hook)
        return request, executor, other

"""DET003 negative: sorted() pins the order before iteration."""
import glob
import os

for item in sorted({3, 1, 2}):
    print(item)

names = [name for name in sorted(os.listdir("."))]
paths = [path for path in sorted(glob.glob("*.py"))]

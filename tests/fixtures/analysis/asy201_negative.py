"""ASY201 negative: async equivalents and sync-context blocking."""
import asyncio
import time


async def handler(bridge):
    await asyncio.sleep(0.1)
    return await bridge.submit(blocking_work)


def blocking_work():
    time.sleep(0.1)
    with open("data.txt") as handle:
        return handle.read()

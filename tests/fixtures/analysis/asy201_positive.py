"""ASY201 positive: blocking calls inside async def."""
import subprocess
import time


async def handler():
    time.sleep(0.1)
    subprocess.run(["true"])
    with open("data.txt") as handle:
        return handle.read()

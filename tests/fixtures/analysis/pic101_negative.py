"""PIC101 negative: module-level callables pickle fine."""
from repro.experiments.executor import ParallelExecutor, RunRequest


def merge(results):
    return results


def build():
    return ParallelExecutor(merge=merge), RunRequest(callback=merge)

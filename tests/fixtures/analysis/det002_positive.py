"""DET002 positive: wall-clock and OS-entropy reads."""
import os
import time
import uuid
from datetime import datetime
from time import perf_counter

started = time.time()
elapsed = perf_counter()
stamp = datetime.now()
token = uuid.uuid4()
entropy = os.urandom(8)

"""Unit and property-based tests for workload synthesis and trace summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import BoundType
from repro.workload.bins import deadline_bin_label, error_bin_label, group_by_job_bin
from repro.workload.distributions import (
    BoundedParetoDistribution,
    ConstantDistribution,
    EmpiricalDistribution,
    ExponentialDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.profiles import (
    available_frameworks,
    available_workloads,
    framework_profile,
    workload_profile,
)
from repro.workload.synthetic import WorkloadConfig, generate_workload
from repro.workload.traces import (
    TraceJob,
    load_trace,
    save_trace,
    summarize_trace,
    trace_from_specs,
)
from repro.utils.rng import RngStream


class TestDistributions:
    def test_constant(self):
        dist = ConstantDistribution(3.0)
        assert dist.sample(RngStream(0)) == 3.0
        assert dist.mean() == 3.0

    def test_uniform_bounds_and_mean(self):
        dist = UniformDistribution(1.0, 3.0)
        samples = dist.sample_many(RngStream(1), 200)
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert dist.mean() == 2.0

    def test_exponential_mean(self):
        dist = ExponentialDistribution(5.0)
        samples = dist.sample_many(RngStream(2), 3000)
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.15)

    def test_pareto_quantile_and_survival(self):
        dist = ParetoDistribution(shape=2.0, scale=1.0)
        assert dist.survival(1.0) == 1.0
        assert dist.survival(2.0) == pytest.approx(0.25)
        assert dist.quantile(0.75) == pytest.approx(2.0)
        assert dist.mean() == pytest.approx(2.0)

    def test_pareto_infinite_mean_below_one(self):
        assert ParetoDistribution(shape=0.9).mean() == float("inf")

    def test_bounded_pareto_cap(self):
        dist = BoundedParetoDistribution(shape=1.1, scale=1.0, cap=4.0)
        samples = dist.sample_many(RngStream(3), 500)
        assert all(1.0 <= s <= 4.0 for s in samples)
        assert dist.mean() < 4.0

    def test_lognormal_mean(self):
        dist = LogNormalDistribution(mu=0.0, sigma=0.25)
        samples = dist.sample_many(RngStream(4), 4000)
        assert sum(samples) / len(samples) == pytest.approx(dist.mean(), rel=0.1)

    def test_empirical_resamples_observed_values(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0])
        samples = dist.sample_many(RngStream(5), 100)
        assert set(samples) <= {1.0, 2.0, 3.0}
        assert len(dist) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantDistribution(0.0)
        with pytest.raises(ValueError):
            UniformDistribution(3.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialDistribution(0.0)
        with pytest.raises(ValueError):
            EmpiricalDistribution([])
        with pytest.raises(ValueError):
            BoundedParetoDistribution(1.1, 2.0, 1.0)


class TestBins:
    @pytest.mark.parametrize(
        "value,expected", [(3.0, "2-5"), (8.0, "6-10"), (12.0, "11-15"), (19.0, "16-20"), (25.0, "16-20")]
    )
    def test_deadline_bins(self, value, expected):
        assert deadline_bin_label(value) == expected

    @pytest.mark.parametrize(
        "value,expected", [(7.0, "5-10"), (13.0, "11-15"), (22.0, "21-25"), (29.0, "26-30"), (2.0, "5-10")]
    )
    def test_error_bins(self, value, expected):
        assert error_bin_label(value) == expected

    def test_group_by_job_bin(self):
        grouped = group_by_job_bin([10, 100, 1000])
        assert len(grouped["small"]) == 1
        assert len(grouped["medium"]) == 1
        assert len(grouped["large"]) == 1


class TestProfiles:
    def test_known_profiles_exist(self):
        assert set(available_workloads()) == {"bing", "facebook"}
        assert set(available_frameworks()) == {"hadoop", "spark"}

    def test_lookup_case_insensitive(self):
        assert workload_profile("Facebook").name == "facebook"
        assert framework_profile("SPARK").name == "spark"

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            workload_profile("dryad")
        with pytest.raises(ValueError):
            framework_profile("flink")

    def test_spark_tasks_shorter_than_hadoop(self):
        assert framework_profile("spark").median_task_work < framework_profile("hadoop").median_task_work


class TestSyntheticWorkload:
    def test_generates_requested_number_of_jobs(self):
        workload = generate_workload(WorkloadConfig(num_jobs=25, seed=1, size_scale=0.2))
        assert len(workload) == 25
        assert len(workload.metadata) == 25

    def test_job_ids_are_unique_and_arrivals_sorted(self):
        workload = generate_workload(WorkloadConfig(num_jobs=30, seed=2, size_scale=0.2))
        ids = [spec.job_id for spec in workload.specs()]
        arrivals = [spec.arrival_time for spec in workload.specs()]
        assert len(set(ids)) == 30
        assert arrivals == sorted(arrivals)

    def test_bound_kind_deadline_only(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=20, seed=3, bound_kind="deadline", size_scale=0.2)
        )
        assert all(spec.bound.kind is BoundType.DEADLINE for spec in workload.specs())

    def test_bound_kind_exact_means_zero_error(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=10, seed=3, bound_kind="exact", size_scale=0.2)
        )
        assert all(spec.bound.is_exact for spec in workload.specs())

    def test_error_bounds_within_configured_range(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=30, seed=4, bound_kind="error", error_range=(0.05, 0.30), size_scale=0.2)
        )
        assert all(0.05 <= spec.bound.error <= 0.30 for spec in workload.specs())

    def test_deadline_slack_metadata_within_range(self):
        workload = generate_workload(
            WorkloadConfig(
                num_jobs=30, seed=5, bound_kind="deadline", deadline_slack_range=(0.02, 0.20), size_scale=0.2
            )
        )
        for metadata in workload.metadata.values():
            assert 2.0 <= metadata.deadline_slack_percent <= 20.0

    def test_deadline_exceeds_ideal_duration(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=20, seed=6, bound_kind="deadline", size_scale=0.2)
        )
        for spec in workload.specs():
            metadata = workload.metadata_for(spec.job_id)
            assert spec.bound.deadline > metadata.ideal_duration

    def test_dag_length_respected(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=10, seed=7, dag_length=4, size_scale=0.2)
        )
        assert all(spec.dag_length == 4 for spec in workload.specs())

    def test_max_tasks_cap(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=30, seed=8, max_tasks_per_job=60)
        )
        assert all(spec.num_input_tasks <= 60 for spec in workload.specs())

    def test_max_slots_gives_multiwave_jobs(self):
        workload = generate_workload(WorkloadConfig(num_jobs=30, seed=9, size_scale=0.3))
        waves = [
            spec.num_input_tasks / spec.max_slots
            for spec in workload.specs()
            if spec.max_slots
        ]
        assert any(w > 1.5 for w in waves)

    def test_sequential_arrival_mode_spreads_jobs(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=5, seed=10, arrival_mode="sequential", size_scale=0.2)
        )
        arrivals = [spec.arrival_time for spec in workload.specs()]
        assert all(b - a > 1.0 for a, b in zip(arrivals, arrivals[1:]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_jobs=0)
        with pytest.raises(ValueError):
            WorkloadConfig(bound_kind="nonsense")
        with pytest.raises(ValueError):
            WorkloadConfig(dag_length=0)
        with pytest.raises(ValueError):
            WorkloadConfig(error_range=(0.5, 0.2))
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_mode="burst")

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_generation_is_reproducible(self, num_jobs, seed):
        config = WorkloadConfig(num_jobs=num_jobs, seed=seed, size_scale=0.1)
        first = generate_workload(config)
        second = generate_workload(config)
        assert [s.num_tasks for s in first.specs()] == [s.num_tasks for s in second.specs()]
        assert [s.arrival_time for s in first.specs()] == [s.arrival_time for s in second.specs()]


class TestTraces:
    def test_trace_from_specs_and_summary(self):
        workload = generate_workload(WorkloadConfig(num_jobs=15, seed=11, size_scale=0.2))
        trace = trace_from_specs(workload.specs())
        summary = summarize_trace(trace, name="test")
        assert summary.num_jobs == 15
        assert summary.num_tasks == sum(job.num_tasks for job in trace)
        assert summary.median_task_duration > 0
        assert len(summary.rows()) >= 8

    def test_trace_job_validation(self):
        with pytest.raises(ValueError):
            TraceJob(job_id=0, arrival_time=0.0, task_durations=[])
        with pytest.raises(ValueError):
            TraceJob(job_id=0, arrival_time=-1.0, task_durations=[1.0])

    def test_summarize_empty_trace_raises(self):
        with pytest.raises(ValueError):
            summarize_trace([])

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = [
            TraceJob(job_id=1, arrival_time=0.0, task_durations=[1.0, 2.0]),
            TraceJob(job_id=2, arrival_time=3.0, task_durations=[4.0]),
        ]
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[0].task_durations == [1.0, 2.0]
        assert loaded[1].arrival_time == 3.0

    def test_slowest_to_median_ratio(self):
        job = TraceJob(job_id=0, arrival_time=0.0, task_durations=[1.0, 1.0, 8.0])
        assert job.slowest_to_median_ratio == pytest.approx(8.0)

"""Unit tests for approximation bounds (deadline / error / exact)."""

import pytest

from repro.core.bounds import ApproximationBound, BoundType


class TestConstruction:
    def test_deadline_bound_fields(self):
        bound = ApproximationBound.with_deadline(12.5)
        assert bound.kind is BoundType.DEADLINE
        assert bound.deadline == 12.5
        assert bound.is_deadline and not bound.is_error

    def test_error_bound_fields(self):
        bound = ApproximationBound.with_error(0.25)
        assert bound.kind is BoundType.ERROR
        assert bound.error == 0.25
        assert bound.is_error and not bound.is_deadline

    def test_exact_is_zero_error(self):
        bound = ApproximationBound.exact()
        assert bound.is_error
        assert bound.error == 0.0
        assert bound.is_exact

    def test_error_bound_is_not_exact_when_positive(self):
        assert not ApproximationBound.with_error(0.05).is_exact

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            ApproximationBound.with_deadline(0.0)
        with pytest.raises(ValueError):
            ApproximationBound.with_deadline(-3.0)

    def test_error_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            ApproximationBound.with_error(1.0)
        with pytest.raises(ValueError):
            ApproximationBound.with_error(-0.1)

    def test_deadline_bound_rejects_error_field(self):
        with pytest.raises(ValueError):
            ApproximationBound(kind=BoundType.DEADLINE, deadline=5.0, error=0.1)

    def test_error_bound_rejects_deadline_field(self):
        with pytest.raises(ValueError):
            ApproximationBound(kind=BoundType.ERROR, error=0.1, deadline=5.0)


class TestRequiredTasks:
    def test_error_bound_required_tasks_rounds_up(self):
        bound = ApproximationBound.with_error(0.25)
        assert bound.required_tasks(10) == 8  # ceil(7.5)

    def test_exact_requires_all_tasks(self):
        assert ApproximationBound.exact().required_tasks(17) == 17

    def test_deadline_required_is_total(self):
        assert ApproximationBound.with_deadline(5.0).required_tasks(9) == 9

    def test_required_tasks_zero_total(self):
        assert ApproximationBound.with_error(0.3).required_tasks(0) == 0

    def test_required_tasks_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ApproximationBound.with_error(0.3).required_tasks(-1)

    @pytest.mark.parametrize(
        "error,total,expected",
        [(0.0, 5, 5), (0.5, 5, 3), (0.9, 10, 1), (0.05, 100, 95), (0.3, 1, 1)],
    )
    def test_required_tasks_table(self, error, total, expected):
        assert ApproximationBound.with_error(error).required_tasks(total) == expected


class TestDescribe:
    def test_describe_deadline(self):
        assert "deadline" in ApproximationBound.with_deadline(4.0).describe()

    def test_describe_error_percent(self):
        assert "10.0%" in ApproximationBound.with_error(0.10).describe()

    def test_describe_exact(self):
        assert "exact" in ApproximationBound.exact().describe()

"""Integration tests for the discrete-event engine."""

import pytest

from repro.baselines import LatePolicy, NoSpeculationPolicy
from repro.core.bounds import ApproximationBound
from repro.core.estimators import EstimatorConfig
from repro.core.policies import GreedySpeculative, ResourceAwareSpeculative
from repro.simulator.engine import Simulation, SimulationConfig, run_simulation
from repro.simulator.stragglers import StragglerConfig

from tests.conftest import make_job_spec, make_simulation_config, run_single_job


class TestBasicExecution:
    def test_exact_job_completes_all_tasks(self):
        spec = make_job_spec([5.0] * 8, ApproximationBound.exact(), max_slots=4)
        _, result = run_single_job(spec, NoSpeculationPolicy())
        assert result.completed_input_tasks == 8
        assert result.accuracy == 1.0
        assert result.met_bound

    def test_duration_matches_wave_arithmetic_without_stragglers(self):
        # 8 tasks of 5s on 4 slots with no stragglers: exactly 2 waves = 10s.
        spec = make_job_spec([5.0] * 8, ApproximationBound.exact(), max_slots=4)
        _, result = run_single_job(spec, NoSpeculationPolicy())
        assert result.duration == pytest.approx(10.0, rel=0.01)

    def test_error_bound_job_stops_early(self):
        spec = make_job_spec([5.0] * 10, ApproximationBound.with_error(0.3), max_slots=2)
        _, result = run_single_job(spec, NoSpeculationPolicy())
        assert result.completed_input_tasks == 7
        assert result.met_bound

    def test_deadline_job_stops_at_deadline(self):
        spec = make_job_spec([5.0] * 10, ApproximationBound.with_deadline(11.0), max_slots=2)
        _, result = run_single_job(spec, NoSpeculationPolicy())
        # Two slots for 11 seconds fit two full waves: 4 tasks.
        assert result.completed_input_tasks == 4
        assert result.accuracy == pytest.approx(0.4)
        assert not result.met_bound

    def test_simulation_requires_jobs(self):
        with pytest.raises(ValueError):
            Simulation(make_simulation_config(), NoSpeculationPolicy(), [])

    def test_run_simulation_helper(self):
        spec = make_job_spec([2.0] * 4, ApproximationBound.exact(), max_slots=2)
        metrics = run_simulation([spec], NoSpeculationPolicy(), make_simulation_config())
        assert len(metrics.results) == 1


class TestMultiJob:
    def test_fair_share_between_concurrent_jobs(self):
        specs = [
            make_job_spec([5.0] * 8, ApproximationBound.exact(), job_id=0),
            make_job_spec([5.0] * 8, ApproximationBound.exact(), job_id=1),
        ]
        config = make_simulation_config(machines=8)
        metrics = Simulation(config, NoSpeculationPolicy(), specs).run()
        assert len(metrics.results) == 2
        # Both jobs arrive together and share the 8 slots fairly: 4 each, so
        # each runs its 8 tasks in two 5-second waves.
        for result in metrics.results:
            assert result.duration == pytest.approx(10.0, rel=0.05)

    def test_later_arrival_starts_later(self):
        specs = [
            make_job_spec([5.0] * 4, ApproximationBound.exact(), job_id=0, max_slots=4),
            make_job_spec([5.0] * 4, ApproximationBound.exact(), job_id=1, arrival=100.0, max_slots=4),
        ]
        metrics = Simulation(make_simulation_config(machines=8), NoSpeculationPolicy(), specs).run()
        second = next(r for r in metrics.results if r.job_id == 1)
        assert second.start_time == pytest.approx(100.0)

    def test_results_count_matches_jobs(self):
        specs = [
            make_job_spec([3.0] * 3, ApproximationBound.with_error(0.0), job_id=i, arrival=float(i))
            for i in range(5)
        ]
        metrics = Simulation(make_simulation_config(machines=6), NoSpeculationPolicy(), specs).run()
        assert len(metrics.results) == 5
        assert sorted(r.job_id for r in metrics.results) == list(range(5))


class TestSpeculationMechanics:
    def test_speculative_copy_rescues_straggler(self):
        # One task straggles badly; GS should duplicate it and finish early.
        spec = make_job_spec([5.0] * 6, ApproximationBound.exact(), max_slots=3)
        straggler_config = StragglerConfig(shape=1.05, cap=20.0, jitter=0.0)
        config = make_simulation_config(machines=6, stragglers=straggler_config, seed=11)
        _, gs_result = run_single_job(spec, GreedySpeculative(), config)
        _, nospec_result = run_single_job(spec, NoSpeculationPolicy(), config)
        assert gs_result.duration <= nospec_result.duration + 1e-6
        assert gs_result.accuracy == 1.0

    def test_speculation_counted_in_metrics(self):
        spec = make_job_spec([5.0] * 10, ApproximationBound.exact(), max_slots=5)
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=3)
        metrics, result = run_single_job(spec, GreedySpeculative(), config)
        assert metrics.total_copies_launched >= 10
        assert metrics.speculative_copies_launched == result.speculative_copies

    def test_wasted_work_recorded_when_copies_race(self):
        spec = make_job_spec([5.0] * 10, ApproximationBound.exact(), max_slots=5)
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=3)
        metrics, _ = run_single_job(spec, ResourceAwareSpeculative(), config)
        if metrics.speculative_copies_launched > 0:
            assert metrics.wasted_slot_seconds > 0.0

    def test_oracle_estimates_mode_runs(self):
        spec = make_job_spec([5.0] * 8, ApproximationBound.with_error(0.1), max_slots=4)
        config = make_simulation_config(machines=8, stragglers=StragglerConfig(), seed=2, oracle=True)
        _, result = run_single_job(spec, ResourceAwareSpeculative(), config)
        assert result.met_bound


class TestDagJobs:
    def test_error_job_runs_intermediate_phase_after_input(self):
        spec = make_job_spec(
            [4.0] * 6,
            ApproximationBound.with_error(0.5),
            max_slots=3,
            intermediate=[[4.0, 4.0]],
        )
        _, result = run_single_job(spec, NoSpeculationPolicy())
        # Input phase needs 3 of 6 tasks (one wave = 4s), then 2 reduce tasks (4s).
        assert result.met_bound
        assert result.duration == pytest.approx(8.0, rel=0.05)

    def test_deadline_job_apportions_input_deadline(self):
        spec = make_job_spec(
            [4.0] * 6,
            ApproximationBound.with_deadline(12.0),
            max_slots=3,
            intermediate=[[4.0, 4.0, 4.0]],
        )
        config = make_simulation_config(machines=3)
        simulation = Simulation(config, NoSpeculationPolicy(), [spec])
        metrics = simulation.run()
        result = metrics.results[0]
        # One wave of intermediates (4s) is subtracted: input deadline 8s -> 2 waves.
        assert result.completed_input_tasks == 6
        assert result.duration <= 8.0 + 1e-6

    def test_dag_length_recorded_in_result(self):
        spec = make_job_spec(
            [4.0] * 4, ApproximationBound.with_error(0.0), max_slots=2, intermediate=[[4.0]]
        )
        _, result = run_single_job(spec, NoSpeculationPolicy())
        assert result.dag_length == 2


class TestEngineAccounting:
    def test_background_utilization_reserves_slots(self):
        spec = make_job_spec([5.0] * 8, ApproximationBound.exact(), max_slots=8)
        base = make_simulation_config(machines=8)
        reserved = SimulationConfig(
            cluster=base.cluster,
            stragglers=base.stragglers,
            estimator=base.estimator,
            seed=0,
            background_utilization=0.5,
        )
        fast = Simulation(base, NoSpeculationPolicy(), [spec]).run().results[0]
        slow = Simulation(reserved, NoSpeculationPolicy(), [spec]).run().results[0]
        assert slow.duration > fast.duration

    def test_estimator_accuracy_attached_to_results(self):
        spec = make_job_spec([5.0] * 8, ApproximationBound.exact(), max_slots=4)
        config = make_simulation_config(
            machines=8, stragglers=StragglerConfig(), estimator=EstimatorConfig(), seed=1
        )
        _, result = run_single_job(spec, LatePolicy(), config)
        assert 0.0 <= result.estimator_accuracy <= 1.0

    def test_utilization_metric_recorded(self):
        spec = make_job_spec([5.0] * 8, ApproximationBound.exact(), max_slots=4)
        metrics, _ = run_single_job(spec, NoSpeculationPolicy())
        assert metrics.utilization_stats.count > 0
        assert 0.0 <= metrics.utilization_stats.mean <= 1.0

    def test_summary_keys(self):
        spec = make_job_spec([5.0] * 4, ApproximationBound.with_deadline(20.0), max_slots=2)
        metrics, _ = run_single_job(spec, NoSpeculationPolicy())
        summary = metrics.summary()
        for key in ("jobs", "avg_accuracy", "avg_duration", "speculation_ratio"):
            assert key in summary

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(background_utilization=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(max_simulated_time=0.0)

    def test_determinism_same_seed_same_results(self):
        spec = make_job_spec([5.0] * 12, ApproximationBound.with_error(0.1), max_slots=4)
        config = make_simulation_config(machines=8, stragglers=StragglerConfig(), seed=9)
        _, first = run_single_job(spec, GreedySpeculative(), config)
        _, second = run_single_job(spec, GreedySpeculative(), config)
        assert first.duration == second.duration
        assert first.completed_input_tasks == second.completed_input_tasks

"""Unit tests for the GRASS policy: modes, perturbation, sample recording."""

import pytest

from repro.core.bounds import ApproximationBound
from repro.core.policies.grass import (
    MODE_ADAPTIVE_GS,
    MODE_ADAPTIVE_RAS,
    MODE_PINNED_GS,
    MODE_PINNED_RAS,
    Grass,
    GrassConfig,
)
from repro.core.policies.samples import SampleStore
from repro.baselines import LatePolicy
from repro.core.policies import GreedySpeculative, ResourceAwareSpeculative
from repro.core.job import Job
from repro.simulator.engine import Simulation
from repro.simulator.stragglers import StragglerConfig

from tests.conftest import make_job_spec, make_simulation_config, run_single_job
from tests.test_policies import make_view

DEADLINE = ApproximationBound.with_deadline(100.0)


class TestGrassConfig:
    def test_defaults(self):
        config = GrassConfig()
        assert config.perturbation == pytest.approx(0.15)
        assert config.switching == "learned"

    def test_validation(self):
        with pytest.raises(ValueError):
            GrassConfig(perturbation=1.5)
        with pytest.raises(ValueError):
            GrassConfig(switching="bogus")
        with pytest.raises(ValueError):
            GrassConfig(switch_check_interval=0.0)

    def test_labels(self):
        assert Grass().label() == "grass"
        assert Grass(GrassConfig(switching="strawman")).label() == "grass-strawman"
        assert "factor" in Grass(GrassConfig(factors=frozenset({"bound"}))).label()


class TestModes:
    def _job(self, job_id=0):
        job = Job(make_job_spec([10.0] * 8, DEADLINE, job_id=job_id, max_slots=4))
        job.start(0.0)
        job.allocation = 4
        return job

    def test_adaptive_jobs_start_in_ras_mode(self):
        grass = Grass(GrassConfig(perturbation=0.0))
        job = self._job()
        grass.on_job_start(job, 0.0)
        assert grass.mode_of(job.job_id) == MODE_ADAPTIVE_RAS

    def test_perturbation_pins_all_jobs_when_one(self):
        grass = Grass(GrassConfig(perturbation=1.0, seed=3))
        modes = set()
        for job_id in range(20):
            job = self._job(job_id)
            grass.on_job_start(job, 0.0)
            modes.add(grass.mode_of(job_id))
        assert modes <= {MODE_PINNED_GS, MODE_PINNED_RAS}
        assert len(modes) == 2  # both arms get explored
        assert grass.jobs_pinned == 20

    def test_choose_task_delegates_to_ras_before_switch(self):
        grass = Grass(GrassConfig(perturbation=0.0))
        view = make_view(
            [(10.0, True, 30.0, 4.0, 1), (10.0, False, 2.0, 2.0, 0)],
            DEADLINE,
            remaining_deadline=90.0,
        )
        grass.on_job_start(view.job, 0.0)
        ras_decision = ResourceAwareSpeculative().choose_task(view)
        grass_decision = grass.choose_task(view)
        assert grass_decision.task.task_id == ras_decision.task.task_id

    def test_switches_to_gs_near_deadline_with_strawman(self):
        grass = Grass(GrassConfig(perturbation=0.0, switching="strawman"))
        tasks = [(10.0, False, 10.0, 10.0, 0) for _ in range(6)]
        view = make_view(tasks, DEADLINE, remaining_deadline=12.0)
        grass.on_job_start(view.job, 0.0)
        grass.choose_task(view)
        assert grass.mode_of(view.job.job_id) == MODE_ADAPTIVE_GS
        assert grass.switches_performed == 1

    def test_pinned_gs_job_uses_gs(self):
        grass = Grass(GrassConfig(perturbation=0.0))
        view = make_view(
            [(10.0, True, 20.0, 8.0, 1), (10.0, False, 9.0, 9.0, 0)],
            DEADLINE,
            remaining_deadline=90.0,
        )
        grass.on_job_start(view.job, 0.0)
        grass._jobs[view.job.job_id].mode = MODE_PINNED_GS
        gs_decision = GreedySpeculative().choose_task(view)
        assert grass.choose_task(view).task.task_id == gs_decision.task.task_id

    def test_unannounced_job_is_treated_adaptively(self):
        grass = Grass(GrassConfig(perturbation=0.0))
        view = make_view([(10.0, False, 5.0, 5.0, 0)], DEADLINE, remaining_deadline=90.0)
        assert grass.choose_task(view) is not None
        assert grass.mode_of(view.job.job_id) == MODE_ADAPTIVE_RAS


class TestSampleRecording:
    def test_pinned_jobs_feed_the_store(self):
        store = SampleStore()
        grass = Grass(GrassConfig(perturbation=1.0, seed=1), sample_store=store)
        spec = make_job_spec([5.0] * 6, ApproximationBound.with_error(0.0), max_slots=3)
        config = make_simulation_config(machines=6)
        Simulation(config, grass, [spec]).run()
        assert len(store) == 1
        sample = store.samples_for("gs", "error") + store.samples_for("ras", "error")
        assert len(sample) == 1
        assert sample[0].total_tasks == 6

    def test_adaptive_jobs_do_not_feed_the_store(self):
        store = SampleStore()
        grass = Grass(GrassConfig(perturbation=0.0), sample_store=store)
        spec = make_job_spec([5.0] * 6, ApproximationBound.with_error(0.0), max_slots=3)
        Simulation(make_simulation_config(machines=6), grass, [spec]).run()
        assert len(store) == 0

    def test_job_state_cleaned_up_on_finish(self):
        grass = Grass(GrassConfig(perturbation=0.0))
        spec = make_job_spec([5.0] * 4, ApproximationBound.with_error(0.0), max_slots=2)
        Simulation(make_simulation_config(machines=4), grass, [spec]).run()
        assert grass.mode_of(spec.job_id) is None


class TestGrassEndToEnd:
    def test_grass_completes_error_bound_workload(self):
        spec = make_job_spec([8.0] * 20, ApproximationBound.with_error(0.1), max_slots=5)
        config = make_simulation_config(machines=10, stragglers=StragglerConfig(), seed=4)
        _, result = run_single_job(spec, Grass(GrassConfig(seed=4)), config)
        assert result.met_bound
        assert result.completed_input_tasks >= 18

    def test_grass_not_worse_than_late_on_stragglers(self):
        # A multi-wave error-bound job with heavy stragglers: GRASS must finish
        # at least as fast as LATE on average across seeds.
        grass_durations, late_durations = [], []
        for seed in range(3):
            spec = make_job_spec([8.0] * 40, ApproximationBound.with_error(0.1), max_slots=10)
            config = make_simulation_config(machines=12, stragglers=StragglerConfig(), seed=seed)
            _, grass_result = run_single_job(spec, Grass(GrassConfig(seed=seed)), config)
            _, late_result = run_single_job(spec, LatePolicy(), config)
            grass_durations.append(grass_result.duration)
            late_durations.append(late_result.duration)
        assert sum(grass_durations) <= sum(late_durations) * 1.05

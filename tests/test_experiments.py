"""Integration tests for the experiment harness (runner, policies, figures, CLI)."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.figures import (
    FIGURES,
    figure1_deadline_example,
    figure2_error_example,
    figure3_hill_plot,
    figure4_reactive_model,
    run_figure,
    table1_traces,
)
from repro.experiments.policies import (
    available_policies,
    make_policy,
    needs_oracle_estimates,
)
from repro.experiments.runner import (
    ExperimentScale,
    compare_policies,
    improvement_in_accuracy,
    improvement_in_duration,
)
from repro.workload.synthetic import WorkloadConfig

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40, seeds=(1,), warmup_jobs=4
)


class TestPolicyRegistry:
    def test_all_registered_policies_construct(self):
        for name in available_policies():
            policy = make_policy(name)
            assert hasattr(policy, "choose_task")

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("definitely-not-a-policy")

    def test_oracle_flag(self):
        assert needs_oracle_estimates("oracle")
        assert not needs_oracle_estimates("grass")

    def test_fresh_instances_returned(self):
        assert make_policy("grass") is not make_policy("grass")


class TestImprovementMetrics:
    def test_accuracy_improvement(self):
        assert improvement_in_accuracy(0.5, 0.75) == pytest.approx(50.0)
        assert improvement_in_accuracy(0.0, 0.75) == 0.0

    def test_duration_improvement(self):
        assert improvement_in_duration(100.0, 60.0) == pytest.approx(40.0)
        assert improvement_in_duration(0.0, 60.0) == 0.0


class TestCompare:
    def test_compare_policies_same_workload_for_all(self):
        comparison = compare_policies(
            ["late", "ras"],
            WorkloadConfig(bound_kind="error", seed=42),
            scale=TINY,
            warmup=False,
        )
        late_ids = sorted(r.job_id for r in comparison.runs["late"].results)
        ras_ids = sorted(r.job_id for r in comparison.runs["ras"].results)
        assert late_ids == ras_ids
        assert len(late_ids) == TINY.num_jobs

    def test_improvement_by_bin_keys(self):
        comparison = compare_policies(
            ["late", "ras"],
            WorkloadConfig(bound_kind="deadline", seed=43),
            scale=TINY,
            warmup=False,
        )
        by_bin = comparison.accuracy_improvement_by_bin("ras", "late")
        assert set(by_bin) <= {"small", "medium", "large"}
        assert comparison.accuracy_improvement("ras", "late") == pytest.approx(
            improvement_in_accuracy(
                comparison.runs["late"].average_accuracy(),
                comparison.runs["ras"].average_accuracy(),
            )
        )

    def test_bound_bin_groupings(self):
        comparison = compare_policies(
            ["late", "ras"],
            WorkloadConfig(bound_kind="error", seed=44),
            scale=TINY,
            warmup=False,
        )
        by_error = comparison.duration_improvement_by_error_bin("ras", "late")
        assert all(isinstance(value, float) for value in by_error.values())


class TestScales:
    def test_quick_is_smaller_than_default(self):
        assert ExperimentScale.quick().num_jobs < ExperimentScale().num_jobs

    def test_paper_is_larger_than_default(self):
        assert ExperimentScale.paper().num_jobs > ExperimentScale().num_jobs


class TestFigures:
    def test_registry_contains_every_experiment(self):
        expected = {
            "table1", "figure1", "figure2", "figure3", "figure4", "sec2.3",
            "figure5", "figure6", "figure7", "figure8", "figure9", "figure10",
            "figure11", "figure12", "figure13", "figure14", "figure15", "exact",
            "trace-replay",
        }
        assert expected == set(FIGURES)

    def test_unknown_figure_raises(self):
        with pytest.raises(ValueError):
            run_figure("figure99")

    def test_worked_examples_have_expected_shape(self):
        fig1 = figure1_deadline_example()
        assert len(fig1.rows) == 4
        assert {row["policy"] for row in fig1.rows} == {"gs", "ras"}
        fig2 = figure2_error_example()
        assert len(fig2.rows) == 4
        assert all(row["duration"] > 0 for row in fig2.rows)

    def test_worked_example_guard_names_figure_and_scenario(self):
        # A scenario with no results used to crash with an opaque IndexError
        # on metrics.results[0]; the guard must name the figure and scenario.
        from repro.experiments.figures import _sole_result
        from repro.simulator.metrics import MetricsCollector

        empty = MetricsCollector()
        with pytest.raises(ValueError, match=r"Figure 1.*gs under tight"):
            _sole_result(empty, "Figure 1", "gs under tight deadline")

    def test_figure1_ras_wins_loose_deadline(self):
        rows = figure1_deadline_example().rows
        loose = {row["policy"]: row["tasks completed"] for row in rows if "loose" in row["deadline"]}
        assert loose["ras"] >= loose["gs"]

    def test_table1_reports_both_traces(self):
        result = table1_traces(TINY)
        assert {row["trace"] for row in result.rows} == {"facebook", "bing"}
        for row in result.rows:
            assert row["slowest/median"] > 2.0

    def test_figure3_estimates_heavy_tail(self):
        result = figure3_hill_plot(num_samples=4000, seed=1)
        plateau = [row for row in result.rows if row["order statistics (k)"] == "plateau"]
        assert len(plateau) == 1
        assert 1.0 < plateau[0]["hill estimate of beta"] < 2.5

    def test_figure4_rows_cover_all_waves(self):
        result = figure4_reactive_model(waves_list=(1, 3), trials=20, seed=2)
        waves = {row["waves"] for row in result.rows}
        assert waves == {1, 3}
        assert all(row["time/optimal"] >= 0.99 for row in result.rows)

    def test_figure5_runs_at_tiny_scale(self):
        result = FIGURES["figure5"](TINY)
        assert result.rows
        assert {"baseline", "overall (%)"} <= set(result.rows[0])
        text = result.format_table()
        assert "Figure 5" in text

    def test_format_table_handles_empty_rows(self):
        from repro.experiments.figures import FigureResult

        assert "(no rows)" in FigureResult(figure="X", description="d").format_table()


class TestCli:
    def test_parser_accepts_known_figures(self):
        parser = build_parser()
        args = parser.parse_args(["figure3", "--scale", "quick"])
        assert args.figure == "figure3"
        assert args.scale == "quick"

    def test_parser_defaults_to_serial_single_run(self):
        args = build_parser().parse_args(["figure3"])
        assert args.workers == 1
        assert args.repeat == 1

    def test_parser_accepts_workers_and_repeat(self):
        args = build_parser().parse_args(
            ["figure3", "--workers", "4", "--repeat", "3"]
        )
        assert args.workers == 4
        assert args.repeat == 3

    def test_main_rejects_bad_workers_and_repeat(self):
        assert main(["figure1", "--workers", "-1"]) == 2
        assert main(["figure1", "--repeat", "0"]) == 2

    def test_main_repeat_reports_each_run(self, capsys):
        exit_code = main(["figure1", "--scale", "quick", "--repeat", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "regenerated 2x" in captured.out

    def test_parser_rejects_unknown_figure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["not-a-figure"])

    def test_main_runs_cheap_figure(self, capsys):
        exit_code = main(["figure1", "--scale", "quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 1" in captured.out

"""Tests for streaming job-spec ingestion and finished-job eviction.

The load-bearing properties:

* **Lazy == materialised** — feeding the engine an arrival-ordered spec
  *iterator* produces byte-identical metrics to handing it the full list,
  for arbitrary arrival orders; ``replay_stream(stream_specs=True)`` prints
  the batch path's digest for any shard split and worker count.
* **Eviction** — ``_finish_job`` drops the job's ``Job``, estimator and
  spec the moment its result is recorded, so resident state tracks
  *concurrency*, never trace length.
* **Error paths** — empty traces and warm-up seed collisions fail loudly
  with actionable messages instead of leaking internals or biased results.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import NoSpeculationPolicy
from repro.core.bounds import ApproximationBound
from repro.experiments.cli import metrics_digest
from repro.experiments.executor import RunRequest
from repro.experiments.runner import (
    WARMUP_SEED_OFFSET,
    ExperimentScale,
    compare_policies,
    replay,
    replay_stream,
)
from repro.experiments.warmup import WarmupCache, check_warmup_seed_collision
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.stragglers import StragglerConfig
from repro.workload.synthetic import WorkloadConfig, generate_workload
from repro.workload.trace_replay import (
    TraceReplayConfig,
    TraceSpecSource,
    iter_job_specs,
    observed_straggler_cap,
    replay_straggler_config,
    slice_trace,
    synthesize_trace,
    trace_to_workload,
)
from repro.workload.traces import save_trace

from tests.conftest import make_job_spec, make_simulation_config

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1,), warmup_jobs=0,
)


def small_trace(num_jobs: int = 15, seed: int = 9):
    return synthesize_trace(
        num_jobs=num_jobs, size_scale=0.1, max_tasks_per_job=60, seed=seed
    )


def sorted_specs(specs):
    return sorted(specs, key=lambda spec: (spec.arrival_time, spec.job_id))


class TestLazyIngestion:
    def test_generator_matches_list_byte_for_byte(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=25, seed=4, size_scale=0.15, max_tasks_per_job=80)
        )
        config = make_simulation_config(machines=30, stragglers=StragglerConfig(), seed=2)
        eager = Simulation(config, NoSpeculationPolicy(), workload.specs()).run()
        lazy = Simulation(
            config, NoSpeculationPolicy(), iter(sorted_specs(workload.specs()))
        ).run()
        assert pickle.dumps(eager) == pickle.dumps(lazy)

    def test_empty_iterator_rejected(self):
        with pytest.raises(ValueError, match="at least one job"):
            Simulation(make_simulation_config(), NoSpeculationPolicy(), iter([]))

    def test_unsorted_iterator_rejected(self):
        specs = [
            make_job_spec([1.0], ApproximationBound.exact(), job_id=0, arrival=5.0),
            make_job_spec([1.0], ApproximationBound.exact(), job_id=1, arrival=1.0),
        ]
        simulation = Simulation(make_simulation_config(), NoSpeculationPolicy(), iter(specs))
        with pytest.raises(ValueError, match="sorted by"):
            simulation.run()

    def test_duplicate_id_at_same_arrival_rejected(self):
        specs = [
            make_job_spec([1.0], ApproximationBound.exact(), job_id=0, arrival=0.0),
            make_job_spec([1.0], ApproximationBound.exact(), job_id=0, arrival=0.0),
        ]
        simulation = Simulation(make_simulation_config(), NoSpeculationPolicy(), iter(specs))
        with pytest.raises(ValueError):
            simulation.run()

    def test_duplicate_id_after_first_finished_rejected(self):
        # The first id-0 job finishes (and is evicted) long before the
        # duplicate arrives; the lazy path must still reject it, exactly as
        # the materialised path's up-front validation would.
        specs = [
            make_job_spec([1.0], ApproximationBound.exact(), job_id=0, arrival=0.0),
            make_job_spec([1.0], ApproximationBound.exact(), job_id=1, arrival=50.0),
            make_job_spec([1.0], ApproximationBound.exact(), job_id=0, arrival=100.0),
        ]
        simulation = Simulation(make_simulation_config(), NoSpeculationPolicy(), iter(specs))
        with pytest.raises(ValueError, match="unique"):
            simulation.run()


class TestFinishedJobEviction:
    def test_500_jobs_leave_no_resident_state(self):
        # 500 sequential one-task jobs: the leak this guards against held all
        # 500 Job/TaskEstimator/JobSpec triples until the end of the run.
        specs = [
            make_job_spec(
                [1.0], ApproximationBound.exact(), job_id=index, arrival=2.0 * index,
                max_slots=1,
            )
            for index in range(500)
        ]
        simulation = Simulation(
            make_simulation_config(machines=4), NoSpeculationPolicy(), specs
        )
        metrics = simulation.run()
        assert len(metrics.results) == 500
        assert simulation._jobs == {}
        assert simulation._estimators == {}
        assert simulation._spec_by_id == {}
        assert simulation._running_job_ids == {}
        # Arrivals are spaced past each job's runtime, so residency is O(1).
        assert simulation.peak_resident_jobs <= 3
        assert metrics.peak_resident_jobs == simulation.peak_resident_jobs

    def test_peak_resident_tracks_concurrency(self):
        # All jobs arrive at once: every one of them must be resident.
        specs = [
            make_job_spec([5.0], ApproximationBound.exact(), job_id=index)
            for index in range(7)
        ]
        simulation = Simulation(
            make_simulation_config(machines=8), NoSpeculationPolicy(), specs
        )
        simulation.run()
        assert simulation.peak_resident_jobs == 7


class TestTruncation:
    def _specs(self):
        return [
            make_job_spec([5.0] * 4, ApproximationBound.exact(), job_id=0, max_slots=2),
            make_job_spec([5.0] * 4, ApproximationBound.exact(), job_id=1, arrival=2.0,
                          max_slots=2),
            make_job_spec([5.0], ApproximationBound.exact(), job_id=2, arrival=500.0),
        ]

    def test_truncated_jobs_counted(self):
        config = SimulationConfig(
            cluster=make_simulation_config(machines=4).cluster,
            stragglers=StragglerConfig.none(),
            seed=0,
            max_simulated_time=6.0,
        )
        metrics = Simulation(config, NoSpeculationPolicy(), self._specs()).run()
        # Jobs 0 and 1 are in flight at t=6 (force-finished, partial
        # results); job 2 arrives at t=500 and never runs at all.
        assert metrics.truncated_jobs == 3
        assert len(metrics.results) == 2
        assert metrics.summary()["truncated_jobs"] == 3.0

    def test_truncated_count_identical_for_lazy_path(self):
        config = SimulationConfig(
            cluster=make_simulation_config(machines=4).cluster,
            stragglers=StragglerConfig.none(),
            seed=0,
            max_simulated_time=6.0,
        )
        eager = Simulation(config, NoSpeculationPolicy(), self._specs()).run()
        lazy = Simulation(
            config, NoSpeculationPolicy(), iter(sorted_specs(self._specs()))
        ).run()
        assert pickle.dumps(eager) == pickle.dumps(lazy)

    def test_untruncated_run_counts_zero(self):
        metrics = Simulation(
            make_simulation_config(machines=4), NoSpeculationPolicy(), self._specs()
        ).run()
        assert metrics.truncated_jobs == 0


class TestSpecSource:
    def test_windows_match_sliced_batch_workloads(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(sorted(trace, key=lambda j: (j.arrival_time, j.job_id)), path)
        config = TraceReplayConfig(seed=1)
        full = trace_to_workload(trace, config)
        for num_shards in (1, 2, 4):
            shards = slice_trace(trace, num_shards)
            for index, shard in enumerate(shards):
                expected = trace_to_workload(
                    shard, config, shard_index=index, num_shards=num_shards,
                    stragglers=full.stragglers,
                ).workload.job_specs
                source = TraceSpecSource(
                    trace_path=str(path), replay_config=config,
                    shard_index=index, num_shards=num_shards, total_jobs=len(trace),
                )
                assert pickle.dumps(list(source.iter_specs())) == pickle.dumps(expected)
                assert source.num_jobs == len(shard)

    def test_source_is_picklable_and_lazy(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        source = TraceSpecSource(
            trace_path=str(path), replay_config=TraceReplayConfig(),
            shard_index=0, num_shards=1, total_jobs=3,
        )
        restored = pickle.loads(pickle.dumps(source))
        # Construction never touches the file; only iteration does.
        with pytest.raises(FileNotFoundError):
            list(restored.iter_specs())

    def test_bad_coordinates_rejected(self):
        with pytest.raises(ValueError, match="shard_index"):
            TraceSpecSource("t.jsonl", TraceReplayConfig(), 2, 2, 10)
        with pytest.raises(ValueError, match="more shards"):
            TraceSpecSource("t.jsonl", TraceReplayConfig(), 0, 5, 3)

    def test_run_request_accepts_exactly_one_job_source(self, tmp_path):
        workload = generate_workload(WorkloadConfig(num_jobs=2, seed=0, size_scale=0.1))
        config = make_simulation_config()
        source = TraceSpecSource("t.jsonl", TraceReplayConfig(), 0, 1, 2)
        with pytest.raises(ValueError, match="exactly one of workload or spec_source"):
            RunRequest(workload=workload, spec_source=source, config=config,
                       policy_name="late")
        with pytest.raises(ValueError, match="exactly one of workload or spec_source"):
            RunRequest(config=config, policy_name="late")
        request = RunRequest(spec_source=source, config=config, policy_name="late")
        assert request.parallel_safe
        assert "trace-shard[1/1]" in repr(request)


class TestIterJobSpecs:
    def test_matches_trace_to_workload(self):
        trace = small_trace()
        config = TraceReplayConfig(seed=5)
        batch = trace_to_workload(trace, config)
        ordered = sorted(trace, key=lambda j: (j.arrival_time, j.job_id))
        metadata = {}
        lazy = list(iter_job_specs(iter(ordered), config, metadata=metadata))
        assert pickle.dumps(lazy) == pickle.dumps(batch.workload.job_specs)
        assert pickle.dumps(metadata) == pickle.dumps(batch.workload.metadata)


class TestStreamSpecsReplay:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_digest_matches_batch(self, tmp_path, shards, workers):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(sorted(trace, key=lambda j: (j.arrival_time, j.job_id)), path)
        config = TraceReplayConfig(seed=0)
        batch = replay(
            ["late", "grass"], trace, replay_config=config, scale=TINY, shards=shards
        )
        streamed = replay_stream(
            ["late", "grass"], path, replay_config=config, scale=TINY,
            shards=shards, workers=workers, stream_specs=True,
        )
        assert metrics_digest(streamed.comparison) == metrics_digest(batch)
        for name in batch.runs:
            for ms, mb in zip(
                streamed.comparison.runs[name].metrics, batch.runs[name].metrics
            ):
                assert pickle.dumps(ms) == pickle.dumps(mb)
        # The parent never materialises a shard; the engine gauge is bounded.
        assert streamed.stream_specs
        assert streamed.peak_resident_shards == 0
        assert 1 <= streamed.peak_resident_jobs <= len(trace)

    def test_metadata_survives_spec_streaming(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(sorted(trace, key=lambda j: (j.arrival_time, j.job_id)), path)
        batch = replay(["late"], trace, scale=TINY)
        streamed = replay_stream(["late"], path, scale=TINY, stream_specs=True)
        assert pickle.dumps(streamed.comparison.workload.metadata) == pickle.dumps(
            batch.workload.metadata
        )
        assert streamed.comparison.workload.job_specs == []


class TestStreamSpecsCli:
    def test_cli_digest_matches_batch(self, tmp_path, capsys):
        from repro.experiments.cli import main

        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(sorted(trace, key=lambda j: (j.arrival_time, j.job_id)), path)
        base = ["replay", "--trace", str(path), "--policy", "late",
                "--scale", "quick", "--seed", "3"]
        assert main(base) == 0
        batch_out = capsys.readouterr().out
        assert main(base + ["--stream-specs", "--workers", "4"]) == 0
        stream_out = capsys.readouterr().out

        def digest(text):
            for line in text.splitlines():
                if line.startswith("metrics digest:"):
                    return line
            raise AssertionError(f"no digest in {text!r}")

        assert digest(batch_out) == digest(stream_out)
        assert "(streaming specs)" in stream_out
        assert "peak resident jobs:" in stream_out

    def test_cli_unsorted_trace_exits_cleanly(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "unsorted.jsonl"
        path.write_text(
            '{"job_id": 1, "arrival_time": 5.0, "task_durations": [1.0]}\n'
            '{"job_id": 2, "arrival_time": 1.0, "task_durations": [1.0]}\n'
        )
        assert main(["replay", "--trace", str(path), "--stream-specs"]) == 2
        assert "sorted" in capsys.readouterr().err


class TestEmptyTraceErrors:
    def test_observed_straggler_cap_names_the_problem(self):
        with pytest.raises(ValueError, match="empty trace"):
            observed_straggler_cap([])

    def test_replay_straggler_config_names_the_problem(self):
        with pytest.raises(ValueError, match="empty trace"):
            replay_straggler_config([], StragglerConfig())


class TestWarmupSeedCollision:
    def test_helper_raises_on_collision(self):
        with pytest.raises(ValueError, match="warm-up seed collision"):
            check_warmup_seed_collision(7919, (1, 7919, 3))
        check_warmup_seed_collision(7919, (1, 2, 3))  # no collision: fine

    def test_compare_policies_refuses_colliding_seed(self):
        scale = ExperimentScale(
            num_jobs=4, size_scale=0.1, max_tasks_per_job=40, num_machines=20,
            seeds=(WARMUP_SEED_OFFSET,), warmup_jobs=2,
        )
        with pytest.raises(ValueError, match="warm-up seed collision"):
            compare_policies(["grass"], WorkloadConfig(seed=0), scale=scale)
        # Same seeds without warm-up are unambiguous and must keep working.
        compare_policies(
            ["grass"], WorkloadConfig(seed=0), scale=scale, warmup=False
        )

    def test_warmup_cache_refuses_colliding_seed(self):
        workload = generate_workload(
            WorkloadConfig(num_jobs=2, seed=0, size_scale=0.1)
        )
        config = make_simulation_config(seed=7919)
        with pytest.raises(ValueError, match="warm-up seed collision"):
            WarmupCache(workload, config, measured_seeds=(7919,))
        WarmupCache(workload, config, measured_seeds=(1, 2))  # fine


#: Strategy for a list of job "shapes": (arrival time, task works, bound pick).
_spec_shapes = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=40.0),
        st.lists(st.floats(min_value=0.5, max_value=12.0), min_size=1, max_size=5),
        st.sampled_from(["exact", "error", "deadline"]),
    ),
    min_size=1,
    max_size=8,
)


class TestLazyIngestionProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(shapes=_spec_shapes, seed=st.integers(min_value=0, max_value=5))
    def test_lazy_equals_materialised_for_any_arrival_order(self, shapes, seed):
        """Engine property: iterator ingestion == list ingestion.

        Arrival times are drawn unordered on purpose: the materialised path
        sorts internally, the lazy path is fed the same specs pre-sorted by
        ``(arrival_time, job_id)``, and the two runs must be byte-identical
        — results, counters, truncation and residency gauges alike.
        """
        specs = []
        for index, (arrival, works, kind) in enumerate(shapes):
            if kind == "error":
                bound = ApproximationBound.with_error(0.25)
            elif kind == "deadline":
                bound = ApproximationBound.with_deadline(sum(works) + 1.0)
            else:
                bound = ApproximationBound.exact()
            specs.append(
                make_job_spec(works, bound, job_id=index, arrival=arrival)
            )
        config = make_simulation_config(
            machines=10, stragglers=StragglerConfig(), seed=seed
        )
        eager = Simulation(config, NoSpeculationPolicy(), specs).run()
        lazy = Simulation(
            config, NoSpeculationPolicy(), iter(sorted_specs(specs))
        ).run()
        assert pickle.dumps(eager) == pickle.dumps(lazy)


class TestStreamSpecsProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.lists(
                    st.floats(min_value=0.5, max_value=30.0), min_size=1, max_size=6
                ),
            ),
            min_size=2,
            max_size=8,
        ),
        num_shards=st.integers(min_value=1, max_value=5),
    )
    def test_any_shard_split_streams_to_the_batch_digest(
        self, tmp_path_factory, jobs, num_shards
    ):
        """Replay property: spec streaming == batch replay for any split."""
        from repro.workload.traces import TraceJob

        trace = []
        arrival = 0.0
        for index, (gap, durations) in enumerate(jobs):
            arrival += gap
            trace.append(
                TraceJob(
                    job_id=index + 1,
                    arrival_time=arrival,
                    task_durations=list(durations),
                )
            )
        path = tmp_path_factory.mktemp("specs") / "trace.jsonl"
        save_trace(trace, path)
        config = TraceReplayConfig(seed=3)
        scale = ExperimentScale(
            num_jobs=len(trace), size_scale=1.0, max_tasks_per_job=None,
            num_machines=20, seeds=(1,), warmup_jobs=0,
        )
        batch = replay(
            ["late"], trace, replay_config=config, scale=scale, shards=num_shards
        )
        streamed = replay_stream(
            ["late"], path, replay_config=config, scale=scale,
            shards=num_shards, stream_specs=True,
        )
        assert metrics_digest(streamed.comparison) == metrics_digest(batch)
        assert streamed.peak_resident_shards == 0

"""Tests for the pluggable result sinks and mergeable streaming aggregates.

The load-bearing properties:

* **Sink transparency** — an ``AggregateSink`` replay produces aggregates
  and a metrics digest *equal* to the ``RetainAllSink`` path for any shard
  split, worker count and streaming mode, while retaining zero
  ``JobResult`` objects.
* **Exact mergeability** — ``StreamingAggregates.merge`` is chunk-list
  concatenation, hence exactly associative over shard orderings.
* **Loud degradation** — touching raw results on an aggregate-only
  collector raises an actionable error instead of returning a wrong 0.0.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import NoSpeculationPolicy
from repro.core.bounds import ApproximationBound
from repro.core.job import JobResult
from repro.experiments.cli import main, metrics_digest
from repro.experiments.runner import ExperimentScale, compare_policies, replay, replay_stream
from repro.simulator.engine import Simulation
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import (
    AggregateSink,
    JsonlSpillSink,
    SinkFactory,
    StreamingAggregates,
    canonical_result_record,
    encode_result,
    parse_sink_spec,
)
from repro.utils.stats import OnlineStats
from repro.workload.synthetic import WorkloadConfig, generate_workload
from repro.workload.trace_replay import TraceReplayConfig, synthesize_trace
from repro.workload.traces import TraceJob, save_trace

from tests.conftest import make_simulation_config

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1,), warmup_jobs=0,
)


def make_result(
    job_id=0,
    bound=None,
    accuracy=1.0,
    duration=10.0,
    num_input_tasks=10,
    met_bound=True,
    speculative_copies=0,
) -> JobResult:
    return JobResult(
        job_id=job_id,
        bound=bound if bound is not None else ApproximationBound.with_deadline(30.0),
        num_input_tasks=num_input_tasks,
        completed_input_tasks=int(round(accuracy * num_input_tasks)),
        accuracy=accuracy,
        start_time=0.0,
        finish_time=duration,
        duration=duration,
        wasted_work=0.0,
        speculative_copies=speculative_copies,
        met_bound=met_bound,
    )


def run_tiny_simulation(sink=None):
    workload = generate_workload(
        WorkloadConfig(num_jobs=12, seed=5, size_scale=0.12, max_tasks_per_job=60)
    )
    config = make_simulation_config(machines=30, seed=2)
    return Simulation(
        config, NoSpeculationPolicy(), workload.specs(), sink=sink
    ).run()


class TestSinkUnits:
    def test_retain_is_the_default_and_keeps_results(self):
        metrics = run_tiny_simulation()
        assert metrics.retains_results
        assert len(metrics.results) == 12

    def test_aggregate_sink_holds_zero_results(self):
        metrics = run_tiny_simulation(sink=AggregateSink())
        assert not metrics.retains_results
        assert metrics.sink.results is None
        assert metrics.aggregates.num_results == 12

    def test_results_access_on_aggregate_collector_raises(self):
        metrics = run_tiny_simulation(sink=AggregateSink())
        with pytest.raises(RuntimeError, match="not retained"):
            metrics.results

    def test_both_sinks_fold_identical_aggregates(self):
        retained = run_tiny_simulation()
        folded = run_tiny_simulation(sink=AggregateSink())
        assert retained.aggregates == folded.aggregates
        assert retained.summary() == folded.summary()

    def test_aggregate_counts_match_raw_results(self):
        metrics = run_tiny_simulation()
        aggregates = metrics.aggregates
        assert aggregates.num_results == len(metrics.results)
        assert aggregates.deadline_jobs == len(metrics.deadline_results())
        assert aggregates.error_jobs == len(metrics.error_results())
        assert aggregates.bound_met_jobs == sum(
            1 for r in metrics.results if r.met_bound
        )
        assert aggregates.speculative_copies == sum(
            r.speculative_copies for r in metrics.results
        )
        bins = {name: len(group) for name, group in metrics.by_bin().items() if group}
        assert aggregates.bin_counts() == bins

    def test_aggregate_means_match_raw_results(self):
        metrics = run_tiny_simulation()
        deadline = metrics.deadline_results()
        if deadline:
            assert metrics.average_accuracy() == pytest.approx(
                sum(r.accuracy for r in deadline) / len(deadline)
            )
        error = metrics.error_results()
        if error:
            assert metrics.average_duration() == pytest.approx(
                sum(r.duration for r in error) / len(error)
            )

    def test_collector_pickle_round_trip_preserves_aggregates(self):
        for sink in (None, AggregateSink()):
            metrics = run_tiny_simulation(sink=sink)
            clone = pickle.loads(pickle.dumps(metrics))
            assert clone.aggregates == metrics.aggregates
            assert clone.summary() == metrics.summary()

    def test_sealed_sink_refuses_further_results(self):
        metrics = run_tiny_simulation(sink=AggregateSink())
        clone = pickle.loads(pickle.dumps(metrics))
        with pytest.raises(RuntimeError, match="sealed"):
            clone.add_result(make_result())

    def test_sink_factory_validation(self):
        with pytest.raises(ValueError, match="unknown sink kind"):
            SinkFactory(kind="csv")
        with pytest.raises(ValueError, match="directory"):
            SinkFactory(kind="jsonl")
        with pytest.raises(ValueError):
            SinkFactory(kind="retain", jsonl_dir="somewhere")

    def test_parse_sink_spec(self):
        assert parse_sink_spec("retain").kind == "retain"
        assert parse_sink_spec("aggregate").kind == "aggregate"
        factory = parse_sink_spec("jsonl:out/rows")
        assert factory.kind == "jsonl" and factory.jsonl_dir == "out/rows"
        with pytest.raises(ValueError):
            parse_sink_spec("jsonl:")
        with pytest.raises(ValueError):
            parse_sink_spec("parquet")


class TestJsonlSpill:
    def test_rows_are_the_canonical_digest_records(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        retained = run_tiny_simulation()
        spilled = run_tiny_simulation(sink=JsonlSpillSink(path))
        spilled.sink.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [canonical_result_record(r) for r in retained.results]
        assert spilled.aggregates == retained.aggregates

    def test_spill_sink_survives_pickling(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        metrics = run_tiny_simulation(sink=JsonlSpillSink(path))
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.aggregates == metrics.aggregates
        assert len(path.read_text().splitlines()) == 12

    def test_replay_spills_one_file_per_request(self, tmp_path):
        trace = synthesize_trace(
            num_jobs=10, size_scale=0.1, max_tasks_per_job=40, seed=11
        )
        spill_dir = tmp_path / "spill"
        factory = SinkFactory(kind="jsonl", jsonl_dir=str(spill_dir))
        spilled = replay(
            ["late"], trace, replay_config=TraceReplayConfig(seed=11),
            scale=TINY, shards=2, sink=factory,
        )
        retained = replay(
            ["late"], trace, replay_config=TraceReplayConfig(seed=11),
            scale=TINY, shards=2,
        )
        assert metrics_digest(spilled) == metrics_digest(retained)
        names = sorted(p.name for p in spill_dir.iterdir())
        assert names == [
            "results-late-seed1-shard0.jsonl",
            "results-late-seed1-shard1.jsonl",
        ]
        rows = [
            json.loads(line)
            for name in names
            for line in (spill_dir / name).read_text().splitlines()
        ]
        assert rows == [
            canonical_result_record(r) for r in retained.runs["late"].results
        ]


class TestByBinRegression:
    def test_unknown_bin_gets_its_own_group(self):
        class OddBinResult:
            job_bin = "huge"

        collector = MetricsCollector()
        grouped = collector.by_bin([OddBinResult(), OddBinResult()])
        assert set(grouped) == {"small", "medium", "large", "huge"}
        assert len(grouped["huge"]) == 2
        assert grouped["small"] == []

    def test_known_bins_always_present(self):
        collector = MetricsCollector()
        collector.add_result(make_result(num_input_tasks=10))
        grouped = collector.by_bin()
        assert set(grouped) == {"small", "medium", "large"}
        assert len(grouped["small"]) == 1


class TestMergeAssociativity:
    def test_merge_concatenates_chunks(self):
        a = StreamingAggregates.from_results([make_result(job_id=1)])
        b = StreamingAggregates.from_results([make_result(job_id=2)])
        merged = a.merge(b)
        assert merged.chunks == a.chunks + b.chunks
        assert merged.num_results == 2

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=4), min_size=3, max_size=6),
        split=st.data(),
    )
    def test_any_grouping_of_a_shard_sequence_merges_identically(self, sizes, split):
        """Folding shard aggregates group-wise == folding them one by one.

        This is the associativity the streaming merge relies on: however the
        executor batches shard results before the final (policy, seed, shard)
        fold, the merged aggregates — digest parts included — are equal.
        """
        job_id = 0
        parts = []
        for size in sizes:
            results = []
            for _ in range(size):
                job_id += 1
                results.append(make_result(job_id=job_id, accuracy=job_id / 10.0))
            parts.append(StreamingAggregates.from_results(results))
        sequential = StreamingAggregates.merged(parts)
        boundary = split.draw(
            st.integers(min_value=1, max_value=len(parts) - 1), label="boundary"
        )
        left = StreamingAggregates.merged(parts[:boundary])
        right = StreamingAggregates.merged(parts[boundary:])
        assert left.merge(right) == sequential
        assert left.merge(right).digest_parts() == sequential.digest_parts()

    def test_online_stats_merge_matches_extend(self):
        samples = [0.5, 1.25, 2.0, 3.5, 8.0, 13.0]
        merged = OnlineStats()
        left, right = OnlineStats(), OnlineStats()
        left.extend(samples[:3])
        right.extend(samples[3:])
        merged.merge(left)
        merged.merge(right)
        whole = OnlineStats()
        whole.extend(samples)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum


#: Tiny arrival-sorted traces for the equivalence property (mirrors the
#: strategy the streaming-replay property test uses).
_jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gap
        st.lists(
            st.floats(min_value=0.5, max_value=30.0), min_size=1, max_size=5
        ),
    ),
    min_size=2,
    max_size=7,
)


class TestSinkEquivalenceProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        jobs=_jobs_strategy,
        num_shards=st.integers(min_value=1, max_value=4),
        workers=st.sampled_from([1, 4]),
        mode=st.sampled_from(["batch", "stream", "stream-specs"]),
    )
    def test_aggregate_sink_equals_retain_for_any_pipeline(
        self, tmp_path_factory, jobs, num_shards, workers, mode
    ):
        """AggregateSink == RetainAllSink for any shard split / workers / mode.

        The aggregates are *equal* (strict dataclass equality — same chunk
        partition, same counts, stats and rolling digests) and the printed
        digest is byte-identical, while the aggregate path retains zero
        JobResults.
        """
        trace = []
        arrival = 0.0
        for index, (gap, durations) in enumerate(jobs):
            arrival += gap
            trace.append(
                TraceJob(
                    job_id=index + 1,
                    arrival_time=arrival,
                    task_durations=list(durations),
                )
            )
        path = tmp_path_factory.mktemp("sinkprop") / "trace.jsonl"
        save_trace(trace, path)
        config = TraceReplayConfig(seed=3)
        scale = ExperimentScale(
            num_jobs=len(trace), size_scale=1.0, max_tasks_per_job=None,
            num_machines=20, seeds=(1,), warmup_jobs=0,
        )

        def run(sink_factory):
            if mode == "batch":
                return replay(
                    ["late"], trace, replay_config=config, scale=scale,
                    shards=num_shards, workers=workers, sink=sink_factory,
                )
            return replay_stream(
                ["late"], path, replay_config=config, scale=scale,
                shards=num_shards, workers=workers,
                stream_specs=(mode == "stream-specs"), sink=sink_factory,
            ).comparison

        retained = run(SinkFactory(kind="retain"))
        folded = run(SinkFactory(kind="aggregate"))
        assert folded.runs["late"].aggregates == retained.runs["late"].aggregates
        assert metrics_digest(folded) == metrics_digest(retained)
        assert folded.runs["late"].results == []
        assert all(
            not metrics.retains_results for metrics in folded.runs["late"].metrics
        )


class TestCompareAndCli:
    def test_compare_policies_aggregate_sink_matches_retain(self):
        retained = compare_policies(
            ["late", "ras"],
            WorkloadConfig(bound_kind="mixed", seed=42),
            scale=TINY,
            warmup=False,
        )
        folded = compare_policies(
            ["late", "ras"],
            WorkloadConfig(bound_kind="mixed", seed=42),
            scale=TINY,
            warmup=False,
            sink=SinkFactory(kind="aggregate"),
        )
        assert metrics_digest(folded) == metrics_digest(retained)
        for name in ("late", "ras"):
            assert folded.runs[name].aggregates == retained.runs[name].aggregates
            assert folded.runs[name].results == []
        assert folded.accuracy_improvement("ras", "late") == retained.accuracy_improvement(
            "ras", "late"
        )
        assert folded.accuracy_improvement_by_bin(
            "ras", "late"
        ) == retained.accuracy_improvement_by_bin("ras", "late")

    def _cli_replay(self, capsys, path, *extra):
        assert (
            main(
                [
                    "replay", "--trace", str(path), "--scale", "quick",
                    "--shards", "2", "--seed", "0", *extra,
                ]
            )
            == 0
        )
        return capsys.readouterr().out

    def test_cli_sink_table_and_digest_identical(self, tmp_path, capsys):
        trace = synthesize_trace(
            num_jobs=10, size_scale=0.1, max_tasks_per_job=40, seed=13
        )
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        outputs = {}
        for sink in ("retain", "aggregate"):
            out = self._cli_replay(capsys, path, "--sink", sink)
            digest = [
                line for line in out.splitlines() if line.startswith("metrics digest")
            ]
            table = [line for line in out.splitlines() if line.startswith(("grass", "late"))]
            outputs[sink] = (digest, table)
        assert outputs["retain"] == outputs["aggregate"]

    def test_cli_stream_specs_aggregate_matches_batch_retain(self, tmp_path, capsys):
        trace = synthesize_trace(
            num_jobs=10, size_scale=0.1, max_tasks_per_job=40, seed=13
        )
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        batch = self._cli_replay(capsys, path)
        streamed = self._cli_replay(
            capsys, path, "--stream-specs", "--sink", "aggregate"
        )
        digest = lambda out: next(  # noqa: E731
            line for line in out.splitlines() if line.startswith("metrics digest")
        )
        assert digest(batch) == digest(streamed)

    def test_cli_rejects_unknown_sink(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        save_trace(
            synthesize_trace(num_jobs=3, size_scale=0.1, max_tasks_per_job=20, seed=1),
            path,
        )
        assert main(["replay", "--trace", str(path), "--sink", "parquet"]) == 2
        assert "unknown sink" in capsys.readouterr().err


class TestEncoding:
    def test_encode_result_is_canonical_compact_json(self):
        result = make_result(job_id=7, accuracy=0.5, duration=12.5)
        encoded = encode_result(result)
        assert encoded == json.dumps(
            canonical_result_record(result), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        # Canonical: sorted keys, no whitespace — the digest's byte contract.
        assert b" " not in encoded

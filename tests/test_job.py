"""Unit tests for jobs, phases, bounds bookkeeping and results."""

import pytest

from repro.core.bounds import ApproximationBound
from repro.core.job import Job, JobPhaseSpec, JobSpec, job_bin_label
from repro.core.task import TaskCopy

from tests.conftest import make_job_spec


def _run_copy(job: Job, task_id: int, start: float, duration: float, copy_id: int = 0) -> TaskCopy:
    copy = TaskCopy(
        copy_id=copy_id, task_id=task_id, machine_id=0, start_time=start, duration=duration
    )
    job.tasks[task_id].add_copy(copy)
    return copy


class TestSpecValidation:
    def test_phase_needs_tasks(self):
        with pytest.raises(ValueError):
            JobPhaseSpec(phase_index=0, task_works=())

    def test_phase_rejects_non_positive_work(self):
        with pytest.raises(ValueError):
            JobPhaseSpec(phase_index=0, task_works=(1.0, 0.0))

    def test_job_needs_phases(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=0, arrival_time=0.0, phases=(), bound=ApproximationBound.exact())

    def test_phases_must_be_ordered(self):
        phases = (
            JobPhaseSpec(phase_index=1, task_works=(1.0,)),
            JobPhaseSpec(phase_index=0, task_works=(1.0,)),
        )
        with pytest.raises(ValueError):
            JobSpec(job_id=0, arrival_time=0.0, phases=phases, bound=ApproximationBound.exact())

    def test_max_slots_must_be_positive(self):
        with pytest.raises(ValueError):
            make_job_spec([1.0], ApproximationBound.exact(), max_slots=0)

    def test_counts_and_dag_length(self):
        spec = make_job_spec(
            [1.0, 2.0, 3.0], ApproximationBound.exact(), intermediate=[[1.0], [2.0, 2.0]]
        )
        assert spec.num_input_tasks == 3
        assert spec.num_tasks == 6
        assert spec.dag_length == 3
        assert spec.total_work == pytest.approx(11.0)

    def test_ideal_duration_uses_median_and_waves(self):
        spec = make_job_spec([2.0, 2.0, 2.0, 2.0], ApproximationBound.exact())
        # 4 tasks on 2 slots -> 2 waves of the median (2.0) each.
        assert spec.ideal_duration(2) == pytest.approx(4.0)

    def test_ideal_duration_rejects_zero_slots(self):
        spec = make_job_spec([2.0], ApproximationBound.exact())
        with pytest.raises(ValueError):
            spec.ideal_duration(0)


class TestJobBins:
    @pytest.mark.parametrize(
        "count,expected",
        [(1, "small"), (50, "small"), (51, "medium"), (500, "medium"), (501, "large")],
    )
    def test_job_bin_label(self, count, expected):
        assert job_bin_label(count) == expected


class TestJobLifecycle:
    def test_start_and_finish(self):
        job = Job(make_job_spec([1.0], ApproximationBound.exact()))
        job.start(5.0)
        assert job.is_running
        job.finish(9.0)
        assert job.is_finished
        assert job.start_time == 5.0 and job.finish_time == 9.0

    def test_cannot_start_twice(self):
        job = Job(make_job_spec([1.0], ApproximationBound.exact()))
        job.start(0.0)
        with pytest.raises(RuntimeError):
            job.start(1.0)

    def test_cannot_finish_before_start(self):
        job = Job(make_job_spec([1.0], ApproximationBound.exact()))
        with pytest.raises(RuntimeError):
            job.finish(1.0)

    def test_tasks_created_per_phase(self):
        job = Job(
            make_job_spec([1.0, 1.0], ApproximationBound.exact(), intermediate=[[2.0]])
        )
        assert len(job.all_tasks) == 3
        assert len(job.input_tasks) == 2
        assert [t.phase_index for t in job.phase_tasks(1)] == [1]


class TestAccuracyAndBounds:
    def test_accuracy_counts_input_tasks_only(self):
        job = Job(
            make_job_spec(
                [1.0, 1.0, 1.0, 1.0],
                ApproximationBound.with_error(0.5),
                intermediate=[[2.0, 2.0]],
            )
        )
        job.start(0.0)
        copy = _run_copy(job, 0, 0.0, 1.0)
        job.tasks[0].complete(1.0, copy)
        assert job.accuracy() == pytest.approx(0.25)
        assert job.completed_input_tasks() == 1

    def test_required_input_tasks_follows_error_bound(self):
        job = Job(make_job_spec([1.0] * 10, ApproximationBound.with_error(0.3)))
        assert job.required_input_tasks() == 7

    def test_bound_satisfied_error_job(self):
        job = Job(make_job_spec([1.0, 1.0], ApproximationBound.with_error(0.5)))
        job.start(0.0)
        assert not job.bound_satisfied()
        copy = _run_copy(job, 0, 0.0, 1.0)
        job.tasks[0].complete(1.0, copy)
        assert job.bound_satisfied()

    def test_all_required_work_done_includes_intermediate_phases(self):
        job = Job(
            make_job_spec([1.0], ApproximationBound.exact(), intermediate=[[1.0]])
        )
        job.start(0.0)
        copy = _run_copy(job, 0, 0.0, 1.0)
        job.tasks[0].complete(1.0, copy)
        assert not job.all_required_work_done()
        copy1 = _run_copy(job, 1, 1.0, 1.0, copy_id=1)
        job.tasks[1].complete(2.0, copy1)
        assert job.all_required_work_done()

    def test_current_phase_advances_at_required_fraction(self):
        job = Job(
            make_job_spec(
                [1.0, 1.0], ApproximationBound.with_error(0.5), intermediate=[[1.0]]
            )
        )
        job.start(0.0)
        assert job.current_phase() == 0
        copy = _run_copy(job, 0, 0.0, 1.0)
        job.tasks[0].complete(1.0, copy)
        # Half of the input tasks done satisfies the 50 % error bound.
        assert job.current_phase() == 1
        assert all(t.phase_index == 1 for t in job.schedulable_tasks(1.0))

    def test_remaining_deadline_uses_input_deadline_when_set(self):
        job = Job(make_job_spec([1.0], ApproximationBound.with_deadline(10.0)))
        job.start(0.0)
        assert job.remaining_deadline(4.0) == pytest.approx(6.0)
        job.input_deadline = 8.0
        assert job.remaining_deadline(4.0) == pytest.approx(4.0)

    def test_remaining_deadline_none_for_error_jobs(self):
        job = Job(make_job_spec([1.0], ApproximationBound.with_error(0.1)))
        job.start(0.0)
        assert job.remaining_deadline(1.0) is None


class TestJobResult:
    def test_to_result_requires_finish(self):
        job = Job(make_job_spec([1.0], ApproximationBound.exact()))
        job.start(0.0)
        with pytest.raises(RuntimeError):
            job.to_result()

    def test_to_result_fields(self):
        job = Job(make_job_spec([1.0, 1.0], ApproximationBound.with_error(0.5)))
        job.start(2.0)
        copy = _run_copy(job, 0, 2.0, 1.0)
        job.tasks[0].complete(3.0, copy)
        job.finish(3.0)
        result = job.to_result(policy_label="test", estimator_accuracy=0.9)
        assert result.duration == pytest.approx(1.0)
        assert result.accuracy == pytest.approx(0.5)
        assert result.met_bound
        assert result.policy_label == "test"
        assert result.estimator_accuracy == 0.9
        assert result.job_bin == "small"

    def test_abandon_incomplete_tasks_kills_running(self):
        job = Job(make_job_spec([1.0, 1.0], ApproximationBound.with_deadline(5.0)))
        job.start(0.0)
        _run_copy(job, 0, 0.0, 10.0)
        killed = job.abandon_incomplete_tasks(5.0)
        assert len(killed) == 1
        assert job.wasted_work() == pytest.approx(5.0)

"""Tests for the bounded-memory streaming replay pipeline.

The load-bearing property mirrors the executor's: streaming is a *memory*
knob, never a correctness knob.  For any shard split, any worker count and
any residency limit, `replay_stream` must produce byte-identical merged
metrics — the CLI's sha256 digest — to the batch `replay` path at the same
shard count, while never holding more than `max_resident_shards` shard
workloads in the process.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.cli import metrics_digest
from repro.experiments.runner import ExperimentScale, replay, replay_stream
from repro.workload.trace_replay import (
    TraceReplayConfig,
    iter_trace_shards,
    shard_sizes,
    slice_trace,
    synthesize_trace,
)
from repro.workload.traces import (
    TraceFormatError,
    TraceJob,
    iter_trace,
    save_trace,
    scan_trace,
)

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1,), warmup_jobs=0,
)


def small_trace(num_jobs: int = 18, seed: int = 7):
    return synthesize_trace(
        num_jobs=num_jobs, size_scale=0.1, max_tasks_per_job=60, seed=seed
    )


@pytest.fixture
def trace_file(tmp_path):
    trace = small_trace()
    path = tmp_path / "trace.jsonl"
    save_trace(trace, path)
    return path, trace


class TestIterTrace:
    def test_matches_load_trace(self, trace_file):
        path, trace = trace_file
        streamed = list(iter_trace(path))
        assert [j.job_id for j in streamed] == [j.job_id for j in trace]
        assert [j.task_durations for j in streamed] == [
            j.task_durations for j in trace
        ]

    def test_is_lazy(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job_id": 1, "arrival_time": 0.0, "task_durations": [1.0]}\nnot json\n')
        iterator = iter_trace(path)
        assert next(iterator).job_id == 1  # first line parses before line 2 explodes
        with pytest.raises(TraceFormatError, match="bad.jsonl:2"):
            next(iterator)

    def test_duplicate_ids_rejected_mid_stream(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        line = '{"job_id": 5, "arrival_time": 0.0, "task_durations": [1.0]}\n'
        path.write_text(line + line)
        with pytest.raises(TraceFormatError, match="duplicate job_id 5"):
            list(iter_trace(path))


class TestScanTrace:
    def test_scan_matches_batch_statistics(self, trace_file):
        path, trace = trace_file
        scan = scan_trace(path)
        assert scan.num_jobs == len(trace)
        from repro.utils.stats import mean

        assert scan.mean_slowest_to_median == mean(
            [job.slowest_to_median_ratio for job in trace]
        )
        assert scan.arrival_sorted

    def test_scan_detects_unsorted(self, tmp_path):
        path = tmp_path / "unsorted.jsonl"
        path.write_text(
            '{"job_id": 1, "arrival_time": 5.0, "task_durations": [1.0]}\n'
            '{"job_id": 2, "arrival_time": 1.0, "task_durations": [1.0]}\n'
        )
        assert not scan_trace(path).arrival_sorted

    def test_scan_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="empty"):
            scan_trace(path)


class TestLazyShards:
    def test_boundaries_match_slice_trace(self):
        trace = small_trace(num_jobs=11)
        ordered = sorted(trace, key=lambda j: (j.arrival_time, j.job_id))
        for num_shards in (1, 2, 3, 5, 11, 20):
            eager = slice_trace(trace, num_shards)
            lazy = list(iter_trace_shards(ordered, num_shards, len(ordered)))
            assert [[j.job_id for j in s] for s in lazy] == [
                [j.job_id for j in s] for s in eager
            ]

    def test_shard_sizes_never_empty(self):
        for total in (1, 2, 7, 100):
            for shards in (1, 3, total, total + 5):
                sizes = shard_sizes(total, shards)
                assert sum(sizes) == total
                assert all(size >= 1 for size in sizes)

    def test_unsorted_stream_rejected(self):
        jobs = [
            TraceJob(job_id=1, arrival_time=5.0, task_durations=[1.0]),
            TraceJob(job_id=2, arrival_time=1.0, task_durations=[1.0]),
        ]
        with pytest.raises(ValueError, match="arrival-sorted"):
            list(iter_trace_shards(jobs, 2, 2))

    def test_wrong_total_rejected(self):
        jobs = [TraceJob(job_id=1, arrival_time=0.0, task_durations=[1.0])]
        with pytest.raises(ValueError, match="ended after"):
            list(iter_trace_shards(jobs, 1, 2))
        with pytest.raises(ValueError, match="more than"):
            list(iter_trace_shards(jobs + [
                TraceJob(job_id=2, arrival_time=1.0, task_durations=[1.0])
            ], 1, 1))


class TestStreamedReplayDeterminism:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_digest_matches_batch_at_same_split(self, trace_file, shards, workers):
        path, trace = trace_file
        config = TraceReplayConfig(seed=0)
        batch = replay(
            ["late", "grass"], trace, replay_config=config, scale=TINY, shards=shards
        )
        streamed = replay_stream(
            ["late", "grass"],
            path,
            replay_config=config,
            scale=TINY,
            shards=shards,
            workers=workers,
            max_resident_shards=2,
        )
        assert metrics_digest(streamed.comparison) == metrics_digest(batch)
        for name in batch.runs:
            for ms, mb in zip(
                streamed.comparison.runs[name].metrics, batch.runs[name].metrics
            ):
                assert pickle.dumps(ms) == pickle.dumps(mb)

    def test_peak_residency_respects_limit(self, trace_file):
        path, _ = trace_file
        for limit in (1, 2, 3):
            streamed = replay_stream(
                ["late"],
                path,
                scale=TINY,
                shards=6,
                workers=4,
                max_resident_shards=limit,
            )
            assert streamed.peak_resident_shards <= limit
            assert streamed.num_shards == 6

    def test_metadata_survives_streaming(self, trace_file):
        path, trace = trace_file
        streamed = replay_stream(["late"], path, scale=TINY, shards=3)
        workload = streamed.comparison.workload
        assert sorted(workload.metadata) == sorted(j.job_id for j in trace)
        # Streaming never materialises the merged spec list — that is the point.
        assert workload.job_specs == []

    def test_unsorted_trace_rejected(self, tmp_path):
        path = tmp_path / "unsorted.jsonl"
        path.write_text(
            '{"job_id": 1, "arrival_time": 5.0, "task_durations": [1.0]}\n'
            '{"job_id": 2, "arrival_time": 1.0, "task_durations": [1.0]}\n'
        )
        with pytest.raises(ValueError, match="sorted"):
            replay_stream(["late"], path, scale=TINY)

    def test_bad_arguments_rejected(self, trace_file):
        path, _ = trace_file
        with pytest.raises(ValueError):
            replay_stream(["late"], path, scale=TINY, shards=0)
        with pytest.raises(ValueError):
            replay_stream(["late"], path, scale=TINY, max_resident_shards=0)


class TestStreamCli:
    def test_stream_digest_matches_batch_digest(self, trace_file, capsys):
        from repro.experiments.cli import main

        path, _ = trace_file
        base = ["replay", "--trace", str(path), "--policy", "late", "--scale", "quick",
                "--shards", "2", "--seed", "3"]
        assert main(base) == 0
        batch_out = capsys.readouterr().out
        assert main(base + ["--stream", "--workers", "4"]) == 0
        stream_out = capsys.readouterr().out

        def digest(text):
            for line in text.splitlines():
                if line.startswith("metrics digest:"):
                    return line
            raise AssertionError(f"no digest in {text!r}")

        assert digest(batch_out) == digest(stream_out)
        assert "(streaming)" in stream_out
        assert "peak resident shards:" in stream_out

    def test_bad_max_resident_shards_rejected(self, trace_file):
        from repro.experiments.cli import main

        path, _ = trace_file
        assert (
            main(["replay", "--trace", str(path), "--stream", "--max-resident-shards", "0"])
            == 2
        )

    def test_stream_missing_file(self, tmp_path):
        from repro.experiments.cli import main

        assert (
            main(["replay", "--trace", str(tmp_path / "nope.jsonl"), "--stream"]) == 2
        )

    def test_stream_unsorted_trace_exits_cleanly(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "unsorted.jsonl"
        path.write_text(
            '{"job_id": 1, "arrival_time": 5.0, "task_durations": [1.0]}\n'
            '{"job_id": 2, "arrival_time": 1.0, "task_durations": [1.0]}\n'
        )
        assert main(["replay", "--trace", str(path), "--stream"]) == 2
        assert "sorted" in capsys.readouterr().err


#: Hypothesis strategy for a tiny arrival-sorted trace: a few jobs with a
#: handful of positive task durations each.
_jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gap
        st.lists(
            st.floats(min_value=0.5, max_value=30.0), min_size=1, max_size=6
        ),
    ),
    min_size=2,
    max_size=8,
)


class TestStreamingReplayProperty:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(jobs=_jobs_strategy, num_shards=st.integers(min_value=1, max_value=5))
    def test_any_shard_split_streams_to_the_batch_digest(
        self, tmp_path_factory, jobs, num_shards
    ):
        """Streaming a synthesized trace == batch replay, for any shard split.

        For every generated trace and shard count: the streamed digest equals
        the batch digest at that split, and the split-of-one equals the
        unsharded batch digest — i.e. the streaming machinery (lazy parse,
        lazy shards, windowed merge) never changes the numbers; only the
        shard count itself (a simulation-decomposition knob shared with the
        batch path) does.
        """
        trace = []
        arrival = 0.0
        for index, (gap, durations) in enumerate(jobs):
            arrival += gap
            trace.append(
                TraceJob(
                    job_id=index + 1,
                    arrival_time=arrival,
                    task_durations=list(durations),
                )
            )
        path = tmp_path_factory.mktemp("prop") / "trace.jsonl"
        save_trace(trace, path)
        config = TraceReplayConfig(seed=3)
        scale = ExperimentScale(
            num_jobs=len(trace), size_scale=1.0, max_tasks_per_job=None,
            num_machines=20, seeds=(1,), warmup_jobs=0,
        )

        streamed = replay_stream(
            ["late"], path, replay_config=config, scale=scale,
            shards=num_shards, max_resident_shards=1,
        )
        batch_same_split = replay(
            ["late"], trace, replay_config=config, scale=scale, shards=num_shards
        )
        assert metrics_digest(streamed.comparison) == metrics_digest(batch_same_split)
        assert streamed.peak_resident_shards <= 1

        unsharded = replay(["late"], trace, replay_config=config, scale=scale, shards=1)
        streamed_unsharded = replay_stream(
            ["late"], path, replay_config=config, scale=scale, shards=1
        )
        assert metrics_digest(streamed_unsharded.comparison) == metrics_digest(unsharded)

"""The content-addressed replay cache: parity, eviction, integrity, CLI.

Four layers, tested bottom-up:

* :class:`ReplayCache` as a plain store — in-memory LRU bound, ``max_bytes``
  disk eviction in mtime (least-recently-used) order, engine-fingerprint
  keying, and the satellite contract that corrupt/truncated/wrong-version
  entries are warned misses that get overwritten, never crashes;
* concurrency — two real processes storing the same content-addressed key
  race to a single valid entry (atomic tmp + ``os.replace``);
* the runner — a warm cache reproduces the cold run's digest byte-for-byte
  across every (workers, mode, sink) combination with zero misses, for both
  trace files and generated cluster tiers, and ``probe_plan_cache`` answers
  fully cached plans without simulating;
* the ``grass-experiments cache`` verb — stats, verify (including a tampered
  entry drawing a non-zero exit) and clear.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

import repro
from repro.experiments.cache import (
    ENGINE_PACKAGES,
    CacheIntegrityWarning,
    CachedSlice,
    ReplayCache,
    engine_fingerprint,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.plan import ReplayPlan
from repro.experiments.runner import execute, probe_plan_cache
from repro.simulator.sinks import AggregateSink
from repro.workload.trace_replay import synthesize_trace
from repro.workload.traces import save_trace

POLICIES = ("no-spec", "grass")
SHARDS = 2


def make_plan(trace_path, cache_dir, **overrides):
    fields = dict(
        trace=str(trace_path),
        policies=POLICIES,
        scale="quick",
        shards=SHARDS,
        seed=3,
        cache=str(cache_dir),
    )
    fields.update(overrides)
    return ReplayPlan(**fields).validate()


def make_slice() -> CachedSlice:
    """A synthetic (empty-chunk) cacheable slice for store-level tests."""
    return CachedSlice(chunk=AggregateSink().aggregates.chunks[0])


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    trace = synthesize_trace(
        workload="facebook",
        framework="hadoop",
        num_jobs=12,
        size_scale=0.05,
        max_tasks_per_job=12,
        seed=3,
    )
    path = tmp_path_factory.mktemp("cache_trace") / "trace.jsonl"
    save_trace(trace, path)
    return path


@pytest.fixture(scope="module")
def cold(tmp_path_factory, trace_path):
    """One cold run into a fresh cache; the warm matrix replays against it."""
    cache_dir = tmp_path_factory.mktemp("cache_store") / "cache"
    executed = execute(make_plan(trace_path, cache_dir))
    assert executed.cache_stats is not None
    assert executed.cache_stats.hits == 0
    assert executed.cache_stats.stores == executed.cache_stats.misses > 0
    return {
        "cache_dir": cache_dir,
        "digest": executed.digest,
        "slices": executed.cache_stats.stores,
    }


class TestWarmColdParity:
    @pytest.mark.parametrize("sink", ["retain", "aggregate"])
    @pytest.mark.parametrize("mode", ["batch", "stream", "stream-specs"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_warm_digest_matches_cold_with_zero_misses(
        self, cold, trace_path, workers, mode, sink
    ):
        plan = make_plan(
            trace_path,
            cold["cache_dir"],
            workers=workers,
            stream=mode == "stream",
            stream_specs=mode == "stream-specs",
            sink=sink,
        )
        executed = execute(plan)
        assert executed.digest == cold["digest"]
        assert executed.cache_stats is not None
        assert executed.cache_stats.misses == 0
        assert executed.cache_stats.hits == cold["slices"]

    def test_cluster_tier_sources_cache_too(self, tmp_path):
        plan = ReplayPlan(
            cluster_jobs=8,
            policies=("grass",),
            scale="quick",
            shards=2,
            stream_specs=True,
            sink="aggregate",
            cache=str(tmp_path / "cache"),
        ).validate()
        cold_executed = execute(plan)
        warm_executed = execute(plan)
        assert warm_executed.digest == cold_executed.digest
        assert warm_executed.cache_stats.misses == 0
        assert warm_executed.cache_stats.hits == cold_executed.cache_stats.stores

    def test_partial_hits_fold_into_the_same_digest(self, trace_path, tmp_path):
        cache_dir = tmp_path / "cache"
        # Prime only one policy; the two-policy plan then mixes restored
        # and freshly simulated slices in one merge.
        execute(make_plan(trace_path, cache_dir, policies=("no-spec",)))
        plain = execute(make_plan(trace_path, tmp_path / "unused"))
        mixed = execute(make_plan(trace_path, cache_dir))
        assert mixed.digest == plain.digest
        assert mixed.cache_stats.hits > 0
        assert mixed.cache_stats.misses > 0

    def test_probe_answers_fully_cached_plans_without_simulating(
        self, cold, trace_path
    ):
        plan = make_plan(trace_path, cold["cache_dir"])
        seen = []
        probed = probe_plan_cache(plan, on_metrics=lambda *a: seen.append(a))
        assert probed is not None
        assert probed.digest == cold["digest"]
        assert len(seen) == cold["slices"]

    def test_probe_declines_partially_cached_plans(self, trace_path, tmp_path):
        cache_dir = tmp_path / "cache"
        execute(make_plan(trace_path, cache_dir, policies=("no-spec",)))
        assert probe_plan_cache(make_plan(trace_path, cache_dir)) is None


class TestStoreBounds:
    def test_memory_lru_is_bounded_and_falls_back_to_disk(self, tmp_path):
        cache = ReplayCache(tmp_path, memory_entries=1, engine="unit-test")
        for index in range(3):
            cache.store({"index": index}, make_slice())
        assert cache.counters.memory_evictions == 2
        # Every entry still hits — the disk copy outlives the memory LRU.
        for index in range(3):
            assert cache.lookup({"index": index}) is not None
        assert cache.counters.hits == 3

    def test_max_bytes_evicts_least_recently_used_entries(self, tmp_path):
        probe = ReplayCache(tmp_path / "probe", engine="unit-test")
        probe.store({"index": 0}, make_slice())
        entry_bytes = probe.store_stats().total_bytes
        assert entry_bytes > 0

        cache = ReplayCache(
            tmp_path / "bounded",
            max_bytes=int(entry_bytes * 2.5),
            engine="unit-test",
        )
        for index in range(4):
            cache.store({"index": index}, make_slice())
            # Deterministic recency: age each entry explicitly so the LRU
            # order is index order regardless of filesystem timestamp grain.
            path = cache.entry_path(cache.key_for({"index": index}))
            if path.exists():
                os.utime(path, ns=(index * 10**9, index * 10**9))
        assert cache.counters.evictions >= 2
        assert cache.store_stats().total_bytes <= int(entry_bytes * 2.5)
        # Oldest entries went first; the newest always survives its own store.
        assert cache.lookup({"index": 0}) is None
        fresh = ReplayCache(tmp_path / "bounded", engine="unit-test")
        assert fresh.lookup({"index": 3}) is not None

    def test_concurrent_writers_race_to_one_valid_entry(self, tmp_path):
        root = tmp_path / "shared"
        script = (
            "import sys\n"
            "from repro.experiments.cache import ReplayCache, CachedSlice\n"
            "from repro.simulator.sinks import AggregateSink\n"
            "cache = ReplayCache(sys.argv[1], engine='race-test')\n"
            "slice_ = CachedSlice(chunk=AggregateSink().aggregates.chunks[0])\n"
            "for _ in range(100):\n"
            "    cache.store({'shared': 'key'}, slice_)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen([sys.executable, "-c", script, str(root)], env=env)
            for _ in range(2)
        ]
        assert [proc.wait(timeout=60) for proc in workers] == [0, 0]
        cache = ReplayCache(root, engine="race-test")
        assert cache.lookup({"shared": "key"}) is not None
        entries = list(root.glob("??/*.json"))
        assert len(entries) == 1
        assert not list(root.glob("??/.*.tmp")), "a temp file leaked"


class TestInvalidation:
    def test_engine_fingerprint_changes_when_a_source_changes(self, tmp_path):
        def copy_engine(destination, edit=False):
            base = Path(repro.__file__).resolve().parent
            for package in ENGINE_PACKAGES:
                shutil.copytree(base / package, destination / package)
            if edit:
                target = destination / "simulator" / "engine.py"
                target.write_text(target.read_text() + "\n# one edited line\n")
            return destination

        pristine_a = copy_engine(tmp_path / "a")
        pristine_b = copy_engine(tmp_path / "b")
        edited = copy_engine(tmp_path / "c", edit=True)
        # Content-determined: two pristine copies agree regardless of path.
        assert engine_fingerprint(root=pristine_a) == engine_fingerprint(root=pristine_b)
        assert engine_fingerprint(root=edited) != engine_fingerprint(root=pristine_a)

    def test_entries_from_another_engine_are_silent_misses(self, tmp_path):
        slice_wire = {"policy": "grass", "sim_seed": 1, "shard": 0}
        old = ReplayCache(tmp_path, engine="engine-A")
        old.store(slice_wire, make_slice())
        new = ReplayCache(tmp_path, engine="engine-B")
        assert new.lookup(slice_wire) is None
        # Not corruption — just unreachable under the new fingerprint.
        assert new.counters.invalid == 0
        assert new.store_stats().stale_engine_entries == 1
        assert old.lookup(slice_wire) is not None

    @pytest.mark.parametrize("damage", ["garbage", "truncated", "wrong-version"])
    def test_damaged_entries_are_warned_misses_and_overwritten(
        self, tmp_path, damage
    ):
        cache = ReplayCache(tmp_path, memory_entries=0, engine="unit-test")
        slice_wire = {"policy": "grass"}
        cache.store(slice_wire, make_slice())
        path = cache.entry_path(cache.key_for(slice_wire))
        if damage == "garbage":
            path.write_text("not json at all")
        elif damage == "truncated":
            path.write_bytes(path.read_bytes()[:25])
        else:
            payload = json.loads(path.read_text())
            payload["version"] = 99
            path.write_text(json.dumps(payload))
        with pytest.warns(CacheIntegrityWarning):
            assert cache.lookup(slice_wire) is None
        assert cache.counters.invalid == 1
        assert not path.exists(), "a damaged entry must be deleted, not kept"
        cache.store(slice_wire, make_slice())
        assert cache.lookup(slice_wire) is not None

    def test_replay_survives_a_corrupted_entry_with_the_same_digest(
        self, trace_path, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        cold_executed = execute(make_plan(trace_path, cache_dir))
        victim = sorted(cache_dir.glob("??/*.json"))[0]
        victim.write_text("garbage")
        with pytest.warns(CacheIntegrityWarning):
            warm_executed = execute(make_plan(trace_path, cache_dir))
        assert warm_executed.digest == cold_executed.digest
        assert warm_executed.cache_stats.invalid == 1
        assert warm_executed.cache_stats.misses == 1
        assert warm_executed.cache_stats.stores == 1
        # The overwrite healed the store: the next run is all hits.
        healed = execute(make_plan(trace_path, cache_dir))
        assert healed.cache_stats.misses == 0

    def test_editing_the_trace_invalidates_every_entry(self, trace_path, tmp_path):
        cache_dir = tmp_path / "cache"
        edited = tmp_path / "edited.jsonl"
        shutil.copy(trace_path, edited)
        executed = execute(make_plan(edited, cache_dir))
        assert executed.cache_stats.stores > 0
        with open(edited, "a", encoding="utf-8") as handle:
            handle.write("\n")
        rerun = execute(make_plan(edited, cache_dir))
        assert rerun.cache_stats.hits == 0


class TestCacheVerb:
    def test_stats_verify_clear_roundtrip(self, trace_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        execute(make_plan(trace_path, cache_dir))
        assert cli_main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert cli_main(
            ["cache", "verify", "--cache", str(cache_dir), "--sample", "2"]
        ) == 0
        assert "0 mismatch(es)" in capsys.readouterr().out
        assert cli_main(["cache", "clear", "--cache", str(cache_dir)]) == 0
        assert not list(cache_dir.glob("??/*.json"))

    def test_verify_catches_a_tampered_entry(self, trace_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        execute(make_plan(trace_path, cache_dir))
        victim = sorted(cache_dir.glob("??/*.json"))[0]
        payload = json.loads(victim.read_text())
        payload["chunk"]["digest"] = "00" * 32
        victim.write_text(json.dumps(payload))
        status = cli_main(
            ["cache", "verify", "--cache", str(cache_dir), "--sample", "16"]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "mismatch" in captured.out + captured.err

    def test_replay_cli_reports_cache_counters(self, trace_path, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "replay",
            "--trace", str(trace_path),
            "--scale", "quick",
            "--shards", str(SHARDS),
            "--seed", "3",
            "--cache", str(cache_dir),
        ]
        assert cli_main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "replay cache: 0 hits" in cold_out
        assert cli_main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "0 misses" in warm_out

        def digest_line(text):
            return [l for l in text.splitlines() if l.startswith("metrics digest")]

        assert digest_line(cold_out) == digest_line(warm_out)

"""Unit tests for the trem / tnew estimators (§5.1)."""

import pytest

from repro.core.estimators import EstimateAccuracyTracker, EstimatorConfig, TaskEstimator
from repro.core.task import Task, TaskCopy, TaskSpec
from repro.utils.rng import RngStream


def make_task(work: float = 10.0, task_id: int = 0) -> Task:
    return Task(spec=TaskSpec(task_id=task_id, job_id=0, work=work))


def running_task(work: float = 10.0, duration: float = 10.0, start: float = 0.0) -> Task:
    task = make_task(work)
    task.add_copy(
        TaskCopy(copy_id=0, task_id=task.task_id, machine_id=0, start_time=start, duration=duration)
    )
    return task


def make_estimator(config: EstimatorConfig = None) -> TaskEstimator:
    return TaskEstimator(config or EstimatorConfig.perfect(), RngStream(0, "est"))


class TestConfig:
    def test_defaults_valid(self):
        config = EstimatorConfig()
        assert config.trem_noise > 0 and config.tnew_noise > 0

    def test_perfect_has_no_noise(self):
        config = EstimatorConfig.perfect()
        assert config.trem_noise == 0.0 and config.tnew_noise == 0.0

    def test_degraded_scales_noise(self):
        degraded = EstimatorConfig.degraded(3.0)
        base = EstimatorConfig()
        assert degraded.trem_noise == pytest.approx(3.0 * base.trem_noise)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            EstimatorConfig(trem_noise=-0.1)

    def test_rejects_bad_progress_fraction(self):
        with pytest.raises(ValueError):
            EstimatorConfig(progress_report_fraction=0.0)


class TestAccuracyTracker:
    def test_perfect_estimates_give_accuracy_one(self):
        tracker = EstimateAccuracyTracker()
        tracker.record(10.0, 10.0)
        assert tracker.accuracy == pytest.approx(1.0)

    def test_accuracy_decreases_with_error(self):
        tracker = EstimateAccuracyTracker()
        tracker.record(5.0, 10.0)
        assert tracker.accuracy == pytest.approx(0.5)

    def test_accuracy_clamped_at_zero(self):
        tracker = EstimateAccuracyTracker()
        tracker.record(100.0, 10.0)
        assert tracker.accuracy == 0.0

    def test_empty_tracker_reports_one(self):
        assert EstimateAccuracyTracker().accuracy == 1.0

    def test_ignores_non_positive_actual(self):
        tracker = EstimateAccuracyTracker()
        tracker.record(5.0, 0.0)
        assert tracker.sample_count == 0


class TestTnew:
    def test_prior_rate_before_samples(self):
        estimator = make_estimator()
        assert estimator.tnew(make_task(work=7.0)) == pytest.approx(7.0)

    def test_uses_median_of_completed_rates(self):
        estimator = make_estimator()
        # Three completions at rates 1.0, 2.0, 3.0 seconds per unit work.
        for rate in (1.0, 2.0, 3.0):
            estimator.observe_completion(make_task(work=10.0), 10.0 * rate)
        assert estimator.expected_work_rate() == pytest.approx(2.0)
        assert estimator.tnew(make_task(work=5.0)) == pytest.approx(10.0)

    def test_same_rate_for_all_tasks(self):
        # The tnew error must never rank equal-sized tasks differently.
        estimator = TaskEstimator(EstimatorConfig(), RngStream(1, "e"))
        a = estimator.tnew(make_task(work=10.0, task_id=1))
        b = estimator.tnew(make_task(work=10.0, task_id=2))
        assert a == pytest.approx(b)

    def test_tnew_scales_with_work(self):
        estimator = make_estimator()
        assert estimator.tnew(make_task(work=20.0)) == pytest.approx(
            2.0 * estimator.tnew(make_task(work=10.0))
        )

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            TaskEstimator(EstimatorConfig.perfect(), RngStream(0), prior_work_rate=0.0)


class TestTrem:
    def test_pending_task_falls_back_to_tnew(self):
        estimator = make_estimator()
        task = make_task(work=6.0)
        assert estimator.trem(task, now=0.0) == pytest.approx(6.0)

    def test_before_first_report_subtracts_elapsed(self):
        estimator = make_estimator()
        task = running_task(work=10.0, duration=100.0)
        # At 2% progress there is no report yet; assume a typical copy.
        assert estimator.trem(task, now=2.0) == pytest.approx(8.0)

    def test_extrapolates_from_progress(self):
        estimator = make_estimator()
        task = running_task(work=10.0, duration=40.0)
        # At t=10 the copy is 25% done; extrapolated total 40, remaining 30.
        assert estimator.trem(task, now=10.0) == pytest.approx(30.0)

    def test_straggler_has_trem_far_above_tnew(self):
        estimator = make_estimator()
        estimator.observe_completion(make_task(work=10.0, task_id=9), 10.0)
        straggler = running_task(work=10.0, duration=80.0)
        trem = estimator.trem(straggler, now=8.0)
        assert trem > 5.0 * estimator.tnew(straggler)

    def test_uses_best_copy(self):
        estimator = make_estimator()
        task = running_task(work=10.0, duration=80.0)
        task.add_copy(
            TaskCopy(copy_id=1, task_id=0, machine_id=1, start_time=4.0, duration=10.0)
        )
        # The second (fast) copy is halfway done at t=9: remaining 5.
        assert estimator.trem(task, now=9.0) == pytest.approx(5.0)

    def test_accuracy_tracking_updates(self):
        estimator = make_estimator()
        estimator.record_trem_outcome(8.0, 10.0)
        assert estimator.trem_accuracy == pytest.approx(0.8)
        estimator.observe_completion(make_task(work=10.0), 10.0)
        assert estimator.tnew_accuracy == pytest.approx(1.0)
        assert estimator.combined_accuracy == pytest.approx(0.9)

    def test_noise_is_bounded_below(self):
        estimator = TaskEstimator(
            EstimatorConfig(trem_noise=5.0, tnew_noise=5.0), RngStream(5, "n")
        )
        task = running_task(work=10.0, duration=10.0)
        for now in (1.0, 3.0, 5.0, 7.0):
            assert estimator.trem(task, now) > 0.0
            assert estimator.tnew(task) > 0.0

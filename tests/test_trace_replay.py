"""Tests for the trace-driven replay pipeline (adapter, runner, CLI).

The load-bearing properties are (a) round-tripping: a synthesized trace
survives save/load exactly and replays identically to its in-memory twin,
(b) determinism: per-policy replay metrics are byte-identical across worker
counts, and (c) malformed JSONL traces fail loudly with the file and line.
"""

import pickle

import pytest

from repro.experiments.cli import main, metrics_digest
from repro.experiments.figures import FIGURES
from repro.experiments.runner import ExperimentScale, replay
from repro.workload.trace_replay import (
    TraceReplayConfig,
    export_trace,
    observed_straggler_cap,
    slice_trace,
    synthesize_trace,
    trace_to_workload,
)
from repro.workload.traces import (
    TraceFormatError,
    TraceJob,
    load_trace,
    save_trace,
)

#: Small cluster scale so replay tests stay fast; the trace supplies the jobs.
TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1,), warmup_jobs=0,
)


def tiny_trace(num_jobs: int = 10, seed: int = 7):
    return synthesize_trace(
        num_jobs=num_jobs, size_scale=0.1, max_tasks_per_job=60, seed=seed
    )


# ---------------------------------------------------------------- load_trace


class TestLoadTraceErrors:
    def write(self, tmp_path, text: str):
        path = tmp_path / "trace.jsonl"
        path.write_text(text)
        return path

    def test_blank_lines_are_skipped(self, tmp_path):
        path = self.write(
            tmp_path,
            '\n{"job_id": 1, "arrival_time": 0.0, "task_durations": [1.0]}\n\n',
        )
        trace = load_trace(path)
        assert [job.job_id for job in trace] == [1]

    def test_invalid_json_names_file_and_line(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"job_id": 1, "arrival_time": 0.0, "task_durations": [1.0]}\n{broken\n',
        )
        with pytest.raises(TraceFormatError, match=r"trace\.jsonl:2.*invalid JSON"):
            load_trace(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = self.write(tmp_path, "[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="expected a JSON object"):
            load_trace(path)

    def test_missing_field_rejected(self, tmp_path):
        path = self.write(tmp_path, '{"job_id": 1, "arrival_time": 0.0}\n')
        with pytest.raises(TraceFormatError, match="missing field 'task_durations'"):
            load_trace(path)

    def test_non_numeric_durations_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"job_id": 1, "arrival_time": 0.0, "task_durations": ["x"]}\n',
        )
        with pytest.raises(TraceFormatError, match=r"trace\.jsonl:1"):
            load_trace(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"job_id": 1, "arrival_time": 0.0, "task_durations": [-1.0]}\n',
        )
        with pytest.raises(TraceFormatError, match="positive"):
            load_trace(path)

    def test_non_finite_values_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"job_id": 1, "arrival_time": 0.0, "task_durations": [Infinity, NaN]}\n',
        )
        with pytest.raises(TraceFormatError, match="finite"):
            load_trace(path)
        path = self.write(
            tmp_path,
            '{"job_id": 1, "arrival_time": NaN, "task_durations": [1.0]}\n',
        )
        with pytest.raises(TraceFormatError, match="finite"):
            load_trace(path)

    def test_duplicate_job_id_rejected(self, tmp_path):
        record = '{"job_id": 1, "arrival_time": 0.0, "task_durations": [1.0]}\n'
        path = self.write(tmp_path, record + record)
        with pytest.raises(TraceFormatError, match="duplicate job_id 1"):
            load_trace(path)


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        trace = tiny_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert [job.job_id for job in loaded] == [job.job_id for job in trace]
        assert [job.arrival_time for job in loaded] == [
            job.arrival_time for job in trace
        ]
        assert [job.task_durations for job in loaded] == [
            job.task_durations for job in trace
        ]

    def test_export_trace_writes_loadable_fixture(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        summary = export_trace(path, num_jobs=6, size_scale=0.1, seed=3)
        assert summary.num_jobs == 6
        assert len(load_trace(path)) == 6


# ------------------------------------------------------------------- adapter


class TestTraceToWorkload:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            trace_to_workload([])

    def test_duplicate_job_ids_rejected(self):
        jobs = [
            TraceJob(job_id=1, arrival_time=0.0, task_durations=[1.0]),
            TraceJob(job_id=1, arrival_time=1.0, task_durations=[1.0]),
        ]
        with pytest.raises(ValueError, match="duplicate job_id"):
            trace_to_workload(jobs)

    def test_arrivals_rebased_and_ordered(self):
        jobs = [
            TraceJob(job_id=0, arrival_time=50.0, task_durations=[1.0]),
            TraceJob(job_id=1, arrival_time=10.0, task_durations=[1.0]),
        ]
        adapted = trace_to_workload(jobs)
        specs = adapted.workload.specs()
        assert [spec.job_id for spec in specs] == [1, 0]
        assert specs[0].arrival_time == 0.0
        assert specs[1].arrival_time == 40.0

    def test_bounds_independent_of_sharding(self):
        trace = tiny_trace()
        config = TraceReplayConfig(seed=5)
        full = trace_to_workload(trace, config)
        shard = trace_to_workload(slice_trace(trace, 3)[1], config)
        for spec in shard.workload.specs():
            full_spec = next(
                s for s in full.workload.specs() if s.job_id == spec.job_id
            )
            assert spec.bound == full_spec.bound
            assert spec.max_slots == full_spec.max_slots
            assert spec.phases == full_spec.phases

    def test_straggler_cap_tracks_observed_ratio(self):
        flat = [TraceJob(job_id=0, arrival_time=0.0, task_durations=[1.0, 1.0])]
        skewed = [
            TraceJob(job_id=0, arrival_time=0.0, task_durations=[1.0, 1.0, 9.0])
        ]
        assert observed_straggler_cap(flat) == pytest.approx(1.05)
        assert observed_straggler_cap(skewed) == pytest.approx(9.0)
        assert trace_to_workload(skewed).stragglers.cap == pytest.approx(9.0)


class TestSliceTrace:
    def test_partition_preserves_jobs(self):
        trace = tiny_trace()
        shards = slice_trace(trace, 4)
        assert sum(len(shard) for shard in shards) == len(trace)
        all_ids = sorted(job.job_id for shard in shards for job in shard)
        assert all_ids == sorted(job.job_id for job in trace)

    def test_shards_are_arrival_contiguous(self):
        trace = tiny_trace()
        shards = slice_trace(trace, 3)
        previous_max = float("-inf")
        for shard in shards:
            arrivals = [job.arrival_time for job in shard]
            assert arrivals == sorted(arrivals)
            assert arrivals[0] >= previous_max
            previous_max = arrivals[-1]

    def test_more_shards_than_jobs(self):
        trace = tiny_trace(num_jobs=3)
        shards = slice_trace(trace, 10)
        assert len(shards) == 3
        assert all(len(shard) == 1 for shard in shards)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            slice_trace(tiny_trace(num_jobs=2), 0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            slice_trace([], 4)


# -------------------------------------------------------------------- replay


class TestReplayDeterminism:
    def test_workers_1_and_4_byte_identical(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(tiny_trace(), path)
        trace = load_trace(path)
        serial = replay(["late", "gs"], trace, scale=TINY, workers=1)
        fanned = replay(["late", "gs"], trace, scale=TINY, workers=4)
        for name in ("late", "gs"):
            serial_metrics = serial.runs[name].metrics
            fanned_metrics = fanned.runs[name].metrics
            assert len(serial_metrics) == len(fanned_metrics)
            for left, right in zip(serial_metrics, fanned_metrics):
                assert pickle.dumps(left) == pickle.dumps(right)
        assert metrics_digest(serial) == metrics_digest(fanned)

    def test_sharded_replay_covers_every_job(self):
        trace = tiny_trace()
        sharded = replay(["late"], trace, scale=TINY, shards=3, workers=2)
        assert sorted(r.job_id for r in sharded.runs["late"].results) == sorted(
            job.job_id for job in trace
        )

    def test_sharded_replay_deterministic_across_workers(self):
        trace = tiny_trace()
        serial = replay(["late"], trace, scale=TINY, shards=3, workers=1)
        fanned = replay(["late"], trace, scale=TINY, shards=3, workers=4)
        assert metrics_digest(serial) == metrics_digest(fanned)

    def test_replay_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            replay(["late"], tiny_trace(num_jobs=2), scale=TINY, shards=0)

    def test_comparison_supports_bin_breakdowns(self):
        trace = tiny_trace()
        comparison = replay(["late", "gs"], trace, scale=TINY)
        # Metadata for every replayed job is available for figure groupings.
        for result in comparison.runs["late"].results:
            metadata = comparison.workload.metadata_for(result.job_id)
            assert metadata.num_input_tasks > 0


# ----------------------------------------------------------------------- CLI


class TestReplayCli:
    def fixture_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(tiny_trace(), path)
        return path

    def run_cli(self, capsys, *argv):
        exit_code = main(list(argv))
        return exit_code, capsys.readouterr()

    def test_replay_verb_runs_and_prints_digest(self, tmp_path, capsys):
        path = self.fixture_path(tmp_path)
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", str(path), "--policy", "late",
            "--scale", "quick",
        )
        assert exit_code == 0
        assert "metrics digest: sha256=" in captured.out

    def test_digest_identical_across_worker_counts(self, tmp_path, capsys):
        path = self.fixture_path(tmp_path)
        digests = []
        for workers in ("1", "2"):
            exit_code, captured = self.run_cli(
                capsys, "replay", "--trace", str(path), "--policy", "late",
                "--scale", "quick", "--workers", workers,
            )
            assert exit_code == 0
            digests.append(
                next(
                    line for line in captured.out.splitlines()
                    if line.startswith("metrics digest:")
                )
            )
        assert digests[0] == digests[1]

    def test_missing_trace_file_is_a_usage_error(self, capsys):
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", "/nonexistent/trace.jsonl"
        )
        assert exit_code == 2
        assert "not found" in captured.err

    def test_malformed_trace_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope\n")
        exit_code, captured = self.run_cli(capsys, "replay", "--trace", str(path))
        assert exit_code == 2
        assert "malformed trace" in captured.err

    def test_bad_worker_and_shard_counts_rejected(self, tmp_path, capsys):
        path = self.fixture_path(tmp_path)
        assert main(["replay", "--trace", str(path), "--workers", "-1"]) == 2
        assert main(["replay", "--trace", str(path), "--shards", "0"]) == 2

    def test_unknown_policy_and_framework_are_usage_errors(self, tmp_path, capsys):
        path = self.fixture_path(tmp_path)
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", str(path), "--policy", "nope"
        )
        assert exit_code == 2
        assert "unknown policy nope" in captured.err
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", str(path), "--framework", "dryad"
        )
        assert exit_code == 2
        assert "unknown framework" in captured.err

    def test_metric_columns_blank_out_absent_bound_classes(self, tmp_path, capsys):
        path = self.fixture_path(tmp_path)
        exit_code, captured = self.run_cli(
            capsys, "replay", "--trace", str(path), "--policy", "late",
            "--scale", "quick", "--bound-kind", "deadline",
        )
        assert exit_code == 0
        row = next(
            line for line in captured.out.splitlines() if line.startswith("late")
        )
        # No error-bound jobs were replayed, so the duration column must show
        # "-" instead of a misleading 0.00.
        assert "| 0.00 |" not in row
        assert "-" in row.split("|")[3]


def test_trace_replay_figure_registered():
    assert "trace-replay" in FIGURES

"""Tests for policy state snapshots and the shared warm-up cache.

The cache's contract is transparency: restoring a warmed snapshot into a
fresh policy must be byte-equivalent to re-simulating the warm-up, so
``compare_policies(warm_cache=True)`` and ``warm_cache=False`` — and any
worker count — all produce identical metrics.  The cache only changes how
often the warm-up simulation runs.
"""

import pickle

import pytest

from repro.baselines import LatePolicy
from repro.core.policies import Grass
from repro.experiments.policies import make_policy
from repro.experiments.runner import (
    ExperimentScale,
    build_simulation_config,
    compare_policies,
)
from repro.experiments.warmup import WarmupCache, policy_learns, warm_policy_snapshot
from repro.simulator.engine import Simulation
from repro.workload.synthetic import WorkloadConfig, generate_workload

TINY = ExperimentScale(
    num_jobs=8, size_scale=0.1, max_tasks_per_job=60, num_machines=40,
    seeds=(1, 2), warmup_jobs=6,
)


def _tiny_workload(seed: int):
    return generate_workload(
        WorkloadConfig(
            num_jobs=TINY.num_jobs,
            size_scale=TINY.size_scale,
            max_tasks_per_job=TINY.max_tasks_per_job,
            seed=seed,
        )
    )


class TestPolicySnapshots:
    def test_stateless_policies_snapshot_to_none(self):
        for name in ("late", "gs", "ras", "no-spec", "mantri", "oracle"):
            policy = make_policy(name)
            assert not policy.learns_across_jobs
            assert policy.state_snapshot() is None
            policy.restore_state(None)  # no-op, never raises

    def test_stateless_restore_rejects_foreign_snapshot(self):
        with pytest.raises(ValueError, match="stateless"):
            LatePolicy().restore_state({"store": None})

    def test_grass_learns_across_jobs(self):
        assert policy_learns("grass")
        assert not policy_learns("late")

    def test_grass_snapshot_round_trip_reproduces_decisions(self):
        """Warm-then-snapshot-then-restore == warm-then-continue, byte for byte.

        The warmed instance and a fresh instance restored from its (pickled,
        as if shipped to a worker) snapshot must produce identical metrics on
        the same follow-up workload.
        """
        warmup = _tiny_workload(seed=5)
        measured = _tiny_workload(seed=6)
        config = build_simulation_config(measured, TINY, seed=1, oracle_estimates=False)

        warmed = make_policy("grass")
        Simulation(config, warmed, warmup.specs()).run()
        snapshot = pickle.loads(pickle.dumps(warmed.state_snapshot()))

        restored = make_policy("grass")
        restored.restore_state(snapshot)

        continued = Simulation(config, warmed, measured.specs()).run()
        resumed = Simulation(config, restored, measured.specs()).run()
        assert pickle.dumps(continued) == pickle.dumps(resumed)

    def test_snapshot_isolated_from_live_policy(self):
        """Mutating the policy after the snapshot must not change the snapshot."""
        warmup = _tiny_workload(seed=5)
        config = build_simulation_config(warmup, TINY, seed=1, oracle_estimates=False)
        policy: Grass = make_policy("grass")
        Simulation(config, policy, warmup.specs()).run()
        snapshot = policy.state_snapshot()
        before = pickle.dumps(snapshot)
        Simulation(config, policy, _tiny_workload(seed=6).specs()).run()
        assert pickle.dumps(snapshot) == before

    def test_restore_isolates_runs_sharing_one_snapshot(self):
        """Two in-process restores from one snapshot must not share state."""
        warmup = _tiny_workload(seed=5)
        measured = _tiny_workload(seed=6)
        config = build_simulation_config(measured, TINY, seed=1, oracle_estimates=False)
        snapshot = warm_policy_snapshot("grass", warmup, config)

        first = make_policy("grass")
        first.restore_state(snapshot)
        first_metrics = Simulation(config, first, measured.specs()).run()

        second = make_policy("grass")
        second.restore_state(snapshot)
        second_metrics = Simulation(config, second, measured.specs()).run()
        assert pickle.dumps(first_metrics) == pickle.dumps(second_metrics)


class TestWarmupCache:
    def test_memoises_per_policy(self):
        warmup = _tiny_workload(seed=5)
        config = build_simulation_config(warmup, TINY, seed=9, oracle_estimates=False)
        cache = WarmupCache(warmup, config)
        first = cache.snapshot_for("grass")
        second = cache.snapshot_for("grass")
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_snapshot_if_learning_skips_stateless(self):
        warmup = _tiny_workload(seed=5)
        config = build_simulation_config(warmup, TINY, seed=9, oracle_estimates=False)
        cache = WarmupCache(warmup, config)
        assert cache.snapshot_if_learning("late") is None
        assert cache.misses == 0
        assert cache.snapshot_if_learning("grass") is not None

    def test_prewarm_parallel_matches_serial(self):
        warmup = _tiny_workload(seed=5)
        config = build_simulation_config(warmup, TINY, seed=9, oracle_estimates=False)
        serial = WarmupCache(warmup, config)
        serial.prewarm(["grass", "grass-strawman", "late"], workers=1)
        parallel = WarmupCache(warmup, config)
        parallel.prewarm(["grass", "grass-strawman", "late"], workers=4)
        # Stateless policies are never warmed; prewarm itself never re-warms.
        assert serial.misses == 2
        assert parallel.misses == 2
        for name in ("grass", "grass-strawman"):
            assert pickle.dumps(serial.snapshot_for(name)) == pickle.dumps(
                parallel.snapshot_for(name)
            )


class TestComparePoliciesTransparency:
    def test_cache_and_workers_never_change_results(self):
        """warm_cache x workers: four runs, one set of bytes."""
        config = WorkloadConfig(bound_kind="mixed", seed=42)
        reference = compare_policies(
            ["grass", "late"], config, scale=TINY, warm_cache=False, workers=1
        )
        for warm_cache in (False, True):
            for workers in (1, 4):
                candidate = compare_policies(
                    ["grass", "late"],
                    config,
                    scale=TINY,
                    warm_cache=warm_cache,
                    workers=workers,
                )
                for name in reference.runs:
                    assert (
                        candidate.runs[name].results == reference.runs[name].results
                    ), (warm_cache, workers, name)

    def test_warm_state_shared_across_seeds(self):
        """The whole point of the cache: one warm-up serves every seed."""
        warmup = _tiny_workload(seed=5)
        config = build_simulation_config(warmup, TINY, seed=9, oracle_estimates=False)
        cache = WarmupCache(warmup, config)
        cache.prewarm(["grass"])
        cache.snapshot_for("grass")
        cache.snapshot_for("grass")
        assert cache.misses == 1
        assert cache.hits == 2

"""Setuptools shim.

The project is configured via ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip cannot
build editable wheels (e.g. offline boxes without the ``wheel`` package),
falling back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()

#!/usr/bin/env bash
# Repo check harness: ./scripts/check.sh [test|bench-smoke|lint|all]
#
# * test        — the tier-1 suite (PYTHONPATH=src python -m pytest -x -q)
# * bench-smoke — the engine hot-path micro-benchmark plus one cheap figure
#                 bench at quick scale; refreshes benchmarks/BENCH_engine.json
# * lint        — ruff or flake8 when installed, otherwise a byte-compile
#                 pass over src/tests/benchmarks (the container ships no
#                 linter; do NOT pip install one here)
# * all         — everything above, in order
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_test() {
    python -m pytest -x -q
}

run_bench_smoke() {
    GRASS_BENCH_SCALE=quick python -m pytest -q \
        benchmarks/bench_engine_hotpath.py \
        benchmarks/bench_fig1_deadline_example.py
    echo "bench records written to benchmarks/BENCH_engine.json"
}

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks
    elif command -v flake8 >/dev/null 2>&1; then
        flake8 --max-line-length=100 src tests benchmarks
    else
        echo "no linter installed; falling back to byte-compilation"
        python -m compileall -q src tests benchmarks
    fi
}

case "${1:-all}" in
    test) run_test ;;
    bench-smoke) run_bench_smoke ;;
    lint) run_lint ;;
    all) run_lint; run_test; run_bench_smoke ;;
    *)
        echo "usage: $0 [test|bench-smoke|lint|all]" >&2
        exit 2
        ;;
esac

#!/usr/bin/env bash
# Repo check harness: ./scripts/check.sh [test|bench-smoke|bench-gate|lint|all]
#
# * test        — the tier-1 suite (PYTHONPATH=src python -m pytest -x -q)
# * bench-smoke — the engine hot-path and trace-replay micro-benchmarks plus
#                 one cheap figure bench at quick scale; refreshes
#                 benchmarks/BENCH_engine.json and fails if the refresh
#                 produced an unreadable file
# * bench-gate  — takes the committed BENCH_engine.json (git show HEAD:...)
#                 as baseline, reruns bench-smoke, and fails on a >30%
#                 calibration-normalised events/second regression at quick
#                 scale (scripts/bench_compare.py)
# * lint        — ruff or flake8 when installed, otherwise a byte-compile
#                 pass over src/tests/benchmarks/scripts/examples (the
#                 container ships no linter; do NOT pip install one here)
# * all         — lint, test, bench-smoke, in order
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

BENCH_JSON="benchmarks/BENCH_engine.json"

run_test() {
    python -m pytest -x -q
}

run_bench_smoke() {
    GRASS_BENCH_SCALE=quick python -m pytest -q \
        benchmarks/bench_engine_hotpath.py \
        benchmarks/bench_trace_replay.py \
        benchmarks/bench_fig1_deadline_example.py \
        || return $?
    # The JSON merge happens in a pytest sessionfinish hook whose failure
    # does not change the pytest exit code; verify the artifact explicitly
    # instead of masking a broken merge behind a success message.
    python -c "
import json, sys
payload = json.load(open('$BENCH_JSON'))
records = payload.get('records')
sys.exit(0 if isinstance(records, list) and records else 'empty $BENCH_JSON')
" || return $?
    echo "bench records written to $BENCH_JSON"
}

run_bench_gate() {
    local baseline
    baseline="$(mktemp)"
    # Gate against the *committed* trajectory so repeated local runs cannot
    # ratchet the baseline past the threshold; fall back to the working-tree
    # file when the history is unavailable (fresh checkout, no git).
    if ! git show "HEAD:$BENCH_JSON" > "$baseline" 2>/dev/null; then
        if [ ! -f "$BENCH_JSON" ]; then
            echo "bench-gate: no $BENCH_JSON baseline; run bench-smoke first" >&2
            rm -f "$baseline"
            return 1
        fi
        cp "$BENCH_JSON" "$baseline"
    fi
    local status=0
    if run_bench_smoke; then
        python scripts/bench_compare.py \
            --baseline "$baseline" --candidate "$BENCH_JSON" \
            --max-regression 0.30 --scale quick || status=$?
    else
        status=$?
    fi
    rm -f "$baseline"
    return "$status"
}

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks scripts examples
    elif command -v flake8 >/dev/null 2>&1; then
        flake8 --max-line-length=100 src tests benchmarks scripts examples
    else
        echo "no linter installed; falling back to byte-compilation"
        python -m compileall -q src tests benchmarks scripts examples
    fi
}

case "${1:-all}" in
    test) run_test ;;
    bench-smoke) run_bench_smoke ;;
    bench-gate) run_bench_gate ;;
    lint) run_lint ;;
    all) run_lint; run_test; run_bench_smoke ;;
    *)
        echo "usage: $0 [test|bench-smoke|bench-gate|lint|all]" >&2
        exit 2
        ;;
esac

#!/usr/bin/env bash
# Repo check harness:
#   ./scripts/check.sh [test|coverage|bench-smoke|bench-gate|replay-determinism|ingest-smoke|service-smoke|cache-smoke|cluster-replay|analyze|lint|all]
#
# * test        — the tier-1 suite (PYTHONPATH=src python -m pytest -x -q)
# * coverage    — the tier-1 suite under pytest-cov with the line-coverage
#                 floor (COVERAGE_FLOOR, default 84 — measured 86.8% at the
#                 time the floor was set); requires pytest-cov (CI installs
#                 it; locally the subcommand fails fast if it is missing)
# * bench-smoke — the engine hot-path and trace-replay micro-benchmarks plus
#                 one cheap figure bench, the warm-up-cache and replay-cache
#                 benches and the streaming-replay, spec-streaming and
#                 result-sink benches at quick scale; refreshes
#                 benchmarks/BENCH_engine.json and fails if the refresh
#                 produced an unreadable file
# * bench-gate  — takes the committed BENCH_engine.json (git show HEAD:...)
#                 as baseline, reruns bench-smoke plus the engine hot-path
#                 bench at default scale, fails on a >30%
#                 calibration-normalised events/second regression at quick
#                 OR default scale (scripts/bench_compare.py), and appends
#                 the fresh run to benchmarks/BENCH_trajectory.jsonl
#                 (timestamp, git sha, normalised events/s) so the perf
#                 history accumulates instead of keeping only the latest
#                 snapshot
# * replay-determinism — replays traces/facebook_like.jsonl at quick scale
#                 eight ways (batch / --stream / --stream-specs x --workers
#                 1/4, plus --sink aggregate legs holding zero JobResults)
#                 and fails unless all eight printed sha256 metrics digests
#                 agree
# * ingest-smoke — converts the bundled 20-row Google and Alibaba trace
#                 samples with `grass-experiments ingest`, replays each
#                 converted trace at --workers 1 and 4, and fails unless the
#                 digests agree per trace (the per-PR guard on the converter)
# * service-smoke — starts the always-on replay service (grass-experiments
#                 serve) on an ephemeral port, drives SERVICE_TENANTS
#                 (default 6) concurrent tenants through streamed replay
#                 plans plus a SERVICE_BURST (default 24) overload burst,
#                 and fails unless every streamed digest matches the offline
#                 execute(plan) and the burst drew explicit 429 rejections
# * cache-smoke — replays traces/facebook_like.jsonl twice against a fresh
#                 content-addressed replay cache (cold then warm), fails
#                 unless the digests agree and the warm run reports zero
#                 misses, then corrupts a stored entry and requires the
#                 rerun to survive it (reported miss, digest unchanged) and
#                 `grass-experiments cache stats|verify` to succeed
# * cluster-replay — replays the generated cluster tier (CLUSTER_JOBS jobs,
#                 default 20000) fully streaming at --workers 1 and 4, fails
#                 unless the digests agree and peak resident jobs stay under
#                 RESIDENCY_MAX_PCT% (default 1) of the tier, and writes a
#                 summary to CLUSTER_SUMMARY if set (the scheduled CI leg's
#                 artifact)
# * analyze     — the repo's own determinism & safety linter
#                 (repro.analysis): AST rules for unseeded RNGs, wall-clock
#                 reads, unordered iteration, float equality, pickle-unsafe
#                 executor arguments and async-hygiene violations, with
#                 reasoned `# repro: allow[RULE-ID] reason` suppressions;
#                 fails on any unsuppressed finding (stdlib-only, no
#                 install needed)
# * lint        — ruff or flake8 when installed, otherwise a byte-compile
#                 pass over src/tests/benchmarks/scripts/examples (the
#                 container ships no linter; do NOT pip install one here);
#                 prints which backend actually ran so CI-vs-local
#                 discrepancies are visible
# * all         — lint, analyze, test, bench-smoke, in order (and reports
#                 which lint backend ran)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

BENCH_JSON="benchmarks/BENCH_engine.json"
BENCH_TRAJECTORY="benchmarks/BENCH_trajectory.jsonl"
COVERAGE_FLOOR="${COVERAGE_FLOOR:-84}"

run_test() {
    python -m pytest -x -q
}

run_coverage() {
    if ! python -c "import pytest_cov" >/dev/null 2>&1; then
        echo "coverage: pytest-cov is not installed (CI installs it; do NOT pip install here)" >&2
        return 1
    fi
    python -m pytest -q \
        --cov=repro --cov-report=term --cov-report=xml:coverage.xml \
        --cov-fail-under="$COVERAGE_FLOOR"
}

run_replay_determinism() {
    local trace="traces/facebook_like.jsonl"
    local digests=""
    local variant digest
    for variant in \
        "--workers 1" \
        "--workers 4" \
        "--workers 1 --stream" \
        "--workers 4 --stream" \
        "--workers 1 --stream-specs" \
        "--workers 4 --stream-specs" \
        "--workers 1 --sink aggregate" \
        "--workers 4 --stream-specs --sink aggregate"
    do
        echo "replay-determinism: replay $variant"
        # shellcheck disable=SC2086
        digest="$(python -m repro.experiments.cli replay \
            --trace "$trace" --scale quick --shards 2 --seed 0 $variant \
            | sed -n 's/^metrics digest: sha256=//p')"
        if [ -z "$digest" ]; then
            echo "replay-determinism: no digest printed for '$variant'" >&2
            return 1
        fi
        echo "  sha256=$digest"
        digests="$digests$digest"$'\n'
    done
    if [ "$(printf '%s' "$digests" | sort -u | wc -l)" -ne 1 ]; then
        echo "replay-determinism: FAILED — digests differ across worker/stream/sink variants:" >&2
        printf '%s' "$digests" >&2
        return 1
    fi
    echo "replay-determinism: ok (all eight variants agree)"
}

run_ingest_smoke() {
    local tmpdir
    tmpdir="$(mktemp -d)"
    local format sample converted digest1 digest4 status=0
    for format in google alibaba; do
        case "$format" in
            google) sample="traces/samples/google_task_events.sample.csv" ;;
            alibaba) sample="traces/samples/alibaba_batch_task.sample.csv" ;;
        esac
        converted="$tmpdir/$format.jsonl"
        echo "ingest-smoke: convert $sample ($format)"
        python -m repro.experiments.cli ingest \
            --format "$format" --input "$sample" --output "$converted" \
            || { status=1; break; }
        digest1="$(python -m repro.experiments.cli replay \
            --trace "$converted" --scale quick --seed 0 --workers 1 \
            | sed -n 's/^metrics digest: sha256=//p')"
        digest4="$(python -m repro.experiments.cli replay \
            --trace "$converted" --scale quick --seed 0 --workers 4 \
            --stream-specs --sink aggregate \
            | sed -n 's/^metrics digest: sha256=//p')"
        if [ -z "$digest1" ] || [ "$digest1" != "$digest4" ]; then
            echo "ingest-smoke: FAILED — $format digests differ or missing" >&2
            echo "  workers 1: $digest1" >&2
            echo "  workers 4: $digest4" >&2
            status=1
            break
        fi
        echo "  sha256=$digest1 (workers 1 and 4 agree)"
    done
    rm -rf "$tmpdir"
    [ "$status" -eq 0 ] && echo "ingest-smoke: ok (both formats round-trip)"
    return "$status"
}

run_service_smoke() {
    local tenants="${SERVICE_TENANTS:-6}"
    local burst="${SERVICE_BURST:-24}"
    local serve_out port status=0
    serve_out="$(mktemp)"
    echo "service-smoke: starting replay service (grass-experiments serve)"
    python -m repro.experiments.cli serve \
        --port 0 --max-inflight 2 --max-pending-per-tenant 4 \
        --max-pending-total 8 > "$serve_out" 2>&1 &
    local serve_pid=$!
    # Wait for the ephemeral port announcement (max ~10s).
    local tries=0
    until grep -q "^listening on " "$serve_out" 2>/dev/null; do
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ] || ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "service-smoke: FAILED — server never announced a port:" >&2
            cat "$serve_out" >&2
            kill "$serve_pid" 2>/dev/null || true
            rm -f "$serve_out"
            return 1
        fi
        sleep 0.1
    done
    port="$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' "$serve_out")"
    echo "service-smoke: driving $tenants tenants + $burst-submission overload burst (port $port)"
    # The driver exits nonzero unless every tenant's streamed digest matches
    # the offline execute(plan) AND the burst drew explicit 429 rejections.
    python -m repro.service.load \
        --host 127.0.0.1 --port "$port" \
        --tenants "$tenants" --cluster-jobs 8 --distinct-plans 2 \
        --overload-burst "$burst" || status=1
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    rm -f "$serve_out"
    [ "$status" -eq 0 ] && echo "service-smoke: ok (streamed digests match offline; overload rejected explicitly)"
    return "$status"
}

run_cache_smoke() {
    local trace="traces/facebook_like.jsonl"
    local tmpdir cachedir entry
    local cold_digest warm_digest warm_misses post_digest post_misses
    tmpdir="$(mktemp -d)"
    cachedir="$tmpdir/cache"
    replay_cached() {
        python -m repro.experiments.cli replay \
            --trace "$trace" --scale quick --shards 2 --seed 0 \
            --cache "$cachedir"
    }
    digest_of() { sed -n 's/^metrics digest: sha256=//p'; }
    misses_of() { sed -n 's/^replay cache: [0-9]* hits, \([0-9]*\) misses.*/\1/p'; }

    echo "cache-smoke: cold replay (empty cache)"
    local cold_out warm_out post_out
    cold_out="$(replay_cached)" || { rm -rf "$tmpdir"; return 1; }
    cold_digest="$(printf '%s\n' "$cold_out" | digest_of)"
    echo "cache-smoke: warm replay (populated cache)"
    warm_out="$(replay_cached)" || { rm -rf "$tmpdir"; return 1; }
    warm_digest="$(printf '%s\n' "$warm_out" | digest_of)"
    warm_misses="$(printf '%s\n' "$warm_out" | misses_of)"
    if [ -z "$cold_digest" ] || [ "$cold_digest" != "$warm_digest" ]; then
        echo "cache-smoke: FAILED — warm digest differs from cold:" >&2
        echo "  cold: $cold_digest" >&2
        echo "  warm: $warm_digest" >&2
        rm -rf "$tmpdir"
        return 1
    fi
    if [ "$warm_misses" != "0" ]; then
        echo "cache-smoke: FAILED — warm replay reported $warm_misses misses" >&2
        rm -rf "$tmpdir"
        return 1
    fi
    echo "  sha256=$cold_digest (warm run: 0 misses)"

    echo "cache-smoke: corrupting one stored entry"
    entry="$(find "$cachedir" -name '*.json' | sort | head -1)"
    if [ -z "$entry" ]; then
        echo "cache-smoke: FAILED — no cache entries written" >&2
        rm -rf "$tmpdir"
        return 1
    fi
    echo "not json" > "$entry"
    post_out="$(replay_cached)" || { rm -rf "$tmpdir"; return 1; }
    post_digest="$(printf '%s\n' "$post_out" | digest_of)"
    post_misses="$(printf '%s\n' "$post_out" | misses_of)"
    if [ "$post_digest" != "$cold_digest" ] || [ "$post_misses" = "0" ]; then
        echo "cache-smoke: FAILED — corrupted entry changed the outcome:" >&2
        echo "  digest: $post_digest (want $cold_digest)" >&2
        echo "  misses: $post_misses (want >= 1)" >&2
        rm -rf "$tmpdir"
        return 1
    fi
    echo "  corruption survived as a miss (digest unchanged)"

    python -m repro.experiments.cli cache stats --cache "$cachedir" \
        || { rm -rf "$tmpdir"; return 1; }
    python -m repro.experiments.cli cache verify --cache "$cachedir" --sample 2 \
        || { rm -rf "$tmpdir"; return 1; }
    rm -rf "$tmpdir"
    echo "cache-smoke: ok (cold/warm digests agree; corruption is a reported miss)"
}

run_cluster_replay() {
    local jobs="${CLUSTER_JOBS:-20000}"
    local max_pct="${RESIDENCY_MAX_PCT:-1}"
    local out1 out4 digest1 digest4 peak
    out1="$(mktemp)"; out4="$(mktemp)"
    echo "cluster-replay: $jobs generated jobs, fully streaming"
    python -m repro.experiments.cli replay \
        --cluster-jobs "$jobs" --scale quick --seed 0 --shards 8 \
        --workers 1 --stream-specs --sink aggregate | tee "$out1"
    python -m repro.experiments.cli replay \
        --cluster-jobs "$jobs" --scale quick --seed 0 --shards 8 \
        --workers 4 --stream-specs --sink aggregate | tee "$out4"
    digest1="$(sed -n 's/^metrics digest: sha256=//p' "$out1")"
    digest4="$(sed -n 's/^metrics digest: sha256=//p' "$out4")"
    peak="$(sed -n 's/^peak resident jobs: \([0-9]*\).*/\1/p' "$out4")"
    rm -f "$out1" "$out4"
    if [ -z "$digest1" ] || [ "$digest1" != "$digest4" ]; then
        echo "cluster-replay: FAILED — digests differ across workers:" >&2
        echo "  workers 1: $digest1" >&2
        echo "  workers 4: $digest4" >&2
        return 1
    fi
    if [ -z "$peak" ]; then
        echo "cluster-replay: FAILED — no peak-resident-jobs line printed" >&2
        return 1
    fi
    # peak * 100 < jobs * max_pct  <=>  residency ratio < max_pct%
    if [ $((peak * 100)) -ge $((jobs * max_pct)) ]; then
        echo "cluster-replay: FAILED — peak resident jobs $peak >= ${max_pct}% of $jobs" >&2
        return 1
    fi
    echo "cluster-replay: ok (digest $digest1, peak resident jobs $peak < ${max_pct}% of $jobs)"
    if [ -n "${CLUSTER_SUMMARY:-}" ]; then
        {
            echo "jobs=$jobs"
            echo "digest=sha256:$digest1"
            echo "peak_resident_jobs=$peak"
            echo "residency_max_pct=$max_pct"
        } > "$CLUSTER_SUMMARY"
        echo "cluster-replay: summary written to $CLUSTER_SUMMARY"
    fi
}

run_bench_smoke() {
    GRASS_BENCH_SCALE=quick python -m pytest -q \
        benchmarks/bench_engine_hotpath.py \
        benchmarks/bench_trace_replay.py \
        benchmarks/bench_warmup_cache.py \
        benchmarks/bench_replay_cache.py \
        benchmarks/bench_stream_replay.py \
        benchmarks/bench_stream_specs.py \
        benchmarks/bench_result_sink.py \
        benchmarks/bench_cluster_scale.py \
        benchmarks/bench_service_load.py \
        benchmarks/bench_fig1_deadline_example.py \
        || return $?
    # The JSON merge happens in a pytest sessionfinish hook whose failure
    # does not change the pytest exit code; verify the artifact explicitly
    # instead of masking a broken merge behind a success message.
    python -c "
import json, sys
payload = json.load(open('$BENCH_JSON'))
records = payload.get('records')
sys.exit(0 if isinstance(records, list) and records else 'empty $BENCH_JSON')
" || return $?
    echo "bench records written to $BENCH_JSON"
}

run_bench_default() {
    # The engine hot-path bench at default scale: the headline single-core
    # throughput number.  Quick-scale runs are too short (~0.1s) to catch a
    # hot-path regression reliably, so the gate also measures the ~0.5s
    # default-scale runs and holds them to the same threshold.
    GRASS_BENCH_SCALE=default python -m pytest -q \
        benchmarks/bench_engine_hotpath.py
}

run_bench_gate() {
    local baseline
    baseline="$(mktemp)"
    # Gate against the *committed* trajectory so repeated local runs cannot
    # ratchet the baseline past the threshold; fall back to the working-tree
    # file when the history is unavailable (fresh checkout, no git).
    if ! git show "HEAD:$BENCH_JSON" > "$baseline" 2>/dev/null; then
        if [ ! -f "$BENCH_JSON" ]; then
            echo "bench-gate: no $BENCH_JSON baseline; run bench-smoke first" >&2
            rm -f "$baseline"
            return 1
        fi
        cp "$BENCH_JSON" "$baseline"
    fi
    local status=0
    if run_bench_smoke && run_bench_default; then
        python scripts/bench_compare.py \
            --baseline "$baseline" --candidate "$BENCH_JSON" \
            --max-regression 0.30 --scale quick || status=$?
        # Gate the default-scale hot-path records too, and append the
        # trajectory line once (it carries every throughput record in the
        # candidate regardless of scale).
        python scripts/bench_compare.py \
            --baseline "$baseline" --candidate "$BENCH_JSON" \
            --max-regression 0.30 --scale default \
            --append-trajectory "$BENCH_TRAJECTORY" || status=$?
    else
        status=$?
    fi
    rm -f "$baseline"
    return "$status"
}

run_analyze() {
    # The repo's own static determinism & safety linter (repro.analysis).
    # Stdlib-only, so unlike `lint` it runs identically everywhere — there
    # is no degraded fallback to silently diverge from CI.
    python -m repro.analysis.cli src tests benchmarks scripts examples
}

# Which lint backend run_lint actually used ("ruff", "flake8" or
# "byte-compile"); `all` reports it so a local byte-compile pass is never
# mistaken for the ruff run CI performs.
LINT_BACKEND=""

run_lint() {
    if command -v ruff >/dev/null 2>&1; then
        LINT_BACKEND="ruff"
        echo "lint: using ruff"
        ruff check src tests benchmarks scripts examples
    elif command -v flake8 >/dev/null 2>&1; then
        LINT_BACKEND="flake8"
        echo "lint: using flake8"
        flake8 --max-line-length=100 src tests benchmarks scripts examples
    else
        LINT_BACKEND="byte-compile"
        echo "lint: WARNING — no linter installed; DEGRADED to byte-compilation" \
             "only (CI runs ruff; style/bug rules are NOT checked here)" >&2
        python -m compileall -q src tests benchmarks scripts examples
    fi
}

case "${1:-all}" in
    test) run_test ;;
    coverage) run_coverage ;;
    bench-smoke) run_bench_smoke ;;
    bench-gate) run_bench_gate ;;
    replay-determinism) run_replay_determinism ;;
    ingest-smoke) run_ingest_smoke ;;
    service-smoke) run_service_smoke ;;
    cache-smoke) run_cache_smoke ;;
    cluster-replay) run_cluster_replay ;;
    analyze) run_analyze ;;
    lint) run_lint ;;
    all)
        run_lint
        run_analyze
        run_test
        run_bench_smoke
        echo "all: ok (lint backend: $LINT_BACKEND; analyze: repro.analysis)"
        ;;
    *)
        echo "usage: $0 [test|coverage|bench-smoke|bench-gate|replay-determinism|ingest-smoke|service-smoke|cache-smoke|cluster-replay|analyze|lint|all]" >&2
        exit 2
        ;;
esac

#!/usr/bin/env python3
"""Perf-trajectory gate: diff fresh bench records against committed history.

``scripts/check.sh bench-gate`` snapshots the committed
``benchmarks/BENCH_engine.json``, reruns the smoke benchmarks (which refresh
the file in place), and calls this script to compare the two.  The gate
fails when any throughput record (``events_per_second`` — the engine
hot-path and trace-replay benches) regresses by more than the allowed
fraction at the compared scale.

Cross-machine comparisons (a committed laptop baseline vs a CI runner) are
normalised by each payload's ``calibration_ops_per_second`` — a fixed
pure-Python loop timed at bench time — so a slower machine is not mistaken
for a code regression.  Payloads without the field compare unnormalised.

Wall-time records are reported for context but never gate: figure wall
times at quick scale are noisy single-round measurements, while
events/second (calibration-normalised) factors out most machine variation.

Exit codes: 0 = no regression, 1 = regression past the threshold,
2 = usage / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Identity of one tracked record within a BENCH_engine.json payload.
Key = Tuple[str, str, str, str]


def record_key(record: Dict) -> Key:
    return tuple(
        str(record.get(field)) for field in ("kind", "name", "scale", "workers")
    )


def usage_error(message: str) -> "SystemExit":
    print(message, file=sys.stderr)
    return SystemExit(2)


def load_payload(path: Path) -> Tuple[Dict[Key, Dict], float]:
    """Read one BENCH_engine.json: (records by key, calibration score).

    The calibration score (machine-speed proxy recorded by
    ``benchmarks/conftest.py``) is 0.0 when absent — payloads written before
    the field existed compare unnormalised.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise usage_error(f"bench-compare: cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise usage_error(f"bench-compare: {path} is not valid JSON: {exc}") from exc
    records = payload.get("records")
    if not isinstance(records, list):
        raise usage_error(f"bench-compare: {path} has no 'records' list")
    calibration = payload.get("calibration_ops_per_second")
    if not isinstance(calibration, (int, float)) or calibration <= 0:
        calibration = 0.0
    return (
        {record_key(record): record for record in records if isinstance(record, dict)},
        float(calibration),
    )


def compare(
    baseline: Dict[Key, Dict],
    candidate: Dict[Key, Dict],
    max_regression: float,
    scale: Optional[str],
    speed_ratio: float = 1.0,
) -> Tuple[List[str], List[str]]:
    """Return (report lines, failure lines) for the throughput comparison.

    ``speed_ratio`` is candidate-machine speed over baseline-machine speed
    (from the payloads' calibration scores); baseline numbers are scaled by
    it so a slower CI runner is not mistaken for a code regression.
    """
    lines: List[str] = []
    failures: List[str] = []
    compared = 0
    for key in sorted(baseline):
        old = baseline[key]
        new = candidate.get(key)
        old_eps = old.get("events_per_second")
        if old_eps is None or not isinstance(old_eps, (int, float)) or old_eps <= 0:
            continue
        if scale is not None and old.get("scale") != scale:
            continue
        label = "/".join(part for part in key if part != "None")
        if new is None:
            # A gated record that vanished is a failure, not a skip —
            # otherwise deleting a regressing benchmark defeats the gate.
            failures.append(
                f"  {label}: gated baseline record missing from candidate "
                "(benchmark removed or renamed?)"
            )
            lines.append(f"  {label}: missing from candidate — FAILED")
            continue
        new_eps = new.get("events_per_second")
        if not isinstance(new_eps, (int, float)) or new_eps <= 0:
            failures.append(f"  {label}: candidate record lost events_per_second")
            continue
        compared += 1
        expected_eps = old_eps * speed_ratio
        change = (new_eps - expected_eps) / expected_eps
        verdict = "ok"
        if change < -max_regression:
            verdict = f"REGRESSION (limit -{max_regression:.0%})"
            failures.append(
                f"  {label}: expected {expected_eps:,.0f}, got {new_eps:,.0f} "
                f"events/s ({change:+.1%}, limit -{max_regression:.0%})"
            )
        lines.append(
            f"  {label}: {old_eps:,.0f} -> {new_eps:,.0f} events/s "
            f"({change:+.1%} vs expected) {verdict}"
        )
    if compared == 0:
        lines.append(
            "  no overlapping events/second records at the compared scale; "
            "nothing to gate"
        )
    return lines, failures


def git_sha() -> str:
    """The current commit's sha, or 'unknown' outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, check=True, timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def append_trajectory(
    path: Path, candidate: Dict[Key, Dict], calibration: float
) -> None:
    """Append this run's throughput records as one JSONL trajectory line.

    ``BENCH_engine.json`` only keeps the *latest* snapshot per record key; the
    trajectory file accumulates one line per bench-gate run (timestamp, git
    sha, calibration-normalised events/second), so the perf history survives
    across runs and can be plotted straight from the artifact.
    """
    throughput = []
    for key in sorted(candidate):
        record = candidate[key]
        eps = record.get("events_per_second")
        if not isinstance(eps, (int, float)) or eps <= 0:
            continue
        entry = {
            "kind": record.get("kind"),
            "name": record.get("name"),
            "scale": record.get("scale"),
            "events_per_second": eps,
        }
        if calibration > 0:
            # Dimensionless machine-speed-normalised throughput: comparable
            # across the laptops and CI runners that append to this file.
            entry["normalized_events_per_op"] = round(eps / calibration, 6)
        throughput.append(entry)
    line = {
        "unix_time": int(time.time()),
        "git_sha": git_sha(),
        "calibration_ops_per_second": calibration,
        "records": throughput,
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"bench-compare: appended trajectory line to {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when fresh bench records regress past a threshold."
    )
    parser.add_argument(
        "--baseline", required=True, type=Path,
        help="committed BENCH_engine.json snapshot to compare against",
    )
    parser.add_argument(
        "--candidate", required=True, type=Path,
        help="freshly regenerated BENCH_engine.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30, metavar="FRACTION",
        help="allowed events/second drop as a fraction (default 0.30)",
    )
    parser.add_argument(
        "--scale", default="quick",
        help="only gate records measured at this scale (default quick; "
        "pass 'any' to gate every scale)",
    )
    parser.add_argument(
        "--append-trajectory", type=Path, default=None, metavar="PATH",
        help="append the candidate's throughput records as one JSONL line "
        "(timestamp, git sha, calibration-normalised events/s) to PATH",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_regression < 1.0:
        parser.error("--max-regression must lie in (0, 1)")
    scale = None if args.scale == "any" else args.scale

    baseline, baseline_cal = load_payload(args.baseline)
    candidate, candidate_cal = load_payload(args.candidate)
    speed_ratio = 1.0
    if baseline_cal > 0 and candidate_cal > 0:
        speed_ratio = candidate_cal / baseline_cal
    lines, failures = compare(
        baseline, candidate, args.max_regression, scale, speed_ratio
    )
    if args.append_trajectory is not None:
        append_trajectory(args.append_trajectory, candidate, candidate_cal)
    print(f"bench-compare: {args.baseline} vs {args.candidate} "
          f"(scale={args.scale}, limit -{args.max_regression:.0%}, "
          f"machine speed ratio {speed_ratio:.2f})")
    for line in lines:
        print(line)
    if failures:
        print("bench-compare: FAILED — events/second regressed:")
        for line in failures:
            print(line)
        return 1
    print("bench-compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Small shared utilities: deterministic RNG streams and statistics helpers."""

from repro.utils.rng import RngStream, spawn_rng
from repro.utils.stats import (
    OnlineMean,
    OnlineStats,
    clamp,
    mean,
    median,
    percentile,
    weighted_mean,
)

__all__ = [
    "RngStream",
    "spawn_rng",
    "OnlineMean",
    "OnlineStats",
    "clamp",
    "mean",
    "median",
    "percentile",
    "weighted_mean",
]

"""Statistics helpers used across the simulator and the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError("clamp interval is empty (low > high)")
    return max(low, min(high, value))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; weights must not all be zero."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def median(values: Sequence[float]) -> float:
    """Median of a sequence; raises on an empty sequence."""
    if not values:
        raise ValueError("median of an empty sequence is undefined")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass
class OnlineMean:
    """Incrementally maintained mean (Welford-style, mean only)."""

    count: int = 0
    value: float = 0.0

    def add(self, sample: float) -> None:
        self.count += 1
        self.value += (sample - self.value) / self.count

    def merge(self, other: "OnlineMean") -> None:
        if other.count == 0:
            return
        total = self.count + other.count
        self.value = (self.value * self.count + other.value * other.count) / total
        self.count = total


@dataclass
class OnlineStats:
    """Incrementally maintained mean and variance (Welford's algorithm)."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, sample: float) -> None:
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        delta2 = sample - self._mean
        self._m2 += delta * delta2
        self._min = min(self._min, sample)
        self._max = max(self._max, sample)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.add(sample)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator in (Chan et al.'s parallel update).

        The result is what ``add`` would have produced had the two sample
        streams been concatenated, up to floating-point rounding; the
        streaming metrics sinks keep per-simulation accumulators exactly for
        this and combine them in a fixed merge order, so the combined value
        is deterministic.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    # -- wire format -----------------------------------------------------------

    def to_wire(self) -> dict:
        """Plain-JSON dict; exact round-trip via :meth:`from_wire`.

        ``min``/``max`` are omitted while empty because their sentinel values
        (``±inf``) are not representable in strict JSON.  Python's float
        serialisation is repr-based, so every finite field round-trips to
        the identical double — merged means computed from wire-decoded stats
        equal the locally merged ones bit for bit.
        """
        wire = {"count": self.count, "mean": self._mean, "m2": self._m2}
        if self.count:
            wire["min"] = self._min
            wire["max"] = self._max
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "OnlineStats":
        return cls(
            count=int(wire["count"]),
            _mean=float(wire["mean"]),
            _m2=float(wire["m2"]),
            _min=float(wire.get("min", math.inf)),
            _max=float(wire.get("max", -math.inf)),
        )


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    For metrics where smaller is better (job duration) call with the baseline
    duration first; for metrics where larger is better (accuracy) use
    :func:`gain_percent` instead.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def gain_percent(baseline: float, improved: float) -> float:
    """Relative gain of ``improved`` over ``baseline`` in percent (larger=better)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (improved - baseline) / baseline


def histogram(values: Sequence[float], edges: Sequence[float]) -> List[int]:
    """Count values into bins delimited by ``edges`` (len(edges)-1 bins)."""
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    counts = [0] * (len(edges) - 1)
    for value in values:
        for i in range(len(edges) - 1):
            last_bin = i == len(edges) - 2
            upper_ok = value < edges[i + 1] or (last_bin and value <= edges[i + 1])
            if edges[i] <= value and upper_ok:
                counts[i] += 1
                break
    return counts

"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (workload synthesis, straggler
inflation, estimator noise, GRASS's perturbation coin) draws from its own
named stream derived from a single experiment seed.  Two runs with the same
seed therefore produce identical traces and identical scheduling decisions,
which is what makes the benchmark tables reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from a base seed and a stream name.

    Uses a stable hash (not Python's randomized ``hash``) so the derivation
    is identical across interpreter invocations.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, reproducible random stream.

    Thin wrapper around :class:`random.Random` that adds the distribution
    helpers the simulator needs (Pareto with a finite body, truncated
    samples, weighted choice) and records the stream name for debugging.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.name = name
        self.seed = seed
        self._random = random.Random(seed)

    def spawn(self, name: str) -> "RngStream":
        """Create an independent child stream derived from this stream."""
        child_name = f"{self.name}/{name}"
        return RngStream(_derive_seed(self.seed, child_name), child_name)

    def getstate(self) -> tuple:
        """Snapshot the underlying generator state (see :meth:`setstate`).

        The state is a plain picklable tuple, so policies that carry an
        ``RngStream`` across jobs (GRASS's perturbation coin) can include it
        in their warm-up snapshots and restore it in a worker process without
        replaying the draws that produced it.
        """
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._random.setstate(state)

    # -- thin passthroughs -------------------------------------------------

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list:
        return self._random.sample(items, count)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    # -- distribution helpers ----------------------------------------------

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Sample from a Pareto distribution with the given shape and scale.

        ``P(X > x) = (scale / x) ** shape`` for ``x >= scale``.
        """
        if shape <= 0:
            raise ValueError("Pareto shape must be positive")
        if scale <= 0:
            raise ValueError("Pareto scale must be positive")
        u = self._random.random()
        # Guard against u == 0 which would produce infinity.
        u = max(u, 1e-12)
        return scale / (u ** (1.0 / shape))

    def bounded_pareto(
        self, shape: float, scale: float, upper: float
    ) -> float:
        """Sample from a Pareto truncated at ``upper``.

        Straggler multipliers use this so a single pathological sample cannot
        dominate an entire experiment, mirroring the paper's observation that
        the slowest task is about eight times the median rather than
        unboundedly slow.
        """
        if upper <= scale:
            raise ValueError("upper bound must exceed the scale")
        value = self.pareto(shape, scale)
        return min(value, upper)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        return self._random.random() < probability

    def truncated_gauss(
        self,
        mu: float,
        sigma: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
        max_tries: int = 64,
    ) -> float:
        """Sample a Gaussian clipped by rejection to ``[low, high]``.

        Falls back to clamping after ``max_tries`` rejections so the call is
        guaranteed to terminate even with a badly-placed interval.
        """
        for _ in range(max_tries):
            value = self._random.gauss(mu, sigma)
            if (low is None or value >= low) and (high is None or value <= high):
                return value
        value = self._random.gauss(mu, sigma)
        if low is not None:
            value = max(value, low)
        if high is not None:
            value = min(value, high)
        return value


def spawn_rng(seed: int, names: Iterable[str]) -> dict:
    """Create a dictionary of independent named streams from one seed."""
    root = RngStream(seed, "root")
    return {name: root.spawn(name) for name in names}

"""Core task/job model and the GRASS speculation policies.

This package holds the paper's primary contribution:

* :mod:`repro.core.task` / :mod:`repro.core.job` — the task, copy and job
  abstractions shared by every scheduler.
* :mod:`repro.core.estimators` — the ``trem`` / ``tnew`` estimators of §5.1.
* :mod:`repro.core.policies` — GS, RAS and GRASS (Pseudocode 1 & 2, §4).
"""

from repro.core.bounds import ApproximationBound, BoundType
from repro.core.job import Job, JobPhaseSpec, JobSpec
from repro.core.task import CopyState, Task, TaskCopy, TaskSpec, TaskState

__all__ = [
    "ApproximationBound",
    "BoundType",
    "Job",
    "JobSpec",
    "JobPhaseSpec",
    "Task",
    "TaskCopy",
    "TaskSpec",
    "TaskState",
    "CopyState",
]

"""Jobs: collections of tasks organised into DAG phases with an approximation bound.

A job is specified by a :class:`JobSpec` (produced by the workload generator)
and materialised into a runtime :class:`Job` by the simulator when it arrives.
Phase 0 holds the *input* tasks (map / extract); later phases hold
*intermediate* tasks (reduce / join).  Following §5.2, the accuracy of an
approximation job is the fraction of completed input tasks, and intermediate
phases only start once the required input tasks are done.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import ApproximationBound
from repro.core.task import Task, TaskObserver, TaskSpec
from repro.utils.stats import median


@dataclass(frozen=True)
class JobPhaseSpec:
    """One phase of a job's DAG: how many tasks and how large they are."""

    phase_index: int
    task_works: tuple

    def __post_init__(self) -> None:
        if self.phase_index < 0:
            raise ValueError("phase_index must be non-negative")
        if not self.task_works:
            raise ValueError("a phase must contain at least one task")
        if any(work <= 0 for work in self.task_works):
            raise ValueError("every task's work must be positive")

    @property
    def task_count(self) -> int:
        return len(self.task_works)

    @property
    def total_work(self) -> float:
        return float(sum(self.task_works))

    @cached_property
    def median_work(self) -> float:
        """Median task work, computed once per spec.

        Deadline apportioning (``Simulation._set_input_deadline``) and the
        workload generator's ideal-duration calibration both need it; sorting
        ``task_works`` on every deadline-bound arrival was measurable on the
        engine's hot path.
        """
        return median(self.task_works)


@dataclass(frozen=True)
class JobSpec:
    """Static description of a job as produced by the workload generator."""

    job_id: int
    arrival_time: float
    phases: tuple
    bound: ApproximationBound
    name: str = ""
    max_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.max_slots is not None and self.max_slots <= 0:
            raise ValueError("max_slots must be positive when given")
        if not self.phases:
            raise ValueError("a job needs at least one phase")
        indices = [phase.phase_index for phase in self.phases]
        if indices != list(range(len(self.phases))):
            raise ValueError("phases must be numbered 0..n-1 in order")

    @property
    def input_phase(self) -> JobPhaseSpec:
        return self.phases[0]

    @property
    def intermediate_phases(self) -> Sequence[JobPhaseSpec]:
        return self.phases[1:]

    @property
    def num_input_tasks(self) -> int:
        return self.input_phase.task_count

    @property
    def num_tasks(self) -> int:
        return sum(phase.task_count for phase in self.phases)

    @property
    def dag_length(self) -> int:
        return len(self.phases)

    @property
    def total_work(self) -> float:
        return sum(phase.total_work for phase in self.phases)

    def ideal_duration(self, slots: int) -> float:
        """Lower bound on duration with ``slots`` slots and no stragglers.

        Used by the workload generator to calibrate deadlines (§6.1): the
        paper sets the deadline to the ideal duration (each task at the
        job's median duration) plus a small factor.
        """
        if slots <= 0:
            raise ValueError("slots must be positive")
        total = 0.0
        for phase in self.phases:
            waves = math.ceil(phase.task_count / slots)
            total += waves * phase.median_work
        return total


class JobState:
    """Enumeration-like constants for the runtime state of a job."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class JobResult:
    """Final outcome of a job, consumed by the experiment harness."""

    job_id: int
    bound: ApproximationBound
    num_input_tasks: int
    completed_input_tasks: int
    accuracy: float
    start_time: float
    finish_time: float
    duration: float
    wasted_work: float
    speculative_copies: int
    met_bound: bool
    dag_length: int = 1
    name: str = ""
    policy_label: str = ""
    estimator_accuracy: float = 0.75

    @property
    def job_bin(self) -> str:
        """The paper's job-size bins: <50, 51-500, >500 input tasks."""
        if self.num_input_tasks <= 50:
            return "small"
        if self.num_input_tasks <= 500:
            return "medium"
        return "large"


class Job(TaskObserver):
    """Runtime state of a job inside the simulator.

    The job observes its own tasks (via :class:`~repro.core.task.TaskObserver`)
    and keeps per-phase pending/completed counters, the set of unfinished
    tasks per phase and the job-wide running-copy count incrementally, so the
    scheduler's per-event queries (``schedulable_tasks``, ``current_phase``,
    ``running_copy_count``, ...) are O(1) or O(schedulable) instead of
    rescanning every task and copy.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.state = JobState.WAITING
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.allocation: int = 0
        self.input_deadline: Optional[float] = None
        self.speculative_copies_launched: int = 0
        self.tasks: Dict[int, Task] = {}
        self._tasks_by_phase: List[List[Task]] = []
        self._completed_by_phase: List[int] = [0] * spec.dag_length
        self._pending_by_phase: List[int] = [
            phase.task_count for phase in spec.phases
        ]
        # Insertion-ordered task_id -> Task maps; deletion on completion keeps
        # the iteration order identical to filtering the phase's task list.
        self._unfinished_by_phase: List[Dict[int, Task]] = []
        self._phase_cursor: int = 0
        self._running_copy_total: int = 0
        # Completions needed before each phase unblocks the next: the bound's
        # required fraction for the input phase, every task for intermediate
        # phases.  Both are fixed at admission, and precomputing them keeps
        # ``current_phase`` — called on every scheduling query — a plain
        # counter comparison.
        self._required_by_phase: List[int] = [
            spec.bound.required_tasks(spec.num_input_tasks)
            if phase.phase_index == 0
            else phase.task_count
            for phase in spec.phases
        ]
        self._build_tasks()

    def _build_tasks(self) -> None:
        task_id = 0
        for phase in self.spec.phases:
            phase_tasks: List[Task] = []
            unfinished: Dict[int, Task] = {}
            for work in phase.task_works:
                spec = TaskSpec(
                    task_id=task_id,
                    job_id=self.spec.job_id,
                    work=work,
                    phase_index=phase.phase_index,
                )
                task = Task(spec=spec)
                task.observer = self
                self.tasks[task_id] = task
                phase_tasks.append(task)
                unfinished[task_id] = task
                task_id += 1
            self._tasks_by_phase.append(phase_tasks)
            self._unfinished_by_phase.append(unfinished)

    # -- task observation (incremental counters) ---------------------------------

    def note_task_started(self, task: Task) -> None:
        self._pending_by_phase[task.phase_index] -= 1

    def note_copies_changed(self, task: Task, delta: int) -> None:
        self._running_copy_total += delta

    def note_task_completed(self, task: Task) -> None:
        self._completed_by_phase[task.phase_index] += 1
        self._unfinished_by_phase[task.phase_index].pop(task.task_id, None)

    def note_task_abandoned(self, task: Task, was_pending: bool) -> None:
        if was_pending:
            self._pending_by_phase[task.phase_index] -= 1
        self._unfinished_by_phase[task.phase_index].pop(task.task_id, None)

    # -- identity --------------------------------------------------------------

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def bound(self) -> ApproximationBound:
        return self.spec.bound

    @property
    def dag_length(self) -> int:
        return self.spec.dag_length

    # -- lifecycle --------------------------------------------------------------

    def start(self, now: float) -> None:
        if self.state is not JobState.WAITING:
            raise RuntimeError("job already started")
        self.state = JobState.RUNNING
        self.start_time = now

    def finish(self, now: float) -> None:
        if self.state is not JobState.RUNNING:
            raise RuntimeError("job is not running")
        self.state = JobState.FINISHED
        self.finish_time = now

    @property
    def is_running(self) -> bool:
        return self.state == JobState.RUNNING

    @property
    def is_finished(self) -> bool:
        return self.state == JobState.FINISHED

    # -- task views -------------------------------------------------------------

    def phase_tasks(self, phase_index: int) -> List[Task]:
        return self._tasks_by_phase[phase_index]

    @property
    def input_tasks(self) -> List[Task]:
        return self._tasks_by_phase[0]

    @property
    def all_tasks(self) -> List[Task]:
        return list(self.tasks.values())

    def running_tasks(self) -> List[Task]:
        return [task for task in self.tasks.values() if task.is_running]

    def running_copy_count(self) -> int:
        return self._running_copy_total

    def completed_input_tasks(self) -> int:
        return self._completed_by_phase[0]

    def completed_phase_tasks(self, phase_index: int) -> int:
        return self._completed_by_phase[phase_index]

    def phase_complete(self, phase_index: int, required: Optional[int] = None) -> bool:
        """True if a phase has finished enough tasks (all, unless ``required``)."""
        tasks = self.phase_tasks(phase_index)
        needed = len(tasks) if required is None else required
        return self.completed_phase_tasks(phase_index) >= needed

    def required_input_tasks(self) -> int:
        """Input tasks the job must finish to satisfy its bound."""
        return self._required_by_phase[0]

    def accuracy(self) -> float:
        """Fraction of input tasks completed — the paper's accuracy metric."""
        total = self.spec.num_input_tasks
        if total == 0:
            return 1.0
        return self.completed_input_tasks() / total

    def current_phase(self) -> int:
        """Index of the earliest phase that still has schedulable work.

        Phase ``p+1`` becomes eligible once phase ``p`` has completed its
        required number of tasks (all tasks for intermediate phases; the
        bound-determined fraction for the input phase).
        """
        cursor = self._phase_cursor
        dag_length = self.spec.dag_length
        completed = self._completed_by_phase
        required = self._required_by_phase
        while cursor < dag_length and completed[cursor] >= required[cursor]:
            cursor += 1
        self._phase_cursor = cursor
        return cursor

    def schedulable_tasks(self, now: float) -> List[Task]:
        """Tasks the scheduler may act on right now (current phase only)."""
        phase = self.current_phase()
        if phase >= self.dag_length:
            return []
        return list(self._unfinished_by_phase[phase].values())

    def schedulable_counts(self) -> "tuple[int, int]":
        """O(1) ``(pending, running)`` counts over the schedulable tasks.

        This is what fair-share demand estimation needs; it avoids
        materialising the schedulable task list on every allocation pass.
        """
        phase = self.current_phase()
        if phase >= self.dag_length:
            return 0, 0
        pending = self._pending_by_phase[phase]
        return pending, len(self._unfinished_by_phase[phase]) - pending

    def pending_task_count(self) -> int:
        return sum(self._pending_by_phase)

    # -- accounting --------------------------------------------------------------

    def wasted_work(self) -> float:
        return sum(task.wasted_work() for task in self.tasks.values())

    def elapsed(self, now: float) -> float:
        if self.start_time is None:
            return 0.0
        return max(0.0, now - self.start_time)

    def remaining_deadline(self, now: float) -> Optional[float]:
        """Seconds until the (input-phase) deadline, or None for error-bound jobs."""
        if not self.bound.is_deadline or self.start_time is None:
            return None
        deadline = self.input_deadline
        if deadline is None:
            assert self.bound.deadline is not None
            deadline = self.bound.deadline
        return max(0.0, self.start_time + deadline - now)

    def remaining_required_tasks(self) -> int:
        """Input tasks still needed to satisfy an error bound (0 if met)."""
        return max(0, self.required_input_tasks() - self.completed_input_tasks())

    def bound_satisfied(self) -> bool:
        """True when the job's input-phase goal is met.

        For error-bound jobs this means the required fraction of input tasks
        is done.  For deadline-bound jobs the goal is simply to do as much as
        possible, so this returns True only when *all* input tasks are done.
        """
        if self.bound.is_error:
            return self.completed_input_tasks() >= self.required_input_tasks()
        return self.completed_input_tasks() >= self.spec.num_input_tasks

    def all_required_work_done(self) -> bool:
        """True when the input-phase goal and every later phase are complete."""
        if not self.bound_satisfied():
            return False
        for index in range(1, self.dag_length):
            if not self.phase_complete(index):
                return False
        return True

    def abandon_incomplete_tasks(self, now: float) -> List:
        """Kill every running copy of unfinished tasks (job hit its bound)."""
        killed = []
        for task in self.tasks.values():
            if not task.is_finished:
                killed.extend(task.abandon(now))
        return killed

    def to_result(
        self, policy_label: str = "", estimator_accuracy: float = 0.75
    ) -> JobResult:
        """Snapshot the job's outcome; only valid once the job has finished."""
        if self.start_time is None or self.finish_time is None:
            raise RuntimeError("job has not finished yet")
        duration = self.finish_time - self.start_time
        met_bound = self.bound_satisfied() if self.bound.is_error else (
            self.accuracy() >= 1.0
        )
        return JobResult(
            job_id=self.job_id,
            bound=self.bound,
            num_input_tasks=self.spec.num_input_tasks,
            completed_input_tasks=self.completed_input_tasks(),
            accuracy=self.accuracy(),
            start_time=self.start_time,
            finish_time=self.finish_time,
            duration=duration,
            wasted_work=self.wasted_work(),
            speculative_copies=self.speculative_copies_launched,
            met_bound=met_bound,
            dag_length=self.dag_length,
            name=self.spec.name,
            policy_label=policy_label,
            estimator_accuracy=estimator_accuracy,
        )


def job_bin_label(num_tasks: int) -> str:
    """The paper's job bins (§6.1): small (<50), medium (51-500), large (>500)."""
    if num_tasks <= 50:
        return "small"
    if num_tasks <= 500:
        return "medium"
    return "large"

"""Tasks and task copies.

A *task* is the unit of work a job is decomposed into.  A *copy* is one
attempt at executing a task on a machine slot; speculation creates additional
copies of an already-running task and the earliest copy to finish wins while
the rest are killed (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class TaskState(Enum):
    """Lifecycle of a task (not an individual copy)."""

    PENDING = "pending"        # no copy has been launched yet
    RUNNING = "running"        # at least one copy is executing
    COMPLETED = "completed"    # some copy finished
    ABANDONED = "abandoned"    # job ended (deadline/error bound) before completion


class CopyState(Enum):
    """Lifecycle of a single copy of a task."""

    RUNNING = "running"
    FINISHED = "finished"
    KILLED = "killed"


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """Static description of a task, produced by the workload generator.

    ``work`` is the task's intrinsic size in seconds on a reference machine
    with no straggling; the actual duration of each copy also depends on the
    machine speed and the per-copy straggler multiplier.
    """

    task_id: int
    job_id: int
    work: float
    phase_index: int = 0
    input_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("task work must be positive")
        if self.phase_index < 0:
            raise ValueError("phase_index must be non-negative")


@dataclass(slots=True)
class TaskCopy:
    """A single execution attempt of a task on a specific machine slot."""

    copy_id: int
    task_id: int
    machine_id: int
    start_time: float
    duration: float
    state: CopyState = CopyState.RUNNING
    end_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("copy duration must be positive")

    @property
    def finish_time(self) -> float:
        """Wall-clock time at which this copy would finish if left alone."""
        return self.start_time + self.duration

    def elapsed(self, now: float) -> float:
        """Seconds this copy has been running at time ``now``."""
        return max(0.0, now - self.start_time)

    def remaining(self, now: float) -> float:
        """True remaining seconds at time ``now`` (0 if already past finish)."""
        return max(0.0, self.finish_time - now)

    def progress(self, now: float) -> float:
        """Fraction of work done at ``now``, in [0, 1]."""
        if self.duration <= 0:
            return 1.0
        return min(1.0, self.elapsed(now) / self.duration)

    def progress_rate(self, now: float) -> float:
        """Progress per second, the signal LATE uses to flag stragglers."""
        elapsed = self.elapsed(now)
        if elapsed <= 0:
            return float("inf")
        return self.progress(now) / elapsed

    def is_running(self) -> bool:
        return self.state is CopyState.RUNNING

    def finish(self, now: float) -> None:
        """Mark the copy finished at ``now``."""
        if self.state is not CopyState.RUNNING:
            raise RuntimeError(f"cannot finish copy in state {self.state}")
        self.state = CopyState.FINISHED
        self.end_time = now

    def kill(self, now: float) -> None:
        """Kill the copy (its sibling finished first, or the job ended)."""
        if self.state is not CopyState.RUNNING:
            raise RuntimeError(f"cannot kill copy in state {self.state}")
        self.state = CopyState.KILLED
        self.end_time = now


class TaskObserver:
    """Interface for objects that track task state changes incrementally.

    :class:`~repro.core.job.Job` implements it to maintain O(1) per-phase
    pending/completed counters and the job-wide running-copy count, so the
    simulator's hot path never has to rescan every task.  All notifications
    fire from the :class:`Task` mutators themselves, which keeps the counters
    correct no matter who drives the task (the engine or a unit test).
    """

    def note_task_started(self, task: "Task") -> None:
        """The task launched its first copy (PENDING -> RUNNING)."""

    def note_copies_changed(self, task: "Task", delta: int) -> None:
        """The task's running-copy count changed by ``delta``."""

    def note_task_completed(self, task: "Task") -> None:
        """The task completed (some copy finished)."""

    def note_task_abandoned(self, task: "Task", was_pending: bool) -> None:
        """The task was abandoned before completing."""


@dataclass(slots=True)
class Task:
    """Runtime state of a task: its spec plus every copy launched for it."""

    spec: TaskSpec
    state: TaskState = TaskState.PENDING
    copies: List[TaskCopy] = field(default_factory=list)
    completion_time: Optional[float] = None
    first_start_time: Optional[float] = None
    observer: Optional[TaskObserver] = field(
        default=None, init=False, repr=False, compare=False
    )
    _copies_by_id: Dict[int, TaskCopy] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _num_running: int = field(default=0, init=False, repr=False, compare=False)
    # Maintained flat list of the running copies, in launch order.  Copies
    # only stop running in bulk (``complete`` / ``abandon`` kill every
    # running copy), so the list is an append-then-clear structure and always
    # equals ``[c for c in copies if c.is_running()]`` without the rescan.
    _running: List[TaskCopy] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for copy in self.copies:
            self._copies_by_id[copy.copy_id] = copy
            if copy.is_running():
                self._num_running += 1
                self._running.append(copy)

    # -- identity ------------------------------------------------------------

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def phase_index(self) -> int:
        return self.spec.phase_index

    @property
    def work(self) -> float:
        return self.spec.work

    # -- copy bookkeeping ------------------------------------------------------

    @property
    def running_copies(self) -> List[TaskCopy]:
        """The running copies in launch order (maintained; do not mutate)."""
        return self._running

    @property
    def running_copy_count(self) -> int:
        """Number of currently running copies — the ``c`` of Pseudocode 1."""
        return self._num_running

    @property
    def total_copies_launched(self) -> int:
        return len(self.copies)

    @property
    def is_pending(self) -> bool:
        return self.state is TaskState.PENDING

    @property
    def is_running(self) -> bool:
        return self.state is TaskState.RUNNING

    @property
    def is_completed(self) -> bool:
        return self.state is TaskState.COMPLETED

    @property
    def is_finished(self) -> bool:
        """True once the task no longer needs scheduling attention."""
        return self.state in (TaskState.COMPLETED, TaskState.ABANDONED)

    def add_copy(self, copy: TaskCopy) -> None:
        """Register a newly launched copy and update task state."""
        if self.is_finished:
            raise RuntimeError("cannot launch a copy of a finished task")
        if copy.task_id != self.task_id:
            raise ValueError("copy belongs to a different task")
        was_pending = self.state is TaskState.PENDING
        self.copies.append(copy)
        self._copies_by_id[copy.copy_id] = copy
        if copy.is_running():
            self._num_running += 1
            self._running.append(copy)
        if self.first_start_time is None:
            self.first_start_time = copy.start_time
        self.state = TaskState.RUNNING
        if self.observer is not None:
            if was_pending:
                self.observer.note_task_started(self)
            self.observer.note_copies_changed(self, +1)

    def copy_by_id(self, copy_id: int) -> Optional[TaskCopy]:
        """O(1) lookup of a copy by its id (the engine's completion hot path)."""
        return self._copies_by_id.get(copy_id)

    def earliest_finish_time(self) -> float:
        """Earliest wall-clock finish among the running copies."""
        running = self.running_copies
        if not running:
            raise RuntimeError("task has no running copies")
        return min(copy.finish_time for copy in running)

    def true_remaining(self, now: float) -> float:
        """True remaining time of the best (soonest-finishing) running copy."""
        running = self.running_copies
        if not running:
            raise RuntimeError("task has no running copies")
        return min(copy.remaining(now) for copy in running)

    def best_progress(self, now: float) -> float:
        """Progress of the most advanced running copy, in [0, 1]."""
        running = self.running_copies
        if not running:
            return 1.0 if self.is_completed else 0.0
        return max(copy.progress(now) for copy in running)

    def complete(self, now: float, winning_copy: TaskCopy) -> List[TaskCopy]:
        """Mark the task complete; kill and return the losing running copies."""
        if self.is_finished:
            raise RuntimeError("task already finished")
        winning_copy.finish(now)
        killed = []
        for copy in self.copies:
            if copy.is_running():
                copy.kill(now)
                killed.append(copy)
        stopped = self._num_running
        self._num_running = 0
        self._running.clear()
        self.state = TaskState.COMPLETED
        self.completion_time = now
        if self.observer is not None:
            if stopped:
                self.observer.note_copies_changed(self, -stopped)
            self.observer.note_task_completed(self)
        return killed

    def abandon(self, now: float) -> List[TaskCopy]:
        """Abandon the task (job hit its bound); kill any running copies."""
        was_pending = self.state is TaskState.PENDING
        killed = []
        for copy in self.copies:
            if copy.is_running():
                copy.kill(now)
                killed.append(copy)
        stopped = self._num_running
        self._num_running = 0
        self._running.clear()
        if not self.is_completed:
            self.state = TaskState.ABANDONED
            if self.observer is not None:
                if stopped:
                    self.observer.note_copies_changed(self, -stopped)
                self.observer.note_task_abandoned(self, was_pending)
        return killed

    def wasted_work(self) -> float:
        """Total seconds burnt by killed copies (resource cost of speculation)."""
        total = 0.0
        for copy in self.copies:
            if copy.state is CopyState.KILLED and copy.end_time is not None:
                total += copy.end_time - copy.start_time
        return total

"""Task duration estimators: ``trem`` and ``tnew`` (§5.1).

The scheduler never sees true durations.  It sees:

* ``trem`` — the estimated remaining duration of a running task, obtained by
  extrapolating the progress reports the task executors send every 5 % of
  data read/written.
* ``tnew`` — the estimated duration of a fresh copy, obtained by sampling the
  durations of completed tasks of the same job (normalised to input size).

Both estimates are imperfect for two reasons that the simulator reproduces:

1. *Intrinsic unpredictability*: a fresh copy's true duration depends on the
   straggler multiplier it will draw, which nobody can know in advance, and a
   running copy's extrapolation is quantised to the 5 % progress reports.
2. *Measurement noise*: progress-based extrapolation assumes IO-proportional
   progress, which real tasks only approximate.  This is modelled as a small
   multiplicative error (``trem_noise`` / ``tnew_noise``) that is re-drawn as
   the task produces new progress reports, i.e. it is not a permanent bias.

The realised accuracy — ``1 - E[|estimate - actual| / actual]`` — is tracked
online exactly as the prototype does; it is one of GRASS's three switching
factors (§4.1) and lands near the 72 % / 76 % the paper reports under the
default workload profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.task import Task
from repro.utils.rng import RngStream
from repro.utils.stats import OnlineMean, clamp, median


@dataclass(frozen=True)
class EstimatorConfig:
    """Noise configuration for the two estimators.

    ``trem_noise`` and ``tnew_noise`` are the standard deviations of the
    multiplicative measurement error.  ``perfect()`` produces the noise-free
    estimator the oracle and several unit tests use; ``degraded()`` scales
    the noise up for the estimation-accuracy ablations.
    """

    trem_noise: float = 0.05
    tnew_noise: float = 0.05
    progress_report_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.trem_noise < 0 or self.tnew_noise < 0:
            raise ValueError("noise levels must be non-negative")
        if not 0.0 < self.progress_report_fraction <= 1.0:
            raise ValueError("progress_report_fraction must be in (0, 1]")

    @classmethod
    def perfect(cls) -> "EstimatorConfig":
        """A noise-free estimator (intrinsic unpredictability still applies)."""
        return cls(trem_noise=0.0, tnew_noise=0.0)

    @classmethod
    def degraded(cls, factor: float) -> "EstimatorConfig":
        """Scale the default noise by ``factor`` (ablations on accuracy)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        base = cls()
        return cls(
            trem_noise=base.trem_noise * factor,
            tnew_noise=base.tnew_noise * factor,
            progress_report_fraction=base.progress_report_fraction,
        )


class EstimateAccuracyTracker:
    """Tracks realised estimator accuracy, updated on every comparison."""

    def __init__(self) -> None:
        self._accuracy = OnlineMean()

    def record(self, estimated: float, actual: float) -> None:
        if actual <= 0:
            return
        relative_error = abs(estimated - actual) / actual
        self._accuracy.add(clamp(1.0 - relative_error, 0.0, 1.0))

    @property
    def accuracy(self) -> float:
        """Mean realised accuracy in [0, 1]; 1.0 until the first sample."""
        if self._accuracy.count == 0:
            return 1.0
        return self._accuracy.value

    @property
    def sample_count(self) -> int:
        return self._accuracy.count


class TaskEstimator:
    """Produces ``trem`` / ``tnew`` estimates for one job's tasks.

    The estimator is owned by the per-job scheduler context so its
    completed-task samples never leak across jobs (matching the prototype,
    which normalises by the job's own input sizes).
    """

    def __init__(
        self,
        config: EstimatorConfig,
        rng: RngStream,
        prior_work_rate: float = 1.0,
    ) -> None:
        if prior_work_rate <= 0:
            raise ValueError("prior_work_rate must be positive")
        self.config = config
        self._rng = rng
        # Direct handle on the stream's generator: noise draws happen tens of
        # thousands of times per simulation and the passthrough wrapper was a
        # measurable share of the estimator's cost.  The stream's state is
        # only ever mutated through the shared ``random.Random`` object, so
        # the bound method stays valid for the estimator's lifetime.
        self._gauss = rng._random.gauss
        self._completed_durations_per_work: list = []
        self._work_rate_cache: Optional[float] = None
        self._prior_work_rate = prior_work_rate
        self.trem_tracker = EstimateAccuracyTracker()
        self.tnew_tracker = EstimateAccuracyTracker()
        # Noise is cached per "observation": a task's tnew noise refreshes as
        # new completions arrive, and its trem noise refreshes with each
        # progress report, so errors are transient rather than permanent biases.
        self._trem_noise_cache: Dict[tuple, float] = {}
        self._tnew_noise_cache: Dict[tuple, float] = {}
        # Bumped whenever a noise cache is evicted wholesale.  Callers that
        # memoise estimates (the engine's scheduling index) compare this
        # counter to detect that a cached estimate could no longer be
        # reproduced and must be treated as authoritative rather than
        # recomputed (a recompute would re-draw different noise).
        self.noise_generation = 0

    # -- noise ------------------------------------------------------------------

    def _noise(self, sigma: float, cache: Dict[tuple, float], key: tuple) -> float:
        if sigma <= 0:
            return 1.0
        if key not in cache:
            if len(cache) > 4096:
                cache.clear()
                self.noise_generation += 1
            cache[key] = max(0.2, 1.0 + self._gauss(0.0, sigma))
        return cache[key]

    # -- observation hooks ---------------------------------------------------------

    def observe_completion(self, task: Task, actual_duration: float) -> None:
        """Record a completed task's duration for future ``tnew`` estimates."""
        if actual_duration <= 0 or task.work <= 0:
            return
        estimated = self.tnew(task)
        self.tnew_tracker.record(estimated, actual_duration)
        self._completed_durations_per_work.append(actual_duration / task.work)
        self._work_rate_cache = None

    def record_trem_outcome(self, estimated: float, actual: float) -> None:
        """Feed the realised remaining time back into the accuracy tracker."""
        self.trem_tracker.record(estimated, actual)

    # -- estimates ----------------------------------------------------------------

    @property
    def completed_samples(self) -> int:
        return len(self._completed_durations_per_work)

    def expected_work_rate(self) -> float:
        """Seconds of duration per unit of task work, from completed samples.

        The median is cached between completions: ``tnew`` is called once per
        schedulable task per scheduling pass, and re-sorting the sample list
        each time dominated the engine's hot path before caching.
        """
        if not self._completed_durations_per_work:
            return self._prior_work_rate
        if self._work_rate_cache is None:
            self._work_rate_cache = median(self._completed_durations_per_work)
        return self._work_rate_cache

    def tnew(self, task: Task) -> float:
        """Estimated duration of a brand-new copy of ``task``.

        The error of this estimate comes from the sampled work *rate*, which
        is shared by every task of the job (the prototype normalises by input
        size and samples one distribution per job, §5.1).  The noise key is
        therefore the sample count, not the task: the estimate drifts as more
        completions arrive but never ranks equal-sized tasks differently,
        which would cause spurious speculation the real system does not do.
        """
        base = self.expected_work_rate() * task.work
        noise = self._noise(
            self.config.tnew_noise,
            self._tnew_noise_cache,
            (self.completed_samples,),
        )
        return max(1e-6, base * noise)

    def trem(self, task: Task, now: float) -> float:
        """Estimated remaining duration of the best running copy of ``task``.

        Mirrors §5.1: the remaining time is extrapolated from the fraction of
        input processed so far, quantised to the progress-report granularity,
        and perturbed by the estimator's measurement noise.  Before the first
        progress report arrives the estimator can only assume the copy is a
        typical one, so it reports ``tnew`` minus the elapsed time.
        """
        running = task.running_copies
        if not running:
            return self.tnew(task)
        best = min(running, key=lambda copy: copy.remaining(now))
        granularity = self.config.progress_report_fraction
        progress = best.progress(now)
        elapsed = best.elapsed(now)
        if progress < granularity:
            # No progress report yet: assume a typical copy, subtract elapsed.
            return max(1e-6, self.tnew(task) - elapsed)
        # Extrapolate from the latest report.  The report carries the exact
        # fraction read/written at the time it was sent, so the extrapolation
        # uses the true progress; only the *timing* of reports is quantised.
        estimated_total = elapsed / progress
        base = max(1e-6, estimated_total - elapsed)
        noise = self._noise(
            self.config.trem_noise,
            self._trem_noise_cache,
            (task.task_id, len(task.copies), int(progress / granularity)),
        )
        return max(1e-6, base * noise)

    # -- batched fast paths -------------------------------------------------------

    def tnew_epoch_factor(self) -> Tuple[int, int, float, float]:
        """The shared ``tnew`` inputs for the current sample epoch.

        Returns ``(completed_samples, noise_generation, rate, noise)`` such
        that ``tnew(task) == max(1e-6, (rate * task.work) * noise)`` for every
        task until the next completion arrives.  Because both the rate and
        the noise are keyed by the sample count alone, a scheduling pass can
        fetch them once and evaluate every pending task's ``tnew`` without a
        method call per task.  The first call of an epoch performs the same
        noise draw :meth:`tnew` would, so RNG consumption is unchanged.
        """
        samples = self.completed_samples
        rate = self.expected_work_rate()
        noise = self._noise(
            self.config.tnew_noise, self._tnew_noise_cache, (samples,)
        )
        return samples, self.noise_generation, rate, noise

    def snapshot_running(self, task: Task, now: float) -> Tuple[float, float, float, float]:
        """``(tnew, trem, actual, accuracy_sample)`` for a running task.

        Replicates the engine's per-running-task snapshot sequence — ``tnew``
        query, ``trem`` query, then ``record_trem_outcome`` against the true
        remaining time — in one fully inlined pass: this is the single
        hottest function of the simulator, so the ``tnew``/``trem``/``record``
        bodies are folded in with direct field access instead of the method
        chain.  Every float expression keeps the operation order of the
        unbatched methods, so the values (and the noise-cache draws) are
        bit-identical.  ``accuracy_sample`` is the clamped value that was
        folded into the accuracy tracker; callers cache it so a replayed
        scheduling round can re-fold it without recomputing the estimate.
        """
        # tnew: both the work rate and the noise are keyed by the completed
        # sample count, and the walk fetched the epoch factor first, so this
        # is a pure cache read (same values ``tnew()`` would return).
        work_samples = self._completed_durations_per_work
        if work_samples:
            rate = self._work_rate_cache
            if rate is None:
                rate = self._work_rate_cache = median(work_samples)
        else:
            rate = self._prior_work_rate
        config = self.config
        sigma = config.tnew_noise
        if sigma <= 0.0:
            noise = 1.0
        else:
            key = (len(work_samples),)
            noise = self._tnew_noise_cache.get(key)
            if noise is None:
                noise = self._noise(sigma, self._tnew_noise_cache, key)
        tnew = (rate * task.spec.work) * noise
        if tnew < 1e-6:
            tnew = 1e-6
        running = task._running
        if not running:
            raise RuntimeError("task has no running copies")
        best = None
        best_remaining = float("inf")
        for copy in running:
            remaining = copy.start_time + copy.duration - now
            if remaining < 0.0:
                remaining = 0.0
            if remaining < best_remaining:
                best = copy
                best_remaining = remaining
        granularity = config.progress_report_fraction
        elapsed = now - best.start_time
        if elapsed < 0.0:
            elapsed = 0.0
        progress = elapsed / best.duration
        if progress > 1.0:
            progress = 1.0
        if progress < granularity:
            trem = tnew - elapsed
            if trem < 1e-6:
                trem = 1e-6
        else:
            estimated_total = elapsed / progress
            base = estimated_total - elapsed
            if base < 1e-6:
                base = 1e-6
            sigma = config.trem_noise
            if sigma <= 0.0:
                noise = 1.0
            else:
                cache = self._trem_noise_cache
                key = (task.spec.task_id, len(task.copies), int(progress / granularity))
                noise = cache.get(key)
                if noise is None:
                    noise = self._noise(sigma, cache, key)
            trem = base * noise
            if trem < 1e-6:
                trem = 1e-6
        actual = best_remaining if best_remaining > 1e-6 else 1e-6
        # record_trem_outcome(trem, actual), inlined (actual > 0 by
        # construction, so the tracker's guard cannot trigger).
        sample = 1.0 - abs(trem - actual) / actual
        if sample <= 0.0:
            sample = 0.0
        tracker_mean = self.trem_tracker._accuracy
        count = tracker_mean.count + 1
        tracker_mean.count = count
        tracker_mean.value += (sample - tracker_mean.value) / count
        return tnew, trem, actual, sample

    def update_running_snaps(
        self, snaps: Dict[int, object], running_ids: list, now: float
    ) -> Tuple[int, int, float, float]:
        """Re-estimate every running task's snapshot in one batched walk.

        Equivalent to calling :meth:`snapshot_running` for each id in
        ``running_ids`` (ascending task-id order, the unbatched walk order)
        and storing the results on the snapshots — but with the epoch factor,
        config fields and cache handles hoisted out of the loop, which
        removes one Python call plus their re-derivation per running task.
        Returns ``(completed_samples, noise_generation, rate, noise)`` — the
        same tuple :meth:`tnew_epoch_factor` yields, with the generation read
        *after* the factor fetch and *before* the walk so a mid-walk noise
        eviction is still detected by the caller's next comparison.
        """
        work_samples = self._completed_durations_per_work
        samples = len(work_samples)
        if work_samples:
            rate = self._work_rate_cache
            if rate is None:
                rate = self._work_rate_cache = median(work_samples)
        else:
            rate = self._prior_work_rate
        config = self.config
        sigma = config.tnew_noise
        if sigma <= 0.0:
            tnew_noise = 1.0
        else:
            key = (samples,)
            tnew_noise = self._tnew_noise_cache.get(key)
            if tnew_noise is None:
                tnew_noise = self._noise(sigma, self._tnew_noise_cache, key)
        gen = self.noise_generation
        granularity = config.progress_report_fraction
        trem_sigma = config.trem_noise
        trem_cache = self._trem_noise_cache
        trem_cache_get = trem_cache.get
        draw_noise = self._noise
        tracker_mean = self.trem_tracker._accuracy
        for task_id in running_ids:
            snap = snaps[task_id]
            task = snap.task
            spec = task.spec
            tnew = (rate * spec.work) * tnew_noise
            if tnew < 1e-6:
                tnew = 1e-6
            best = None
            best_remaining = float("inf")
            for copy in task._running:
                remaining = copy.start_time + copy.duration - now
                if remaining < 0.0:
                    remaining = 0.0
                if remaining < best_remaining:
                    best = copy
                    best_remaining = remaining
            elapsed = now - best.start_time
            if elapsed < 0.0:
                elapsed = 0.0
            progress = elapsed / best.duration
            if progress > 1.0:
                progress = 1.0
            if progress < granularity:
                trem = tnew - elapsed
                if trem < 1e-6:
                    trem = 1e-6
            else:
                estimated_total = elapsed / progress
                base = estimated_total - elapsed
                if base < 1e-6:
                    base = 1e-6
                if trem_sigma <= 0.0:
                    # ``base * 1.0`` is bit-identical to ``base`` and the
                    # clamp cannot trigger (``base >= 1e-6`` already).
                    trem = base
                else:
                    noise_key = (spec.task_id, len(task.copies), int(progress / granularity))
                    noise = trem_cache_get(noise_key)
                    if noise is None:
                        noise = draw_noise(trem_sigma, trem_cache, noise_key)
                    trem = base * noise
                    if trem < 1e-6:
                        trem = 1e-6
            actual = best_remaining if best_remaining > 1e-6 else 1e-6
            sample = 1.0 - abs(trem - actual) / actual
            if sample <= 0.0:
                sample = 0.0
            count = tracker_mean.count + 1
            tracker_mean.count = count
            tracker_mean.value += (sample - tracker_mean.value) / count
            snap.running = True
            snap.copies = task._num_running
            snap.trem = trem
            snap.tnew = tnew
            snap._actual = actual
            snap._acc = sample
        return samples, gen, rate, tnew_noise

    # -- realised accuracy -----------------------------------------------------------

    @property
    def trem_accuracy(self) -> float:
        return self.trem_tracker.accuracy

    @property
    def tnew_accuracy(self) -> float:
        return self.tnew_tracker.accuracy

    @property
    def combined_accuracy(self) -> float:
        """Mean of the two realised accuracies — GRASS's third switching factor."""
        return 0.5 * (self.trem_accuracy + self.tnew_accuracy)

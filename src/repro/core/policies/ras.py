"""Resource Aware Speculative (RAS) scheduling — Pseudocode 1 & 2 with ``OC = 1``.

RAS accounts for the opportunity cost of speculation: a duplicate is launched
only when it saves both time *and* resources, i.e. when the total slot-time
spent with the duplicate is smaller than letting the running copies finish:

    saving = c * trem - (c + 1) * tnew > 0

Among speculation candidates RAS picks the one with the highest saving.  When
no speculation passes the savings test RAS falls back to the same default as
GS: the pending task with the lowest ``tnew`` within the deadline for
deadline-bound jobs, or the pending earliest-contributing task with the
highest expected duration for error-bound jobs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingIndex,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
    deadline_candidates,
    deadline_fallback,
    error_candidates,
    index_deadline_fallback,
    index_error_window,
    index_pending_tail,
    make_decision,
)


class ResourceAwareSpeculative(SpeculationPolicy):
    """The RAS policy of §3.1."""

    name = "ras"
    stateless_choose = True

    def __init__(self, max_copies_per_task: int = 4) -> None:
        if max_copies_per_task < 1:
            raise ValueError("max_copies_per_task must be at least 1")
        self.max_copies_per_task = max_copies_per_task

    def _admissible(self, candidates: List[TaskSnapshot]) -> List[TaskSnapshot]:
        return [
            snap
            for snap in candidates
            if not snap.running or snap.copies < self.max_copies_per_task
        ]

    @staticmethod
    def _split(candidates: List[TaskSnapshot]):
        speculative = [snap for snap in candidates if snap.running]
        pending = [snap for snap in candidates if not snap.running]
        return speculative, pending

    def _choose_deadline(self, view: SchedulingView) -> Optional[TaskSnapshot]:
        candidates = self._admissible(deadline_candidates(view, resource_aware=True))
        if not candidates:
            # Nothing is expected to fit in the remaining time: fill the slot
            # anyway rather than idling (durations are stochastic).
            return deadline_fallback(view, self.max_copies_per_task)
        speculative, pending = self._split(candidates)
        if speculative:
            # Selection stage: highest resource saving first.
            return min(speculative, key=lambda snap: (-snap.saving, snap.task_id))
        # Default: lowest tnew within the deadline, same as GS.
        return min(pending, key=lambda snap: (snap.tnew, snap.task_id))

    def _choose_error(self, view: SchedulingView) -> Optional[TaskSnapshot]:
        candidates = self._admissible(error_candidates(view, resource_aware=True))
        if not candidates:
            return None
        speculative, pending = self._split(candidates)
        if speculative:
            return min(speculative, key=lambda snap: (-snap.saving, snap.task_id))
        # Default: highest expected duration among the earliest contributors.
        return min(pending, key=lambda snap: (-snap.tnew, snap.task_id))

    # -- index-backed selection ---------------------------------------------------
    #
    # Same minima as the list-based stages, served from the index: the
    # savings scan touches only running tasks (bounded by the allocation)
    # and the pending default is the sorted list's head (deadline) or the
    # error window's bisected tail.

    def _fast_deadline(
        self, view: SchedulingView, sched: SchedulingIndex
    ) -> Optional[TaskSnapshot]:
        remaining = view.remaining_deadline
        cap = self.max_copies_per_task
        snaps = sched.snaps
        best: Optional[TaskSnapshot] = None
        best_key = None
        for task_id in sched.running_ids:
            snap = snaps[task_id]
            if snap.copies >= cap:
                continue
            saving = snap.copies * snap.trem - (snap.copies + 1) * snap.tnew
            if saving <= 0:
                continue
            if remaining is not None and snap.tnew > remaining:
                continue
            key = (-saving, task_id)
            if best_key is None or key < best_key:
                best = snap
                best_key = key
        if best is not None:
            return best
        pending = sched.pending_sorted
        if pending:
            tnew, task_id = pending[0][:2]
            if remaining is None or tnew <= remaining:
                return snaps[task_id]
        return index_deadline_fallback(sched, cap)

    def _fast_error(
        self, view: SchedulingView, sched: SchedulingIndex
    ) -> Optional[TaskSnapshot]:
        needed = view.remaining_required_tasks
        if needed <= 0:
            needed = len(sched.snaps)
        k_p, included = index_error_window(sched, needed)
        snaps = sched.snaps
        cap = self.max_copies_per_task
        best: Optional[TaskSnapshot] = None
        best_key = None
        for task_id in included:
            snap = snaps[task_id]
            if snap.copies >= cap:
                continue
            saving = snap.copies * snap.trem - (snap.copies + 1) * snap.tnew
            if saving <= 0:
                continue
            key = (-saving, task_id)
            if best_key is None or key < best_key:
                best = snap
                best_key = key
        if best is not None:
            return best
        tail = index_pending_tail(sched, k_p)
        if tail is None:
            return None
        return snaps[tail[1]]

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        sched = view.sched
        if sched is not None:
            if view.bound.is_deadline:
                return make_decision(self._fast_deadline(view, sched))
            return make_decision(self._fast_error(view, sched))
        if view.bound.is_deadline:
            return make_decision(self._choose_deadline(view))
        return make_decision(self._choose_error(view))

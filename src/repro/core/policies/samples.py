"""The sample store GRASS learns its switching point from (§4.1, §4.2).

Every job that the perturbation coin pins to pure-GS or pure-RAS contributes
one :class:`JobSample`: its task-completion curve, together with the three
factors GRASS keys samples on — job size bucket, cluster utilisation bucket
and estimator-accuracy bucket.  GRASS later answers two kinds of questions
against the store:

* *deadline-bound*: how many tasks would policy P complete in the next
  ``t`` seconds?  (fraction of the completion curve at ``t``)
* *error-bound*: how long would policy P take to complete ``k`` more tasks?
  (inverse of the completion curve)

Queries fall back to coarser keys (dropping accuracy, then utilisation, then
size) when the exact bucket has no samples yet, so GRASS degrades gracefully
while the store warms up.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import BoundType
from repro.core.job import job_bin_label


def utilization_bucket(utilization: float) -> str:
    """Coarse cluster-utilisation bucket: low / medium / high."""
    if utilization < 1.0 / 3.0:
        return "low"
    if utilization < 2.0 / 3.0:
        return "medium"
    return "high"


def accuracy_bucket(accuracy: float) -> str:
    """Coarse estimator-accuracy bucket: poor / fair / good."""
    if accuracy < 0.70:
        return "poor"
    if accuracy < 0.85:
        return "fair"
    return "good"


@dataclass(frozen=True)
class SampleKey:
    """The key samples are bucketed under.

    Fields set to ``None`` act as wildcards; the store's fallback search
    progressively widens the key by clearing fields.
    """

    policy: str
    bound_kind: str
    size_bucket: Optional[str] = None
    utilization: Optional[str] = None
    accuracy: Optional[str] = None


@dataclass
class JobSample:
    """One pinned job's performance record.

    ``completion_times`` are the input-task completion instants relative to
    the job's start, sorted ascending.  ``total_tasks`` is the number of
    input tasks the job had (completed or not), so fractions can be computed
    even for deadline-bound jobs that stopped early.
    """

    policy: str
    bound_kind: str
    total_tasks: int
    completion_times: List[float]
    wave_width: int
    utilization: float
    estimator_accuracy: float
    observed_duration: float

    def __post_init__(self) -> None:
        if self.total_tasks <= 0:
            raise ValueError("total_tasks must be positive")
        if self.wave_width <= 0:
            raise ValueError("wave_width must be positive")
        self.completion_times = sorted(self.completion_times)

    # -- derived -------------------------------------------------------------

    @property
    def size_bucket(self) -> str:
        return job_bin_label(self.total_tasks)

    @property
    def utilization_bucket(self) -> str:
        return utilization_bucket(self.utilization)

    @property
    def accuracy_bucket(self) -> str:
        return accuracy_bucket(self.estimator_accuracy)

    @property
    def waves(self) -> float:
        return self.total_tasks / self.wave_width

    def fraction_completed_by(self, elapsed: float) -> float:
        """Fraction of the job's tasks completed within ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        count = bisect.bisect_right(self.completion_times, elapsed)
        return count / self.total_tasks

    def time_to_complete_fraction(self, fraction: float) -> Optional[float]:
        """Seconds the job took to reach ``fraction`` completion, or None.

        Returns None when the sample never reached that fraction (e.g. a
        deadline-bound sample that was cut off early), so callers can skip it.
        """
        if fraction <= 0:
            return 0.0
        needed = int(round(fraction * self.total_tasks))
        needed = max(1, needed)
        if needed > len(self.completion_times):
            return None
        return self.completion_times[needed - 1]


class SampleStore:
    """Bucketed collection of :class:`JobSample` records with fallback lookup."""

    def __init__(self, max_samples_per_key: int = 64) -> None:
        if max_samples_per_key <= 0:
            raise ValueError("max_samples_per_key must be positive")
        self.max_samples_per_key = max_samples_per_key
        self._samples: Dict[Tuple, List[JobSample]] = {}
        self._total = 0

    # -- insertion -------------------------------------------------------------

    @staticmethod
    def _full_key(sample: JobSample) -> Tuple:
        return (
            sample.policy,
            sample.bound_kind,
            sample.size_bucket,
            sample.utilization_bucket,
            sample.accuracy_bucket,
        )

    def add(self, sample: JobSample) -> None:
        """Insert a sample, evicting the oldest entry of a full bucket."""
        key = self._full_key(sample)
        bucket = self._samples.setdefault(key, [])
        bucket.append(sample)
        if len(bucket) > self.max_samples_per_key:
            bucket.pop(0)
        self._total += 1

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._samples.values())

    @property
    def total_added(self) -> int:
        return self._total

    # -- lookup -----------------------------------------------------------------

    def _matching(
        self,
        policy: str,
        bound_kind: str,
        size_bucket: Optional[str],
        utilization: Optional[str],
        accuracy: Optional[str],
    ) -> List[JobSample]:
        matches: List[JobSample] = []
        for (pol, bound, size, util, acc), bucket in self._samples.items():
            if pol != policy or bound != bound_kind:
                continue
            if size_bucket is not None and size != size_bucket:
                continue
            if utilization is not None and util != utilization:
                continue
            if accuracy is not None and acc != accuracy:
                continue
            matches.extend(bucket)
        return matches

    def samples_for(
        self,
        policy: str,
        bound_kind: str,
        size_bucket: Optional[str] = None,
        utilization: Optional[str] = None,
        accuracy: Optional[str] = None,
    ) -> List[JobSample]:
        """Samples matching the key, widening it until something matches.

        The fallback order drops the least important factor first: accuracy,
        then utilisation, then job size.
        """
        fallback_order: Sequence[Tuple] = (
            (size_bucket, utilization, accuracy),
            (size_bucket, utilization, None),
            (size_bucket, None, None),
            (None, None, None),
        )
        for size, util, acc in fallback_order:
            matches = self._matching(policy, bound_kind, size, util, acc)
            if matches:
                return matches
        return []

    # -- aggregate queries ----------------------------------------------------------

    def expected_fraction_completed(
        self,
        policy: str,
        elapsed: float,
        size_bucket: Optional[str] = None,
        utilization: Optional[str] = None,
        accuracy: Optional[str] = None,
    ) -> Optional[float]:
        """Mean fraction of tasks a ``policy`` job completes in ``elapsed`` seconds."""
        samples = self.samples_for(
            policy, BoundType.DEADLINE.value, size_bucket, utilization, accuracy
        )
        if not samples:
            return None
        fractions = [sample.fraction_completed_by(elapsed) for sample in samples]
        return sum(fractions) / len(fractions)

    def expected_time_for_fraction(
        self,
        policy: str,
        fraction: float,
        size_bucket: Optional[str] = None,
        utilization: Optional[str] = None,
        accuracy: Optional[str] = None,
    ) -> Optional[float]:
        """Mean time a ``policy`` job needs to complete ``fraction`` of its tasks."""
        samples = self.samples_for(
            policy, BoundType.ERROR.value, size_bucket, utilization, accuracy
        )
        if not samples:
            return None
        times = [sample.time_to_complete_fraction(fraction) for sample in samples]
        usable = [time for time in times if time is not None]
        if not usable:
            return None
        return sum(usable) / len(usable)

    def sample_counts(self) -> Dict[Tuple, int]:
        """Diagnostic view: how many samples each full key currently holds."""
        return {key: len(bucket) for key, bucket in self._samples.items()}

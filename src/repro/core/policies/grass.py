"""GRASS: the adaptive combination of RAS and GS (§4).

A job managed by GRASS starts under RAS (resource-aware speculation pays off
while many waves remain) and switches to GS as it approaches its
approximation bound (greedy speculation pays off in the final waves).  The
switch point is learned from samples of previous jobs; to keep generating
samples GRASS perturbs a fraction ξ of jobs, pinning them to pure GS or pure
RAS for their whole lifetime and recording their completion curves.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.core.job import Job, JobResult
from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
)
from repro.core.policies.gs import GreedySpeculative
from repro.core.policies.ras import ResourceAwareSpeculative
from repro.core.policies.samples import JobSample, SampleStore
from repro.core.policies.switching import (
    ALL_FACTORS,
    LearnedSwitchDecider,
    StrawmanSwitchDecider,
    SwitchDecider,
)
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class GrassConfig:
    """Tunables of the GRASS policy.

    ``perturbation`` is ξ from §4.2 (the paper finds 15 % empirically best).
    ``switching`` selects the learned decider or the two-wave strawman, and
    ``factors`` controls which of the three learning factors are used (the
    Best-1 / Best-2 ablations of §6.3.2 drop factors from this set).
    """

    perturbation: float = 0.15
    switching: str = "learned"
    factors: FrozenSet[str] = field(default_factory=lambda: ALL_FACTORS)
    switch_check_interval: float = 1.0
    max_copies_per_task: int = 4
    max_samples_per_key: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.perturbation <= 1.0:
            raise ValueError("perturbation must be in [0, 1]")
        if self.switching not in ("learned", "strawman"):
            raise ValueError("switching must be 'learned' or 'strawman'")
        if self.switch_check_interval <= 0:
            raise ValueError("switch_check_interval must be positive")


#: Per-job execution modes.
MODE_ADAPTIVE_RAS = "adaptive-ras"
MODE_ADAPTIVE_GS = "adaptive-gs"
MODE_PINNED_GS = "pinned-gs"
MODE_PINNED_RAS = "pinned-ras"


@dataclass
class _JobState:
    """GRASS's bookkeeping for one in-flight job."""

    mode: str
    last_switch_check: float = float("-inf")
    switch_time: Optional[float] = None
    start_utilization: float = 0.0

    @property
    def pinned(self) -> bool:
        return self.mode in (MODE_PINNED_GS, MODE_PINNED_RAS)

    @property
    def uses_gs(self) -> bool:
        return self.mode in (MODE_ADAPTIVE_GS, MODE_PINNED_GS)


class Grass(SpeculationPolicy):
    """The GRASS speculation policy (§4)."""

    name = "grass"
    learns_across_jobs = True

    def __init__(
        self,
        config: Optional[GrassConfig] = None,
        sample_store: Optional[SampleStore] = None,
    ) -> None:
        self.config = config or GrassConfig()
        # Note: an explicitly provided (possibly still empty) store must be
        # kept — ``or`` would discard an empty store because its len() is 0.
        if sample_store is not None:
            self.store = sample_store
        else:
            self.store = SampleStore(max_samples_per_key=self.config.max_samples_per_key)
        self._gs = GreedySpeculative(max_copies_per_task=self.config.max_copies_per_task)
        self._ras = ResourceAwareSpeculative(
            max_copies_per_task=self.config.max_copies_per_task
        )
        self._rng = RngStream(self.config.seed, "grass-perturbation")
        self._decider = self._build_decider()
        self._jobs: Dict[int, _JobState] = {}
        self.switches_performed = 0
        self.jobs_pinned = 0

    def _build_decider(self) -> SwitchDecider:
        if self.config.switching == "strawman":
            return StrawmanSwitchDecider()
        return LearnedSwitchDecider(store=self.store, factors=self.config.factors)

    def label(self) -> str:
        if self.config.switching == "strawman":
            return "grass-strawman"
        if self.config.factors != ALL_FACTORS:
            return f"grass-{len(self.config.factors)}factor"
        return "grass"

    # -- job lifecycle hooks -----------------------------------------------------------

    def on_job_start(self, job: Job, now: float) -> None:
        mode = MODE_ADAPTIVE_RAS
        if self.config.perturbation > 0 and self._rng.bernoulli(self.config.perturbation):
            mode = MODE_PINNED_GS if self._rng.bernoulli(0.5) else MODE_PINNED_RAS
            self.jobs_pinned += 1
        self._jobs[job.job_id] = _JobState(mode=mode)

    def on_job_finish(self, job: Job, result: JobResult, now: float) -> None:
        state = self._jobs.pop(job.job_id, None)
        if state is None or not state.pinned:
            return
        policy_name = "gs" if state.uses_gs else "ras"
        completion_times = [
            task.completion_time - job.start_time
            for task in job.input_tasks
            if task.is_completed and task.completion_time is not None
            and job.start_time is not None
        ]
        wave_width = max(1, job.allocation)
        sample = JobSample(
            policy=policy_name,
            bound_kind=job.bound.kind.value,
            total_tasks=job.spec.num_input_tasks,
            completion_times=completion_times,
            wave_width=wave_width,
            utilization=state.start_utilization,
            estimator_accuracy=result_accuracy_hint(result),
            observed_duration=result.duration,
        )
        self.store.add(sample)

    # -- scheduling --------------------------------------------------------------------

    def _maybe_switch(self, view: SchedulingView, state: _JobState) -> None:
        if state.mode != MODE_ADAPTIVE_RAS:
            return
        if view.now - state.last_switch_check < self.config.switch_check_interval:
            return
        state.last_switch_check = view.now
        if self._decider.should_switch(view):
            state.mode = MODE_ADAPTIVE_GS
            state.switch_time = view.now
            self.switches_performed += 1

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        state = self._jobs.get(view.job.job_id)
        if state is None:
            # Jobs the engine never announced (defensive): behave adaptively.
            state = _JobState(mode=MODE_ADAPTIVE_RAS)
            self._jobs[view.job.job_id] = state
        state.start_utilization = max(state.start_utilization, view.cluster_utilization)
        self._maybe_switch(view, state)
        if state.uses_gs:
            return self._gs.choose_task(view)
        return self._ras.choose_task(view)

    # -- warm-state snapshot ------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """Everything GRASS accumulated across finished jobs, as plain data.

        Captures the sample store, the perturbation coin's exact generator
        state (so the pinning sequence continues rather than restarts) and
        the diagnostic counters.  In-flight job bookkeeping is included for
        completeness but is empty when snapshotting between simulations —
        the only supported snapshot point.
        """
        return {
            "store": copy.deepcopy(self.store),
            "rng_state": self._rng.getstate(),
            "jobs": copy.deepcopy(self._jobs),
            "switches_performed": self.switches_performed,
            "jobs_pinned": self.jobs_pinned,
        }

    def restore_state(self, snapshot: Optional[dict]) -> None:
        """Adopt a snapshot from :meth:`state_snapshot` (None is a no-op).

        The decider is rebuilt so it reads the restored store rather than the
        fresh one the constructor made.
        """
        if snapshot is None:
            return
        # Deep-copy on the way in as well as out: one snapshot may warm many
        # in-process runs (workers=1), and a shared live store would let run
        # k's learning leak into run k+1 — diverging from the worker-process
        # path, where pickling isolates the copies.
        self.store = copy.deepcopy(snapshot["store"])
        self._rng.setstate(snapshot["rng_state"])
        self._jobs = copy.deepcopy(snapshot["jobs"])
        self.switches_performed = snapshot["switches_performed"]
        self.jobs_pinned = snapshot["jobs_pinned"]
        self._decider = self._build_decider()

    # -- introspection ------------------------------------------------------------------

    def mode_of(self, job_id: int) -> Optional[str]:
        """Current execution mode of a job (None once it has finished)."""
        state = self._jobs.get(job_id)
        return state.mode if state else None


def result_accuracy_hint(result: JobResult) -> float:
    """Realised estimator accuracy to attach to a finished job's sample."""
    return result.estimator_accuracy

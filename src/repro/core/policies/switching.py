"""Switch-point deciders: when should GRASS move from RAS to GS?

Two deciders are provided:

* :class:`LearnedSwitchDecider` — the paper's approach (§4.1): step through
  every point in the job's remaining work at which it could switch, estimate
  the resulting performance from the sample store, and switch now only if
  "now" is the best point.  Which of the three factors (bound, utilisation,
  estimator accuracy) are used to select samples is configurable so the
  Best-1 / Best-2 ablations of Figures 13-14 can be reproduced.
* :class:`StrawmanSwitchDecider` — the static strawman of §6.3.2: switch when
  the remaining work amounts to at most two waves of tasks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.core.job import job_bin_label
from repro.core.policies.base import SchedulingView
from repro.core.policies.samples import (
    SampleStore,
    accuracy_bucket,
    utilization_bucket,
)
from repro.utils.stats import median

#: The three switching factors of §4.1.
FACTOR_BOUND = "bound"
FACTOR_UTILIZATION = "utilization"
FACTOR_ACCURACY = "accuracy"
ALL_FACTORS: FrozenSet[str] = frozenset(
    {FACTOR_BOUND, FACTOR_UTILIZATION, FACTOR_ACCURACY}
)


class SwitchDecider(abc.ABC):
    """Decides, at a scheduling point, whether a job should switch RAS -> GS."""

    @abc.abstractmethod
    def should_switch(self, view: SchedulingView) -> bool:
        """True if the job should switch to GS now."""


def _median_task_duration(view: SchedulingView) -> float:
    """Median expected task duration of the job's unfinished tasks."""
    durations = [snap.tnew for snap in view.tasks]
    if not durations:
        return 0.0
    return median(durations)


@dataclass
class StrawmanSwitchDecider(SwitchDecider):
    """Static two-wave strawman (§6.3.2).

    Deadline-bound jobs switch when the remaining time fits at most
    ``waves_threshold`` waves of median-duration tasks; error-bound jobs when
    the tasks still required fit in at most ``waves_threshold`` waves of the
    current wave width.
    """

    waves_threshold: float = 2.0

    def should_switch(self, view: SchedulingView) -> bool:
        if view.bound.is_deadline:
            remaining = view.remaining_deadline
            if remaining is None:
                return False
            median_duration = _median_task_duration(view)
            if median_duration <= 0:
                return True
            return remaining <= self.waves_threshold * median_duration
        needed = view.remaining_required_tasks
        if needed <= 0:
            return True
        wave_width = max(1, view.wave_width)
        return needed <= self.waves_threshold * wave_width


@dataclass
class LearnedSwitchDecider(SwitchDecider):
    """Learning-based switch-point estimation (§4.1).

    The decider evaluates every candidate switch delay on a grid over the
    job's remaining work.  For a deadline-bound job with ``d`` seconds left,
    switching after ``s`` seconds is scored as the expected fraction of tasks
    a pure-RAS job completes in ``s`` seconds plus the fraction a pure-GS job
    completes in ``d - s`` seconds.  For an error-bound job needing ``k``
    more tasks, switching after ``j`` tasks is scored as the expected time a
    pure-RAS job takes for ``j`` tasks plus the time a pure-GS job takes for
    ``k - j`` tasks.  The job switches only when "switch immediately" is the
    best-scoring point.  When the store cannot answer (cold start) we fall
    back to the strawman so behaviour stays sensible.
    """

    store: SampleStore
    factors: FrozenSet[str] = field(default_factory=lambda: ALL_FACTORS)
    grid_points: int = 12
    fallback: StrawmanSwitchDecider = field(default_factory=StrawmanSwitchDecider)

    def __post_init__(self) -> None:
        if self.grid_points < 2:
            raise ValueError("grid_points must be at least 2")
        unknown = set(self.factors) - set(ALL_FACTORS)
        if unknown:
            raise ValueError(f"unknown switching factors: {sorted(unknown)}")

    # -- bucket selection ----------------------------------------------------------

    def _buckets(self, view: SchedulingView):
        size = job_bin_label(view.job.spec.num_input_tasks)
        util = (
            utilization_bucket(view.cluster_utilization)
            if FACTOR_UTILIZATION in self.factors
            else None
        )
        acc = (
            accuracy_bucket(view.estimator_accuracy)
            if FACTOR_ACCURACY in self.factors
            else None
        )
        return size, util, acc

    # -- deadline-bound ---------------------------------------------------------------

    def _deadline_switch(self, view: SchedulingView) -> Optional[bool]:
        remaining = view.remaining_deadline
        if remaining is None:
            return None
        if remaining <= 0:
            return True
        size, util, acc = self._buckets(view)
        step = remaining / self.grid_points
        best_value = None
        best_delay = None
        for index in range(self.grid_points + 1):
            delay = index * step
            ras_fraction = self.store.expected_fraction_completed(
                "ras", delay, size, util, acc
            )
            gs_fraction = self.store.expected_fraction_completed(
                "gs", remaining - delay, size, util, acc
            )
            if ras_fraction is None or gs_fraction is None:
                return None
            value = ras_fraction + gs_fraction
            if best_value is None or value > best_value + 1e-12:
                best_value = value
                best_delay = delay
        if best_delay is None:
            return None
        return best_delay <= step * 0.5

    # -- error-bound -----------------------------------------------------------------

    def _error_switch(self, view: SchedulingView) -> Optional[bool]:
        needed = view.remaining_required_tasks
        if needed <= 0:
            return True
        total = max(1, view.job.spec.num_input_tasks)
        size, util, acc = self._buckets(view)
        points = min(self.grid_points, needed)
        best_cost = None
        best_tasks_under_ras = None
        for index in range(points + 1):
            tasks_under_ras = round(index * needed / points)
            ras_time = self.store.expected_time_for_fraction(
                "ras", tasks_under_ras / total, size, util, acc
            )
            gs_time = self.store.expected_time_for_fraction(
                "gs", (needed - tasks_under_ras) / total, size, util, acc
            )
            if ras_time is None or gs_time is None:
                return None
            cost = ras_time + gs_time
            if best_cost is None or cost < best_cost - 1e-12:
                best_cost = cost
                best_tasks_under_ras = tasks_under_ras
        if best_tasks_under_ras is None:
            return None
        return best_tasks_under_ras <= max(1, needed // points) // 2

    # -- public API -------------------------------------------------------------------

    def should_switch(self, view: SchedulingView) -> bool:
        if view.bound.is_deadline:
            decision = self._deadline_switch(view)
        else:
            decision = self._error_switch(view)
        if decision is None:
            return self.fallback.should_switch(view)
        return decision

"""Speculation policies: the paper's primary contribution.

* :mod:`repro.core.policies.base` — the policy interface and the scheduling
  view (estimated ``trem`` / ``tnew`` / resource savings per task).
* :mod:`repro.core.policies.gs` — Greedy Speculative scheduling (Pseudocode 1
  and 2 with ``OC = 0``).
* :mod:`repro.core.policies.ras` — Resource Aware Speculative scheduling
  (``OC = 1``).
* :mod:`repro.core.policies.samples` — the sample store GRASS learns from.
* :mod:`repro.core.policies.switching` — switch-point evaluation (learned and
  the two-wave strawman of §6.3.2).
* :mod:`repro.core.policies.grass` — GRASS itself (§4).
"""

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
)
from repro.core.policies.gs import GreedySpeculative
from repro.core.policies.grass import Grass, GrassConfig
from repro.core.policies.ras import ResourceAwareSpeculative
from repro.core.policies.samples import JobSample, SampleStore
from repro.core.policies.switching import (
    LearnedSwitchDecider,
    StrawmanSwitchDecider,
    SwitchDecider,
)

__all__ = [
    "SchedulingDecision",
    "SchedulingView",
    "SpeculationPolicy",
    "TaskSnapshot",
    "GreedySpeculative",
    "ResourceAwareSpeculative",
    "Grass",
    "GrassConfig",
    "JobSample",
    "SampleStore",
    "SwitchDecider",
    "LearnedSwitchDecider",
    "StrawmanSwitchDecider",
]

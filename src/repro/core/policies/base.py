"""Policy interface shared by GS, RAS, GRASS and the baseline schedulers.

The simulator asks the job's policy for a decision each time the job has a
free slot.  The policy only sees a :class:`SchedulingView`: estimated
``trem`` / ``tnew`` per unfinished task of the current phase, the remaining
approximation bound, the job's wave width, cluster utilisation and the
realised estimator accuracy.  It never sees true durations — only the oracle
baseline is given those, via a separate view builder.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.core.bounds import ApproximationBound
from repro.core.job import Job, JobResult
from repro.core.task import Task


@dataclass
class TaskSnapshot:
    """A policy-facing view of one unfinished task.

    ``saving`` is RAS's resource-savings criterion from Pseudocode 1:
    ``c * trem - (c + 1) * tnew`` where ``c`` is the number of running
    copies.  For a pending task (``c == 0``) speculation is meaningless and
    ``saving`` is defined as 0 so pending tasks act as the neutral default.
    """

    task: Task
    running: bool
    copies: int
    trem: float
    tnew: float

    def __post_init__(self) -> None:
        if self.tnew <= 0:
            raise ValueError("tnew must be positive")
        if self.running and self.trem <= 0:
            self.trem = 1e-6

    @property
    def task_id(self) -> int:
        return self.task.task_id

    @property
    def saving(self) -> float:
        """Resource savings of launching one more copy (0 for pending tasks)."""
        if not self.running:
            return 0.0
        return self.copies * self.trem - (self.copies + 1) * self.tnew

    @property
    def effective_duration(self) -> float:
        """min(trem, tnew): the soonest this task could plausibly finish."""
        if not self.running:
            return self.tnew
        return min(self.trem, self.tnew)

    @property
    def speculation_beneficial(self) -> bool:
        """GS's speculation test: a new copy is expected to beat the running one."""
        return self.running and self.tnew < self.trem


@dataclass
class SchedulingView:
    """Everything a policy may look at when choosing the next task to launch."""

    now: float
    job: Job
    tasks: List[TaskSnapshot]
    bound: ApproximationBound
    remaining_deadline: Optional[float]
    remaining_required_tasks: int
    wave_width: int
    cluster_utilization: float
    estimator_accuracy: float
    phase_index: int = 0
    is_input_phase: bool = True

    def pending(self) -> List[TaskSnapshot]:
        return [snap for snap in self.tasks if not snap.running]

    def running(self) -> List[TaskSnapshot]:
        return [snap for snap in self.tasks if snap.running]

    def elapsed(self) -> float:
        return self.job.elapsed(self.now)


@dataclass
class SchedulingDecision:
    """The policy's answer: launch a copy of ``snapshot.task``.

    ``speculative`` is True when the task already has a running copy, i.e.
    the launch is a speculative duplicate rather than an original.
    """

    snapshot: TaskSnapshot

    @property
    def task(self) -> Task:
        return self.snapshot.task

    @property
    def speculative(self) -> bool:
        return self.snapshot.running


class SpeculationPolicy(abc.ABC):
    """Base class for all speculation policies.

    A policy instance is shared across the jobs of one simulation so it can
    carry state between jobs (GRASS's sample store does exactly that); the
    per-job hooks tell it when jobs start and finish.

    Policies that *learn* across jobs set ``learns_across_jobs`` and implement
    the :meth:`state_snapshot` / :meth:`restore_state` pair, which is what
    lets the experiment harness warm a policy once and ship the warmed state
    to worker processes instead of re-simulating the warm-up workload inside
    every run (see ``repro.experiments.warmup``).
    """

    name: str = "policy"

    #: True for policies whose decisions depend on state accumulated from
    #: previously finished jobs.  Stateless policies never need a warm-up
    #: pass: a warm-up simulation shares nothing with the real one except the
    #: policy object, so skipping it cannot change their results.
    learns_across_jobs: bool = False

    def on_job_start(self, job: Job, now: float) -> None:
        """Called when a job is admitted; default is stateless."""

    def on_job_finish(self, job: Job, result: JobResult, now: float) -> None:
        """Called when a job finishes (bound met or deadline hit)."""

    def state_snapshot(self) -> Optional[object]:
        """Picklable snapshot of the cross-job state, or None if stateless.

        The contract: ``restore_state(state_snapshot())`` on a *fresh*
        instance built with the same configuration must yield a policy that
        makes exactly the decisions this instance would make from now on.
        """
        return None

    def restore_state(self, snapshot: Optional[object]) -> None:
        """Restore a snapshot captured by :meth:`state_snapshot`.

        ``None`` (a stateless policy's snapshot) is accepted as a no-op so
        callers can round-trip any policy uniformly; anything else on a
        stateless policy is a usage error.

        Implementations must treat ``snapshot`` as **shared read-only
        data** and deep-copy anything mutable they adopt from it: the
        experiment harness restores many policy instances from one snapshot
        object when running in-process (``workers=1``), and an aliased store
        would leak one run's learning into the next — diverging from the
        worker-process path, where pickling isolates the copies.
        """
        if snapshot is not None:
            raise ValueError(
                f"policy {self.name!r} is stateless and cannot restore {type(snapshot).__name__}"
            )

    @abc.abstractmethod
    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        """Pick the next task copy to launch, or None to leave the slot idle."""

    def label(self) -> str:
        """Label used in experiment reports."""
        return self.name


def make_decision(snapshot: Optional[TaskSnapshot]) -> Optional[SchedulingDecision]:
    """Helper: wrap a snapshot (or None) into a decision."""
    if snapshot is None:
        return None
    return SchedulingDecision(snapshot=snapshot)


def deadline_candidates(
    view: SchedulingView, resource_aware: bool
) -> List[TaskSnapshot]:
    """Pruning stage of Pseudocode 1 (deadline-bound jobs).

    Tasks whose fresh copy cannot finish within the remaining deadline are
    dropped.  Running tasks are kept only when speculation passes the
    policy's test: ``tnew < trem`` for GS, positive resource savings for RAS.
    Pending tasks are always kept (they do not involve speculation).
    """
    remaining = view.remaining_deadline
    candidates: List[TaskSnapshot] = []
    for snap in view.tasks:
        if remaining is not None and snap.tnew > remaining:
            continue
        if snap.running:
            if resource_aware:
                if snap.saving > 0:
                    candidates.append(snap)
            else:
                if snap.speculation_beneficial:
                    candidates.append(snap)
        else:
            candidates.append(snap)
    return candidates


def deadline_fallback(
    view: SchedulingView, max_copies_per_task: int = 4
) -> Optional[TaskSnapshot]:
    """Last-resort choice when every task is pruned by the deadline filter.

    The pruning stage drops tasks whose *expected* fresh-copy duration
    exceeds the remaining deadline, but durations are stochastic: leaving the
    slot idle guarantees zero completions from it, whereas launching the
    shortest pending task still has a chance of beating the deadline.  Both
    GS and RAS therefore fall back to the pending task with the lowest
    ``tnew`` (and, failing that, to a beneficial duplicate) rather than
    idling — the slot has nothing better to do.
    """
    pending = view.pending()
    if pending:
        return min(pending, key=lambda snap: (snap.tnew, snap.task_id))
    beneficial = [
        snap
        for snap in view.running()
        if snap.speculation_beneficial and snap.copies < max_copies_per_task
    ]
    if beneficial:
        return min(beneficial, key=lambda snap: (snap.tnew, snap.task_id))
    return None


def error_candidates(
    view: SchedulingView, resource_aware: bool
) -> List[TaskSnapshot]:
    """Pruning stage of Pseudocode 2 (error-bound jobs).

    Only the tasks that are the earliest to contribute to the error bound are
    considered: tasks are sorted by effective duration (min of ``trem`` and
    ``tnew``) and the first ``(1 - error) * count`` are kept, counting tasks
    that already completed towards the requirement.
    """
    needed = view.remaining_required_tasks
    if needed <= 0:
        # The input-phase bound is met (or this is an intermediate phase where
        # every remaining task is required): all unfinished tasks qualify.
        needed = len(view.tasks)
    ordered = sorted(view.tasks, key=lambda snap: (snap.effective_duration, snap.task_id))
    earliest = ordered[:needed]
    candidates: List[TaskSnapshot] = []
    for snap in earliest:
        if snap.running:
            if resource_aware:
                if snap.saving > 0:
                    candidates.append(snap)
            else:
                if snap.speculation_beneficial:
                    candidates.append(snap)
        else:
            candidates.append(snap)
    return candidates

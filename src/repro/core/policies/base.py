"""Policy interface shared by GS, RAS, GRASS and the baseline schedulers.

The simulator asks the job's policy for a decision each time the job has a
free slot.  The policy only sees a :class:`SchedulingView`: estimated
``trem`` / ``tnew`` per unfinished task of the current phase, the remaining
approximation bound, the job's wave width, cluster utilisation and the
realised estimator accuracy.  It never sees true durations — only the oracle
baseline is given those, via a separate view builder.
"""

from __future__ import annotations

import abc
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import ApproximationBound
from repro.core.estimators import TaskEstimator
from repro.core.job import Job, JobResult
from repro.core.task import Task


class TaskSnapshot:
    """A policy-facing view of one unfinished task.

    ``saving`` is RAS's resource-savings criterion from Pseudocode 1:
    ``c * trem - (c + 1) * tnew`` where ``c`` is the number of running
    copies.  For a pending task (``c == 0``) speculation is meaningless and
    ``saving`` is defined as 0 so pending tasks act as the neutral default.

    A ``__slots__`` class rather than a dataclass: the engine's scheduling
    index (:class:`SchedulingIndex`) keeps one snapshot per unfinished task
    alive across scheduling rounds and mutates it in place, so construction
    and attribute access sit on the simulator's hottest path.  The two
    private fields are index bookkeeping: ``_actual`` is the true remaining
    time recorded alongside ``trem`` and ``_acc`` is the accuracy sample the
    estimator folded into its tracker for that record — a replayed
    scheduling round re-folds the cached sample instead of recomputing the
    estimate.
    """

    __slots__ = ("task", "running", "copies", "trem", "tnew", "_actual", "_acc")

    def __init__(
        self, task: Task, running: bool, copies: int, trem: float, tnew: float
    ) -> None:
        if tnew <= 0:
            raise ValueError("tnew must be positive")
        if running and trem <= 0:
            trem = 1e-6
        self.task = task
        self.running = running
        self.copies = copies
        self.trem = trem
        self.tnew = tnew
        self._actual = 0.0
        self._acc = 0.0

    def __repr__(self) -> str:
        return (
            f"TaskSnapshot(task_id={self.task.task_id}, running={self.running}, "
            f"copies={self.copies}, trem={self.trem}, tnew={self.tnew})"
        )

    @property
    def task_id(self) -> int:
        return self.task.task_id

    @property
    def saving(self) -> float:
        """Resource savings of launching one more copy (0 for pending tasks)."""
        if not self.running:
            return 0.0
        return self.copies * self.trem - (self.copies + 1) * self.tnew

    @property
    def effective_duration(self) -> float:
        """min(trem, tnew): the soonest this task could plausibly finish."""
        if not self.running:
            return self.tnew
        return min(self.trem, self.tnew)

    @property
    def speculation_beneficial(self) -> bool:
        """GS's speculation test: a new copy is expected to beat the running one."""
        return self.running and self.tnew < self.trem


class SchedulingIndex:
    """Incrementally maintained scheduling state for one job.

    The engine keeps one index per running job and calls :meth:`prepare`
    before every ``choose_task`` round.  The index holds a live
    :class:`TaskSnapshot` per unfinished task of the current phase plus two
    flat selection structures — the pending tasks sorted by
    ``(tnew, task_id)`` and the running task ids sorted ascending — which is
    what lets GS/RAS pick a task in O(running + log pending) instead of
    rescanning and re-sorting every snapshot per launched copy.

    Exactness contract: the unbatched engine rebuilt every snapshot on every
    scheduling round, and each rebuild had side effects — noise draws keyed
    by ``(task_id, copies, progress bucket)`` and one
    ``record_trem_outcome`` per running task.  Draws and records only ever
    happen at *running* tasks (pending estimates are pure arithmetic on the
    epoch factor), and the unbatched walk visited tasks in ascending id
    order, so any walk that touches the running tasks in ascending id order
    with the same per-task inputs reproduces the side-effect stream
    byte-for-byte.  ``prepare`` distinguishes four cases:

    * *rebuild* — the phase changed (or this is the first round): walk
      ``schedulable_tasks`` in id order exactly like the unbatched code
      (the epoch's shared ``tnew`` factor is fetched first, which performs
      the same draw the first per-task ``tnew`` call used to).
    * *re-estimate* — the estimator's sample epoch or noise generation
      changed: re-estimate the running tasks in id order, then recompute the
      pending ``tnew`` values from the new epoch factor.  The pending set
      itself is maintained incrementally by the launch/finish hooks, so no
      full task walk is needed; the new keys are produced in old sorted
      order — a monotone-ish transform of an already sorted list — which
      keeps the resort nearly free.
    * *retime* — only the clock moved: pending snapshots are bit-identical
      (``tnew`` is epoch-keyed), so only running tasks are re-estimated, in
      id order.
    * *replay* — same instant, same epoch: a cache hit.  Unchanged running
      tasks re-fold their cached accuracy sample — the exact value the
      tracker's ``record`` computed from the cached ``(trem, actual)`` pair
      — and only tasks that launched a copy since the last walk (the
      ``dirty`` set) are re-estimated for real.
    * a noise-cache eviction (``estimator.noise_generation``) at any point
      poisons the cache: values drawn before the eviction can no longer be
      reproduced, so the next ``prepare`` falls back to a re-estimate, and
      a mid-replay eviction forces the rest of that walk to re-estimate.
    """

    __slots__ = (
        "job",
        "estimator",
        "phase",
        "now",
        "epoch",
        "gen",
        "dirty",
        "snaps",
        "pending_sorted",
        "running_ids",
        "view",
        "p_rate",
        "p_noise",
        "p_stale",
        "choice_void",
    )

    def __init__(self, job: Job, estimator: TaskEstimator) -> None:
        self.job = job
        self.estimator = estimator
        self.phase = -1
        self.now = -1.0
        self.epoch = -1
        self.gen = -1
        self.dirty: set = set()
        self.snaps: Dict[int, TaskSnapshot] = {}
        # The one SchedulingView handed to policies for this job, mutated in
        # place per scheduling round (no policy retains a view across calls).
        self.view: Optional["SchedulingView"] = None
        # Pending entries are ``(tnew, task_id, work)``: the trailing work
        # lets the per-epoch re-estimate recompute every entry without a
        # snapshot lookup, and it never participates in comparisons because
        # ``(tnew, task_id)`` is already unique.
        self.pending_sorted: List[Tuple[float, int, float]] = []
        self.running_ids: List[int] = []
        # The epoch factor behind the current pending keys (``tnew = clamp(
        # (p_rate * work) * p_noise)``).  ``p_stale`` marks pending *snapshots*
        # whose ``tnew``/``trem`` fields lag the sorted list: the per-epoch
        # re-estimate refreshes only the list (what the fast selection paths
        # read) and defers the snapshot writes to :meth:`materialize`, the one
        # consumer that reads pending snapshot fields.
        self.p_rate = 0.0
        self.p_noise = 1.0
        self.p_stale = False
        # True while the last ``choose_task`` on this exact index state
        # returned None.  A *stateless* policy (see
        # ``SpeculationPolicy.stateless_choose``) is a pure function of that
        # state, so the engine can skip the repeat ask — performing only the
        # replay fold the walk is contractually required to emit — until the
        # state mutates again.
        self.choice_void = False

    def prepare(self, now: float) -> bool:
        """Bring the index up to date for a scheduling round at ``now``.

        Returns False when the job has no schedulable tasks.
        """
        job = self.job
        phase = job.current_phase()
        if phase >= job.spec.dag_length:
            return False
        estimator = self.estimator
        if phase != self.phase:
            self._rebuild(now, phase)
        elif (
            estimator.completed_samples != self.epoch
            or estimator.noise_generation != self.gen
        ):
            self._reestimate(now)
        elif now != self.now:
            self._retime(now)
        else:
            self._replay()
        return True

    def _rebuild(self, now: float, phase: int) -> None:
        estimator = self.estimator
        tasks = self.job.schedulable_tasks(now)
        # The epoch factor is fetched before the walk: its noise draw sits
        # exactly where the unbatched walk's first ``tnew`` query drew.
        samples, _, rate, noise = estimator.tnew_epoch_factor()
        # Generation is captured after the factor fetch: any eviction during
        # the walk below leaves it behind the live counter, so the next
        # ``prepare`` re-estimates instead of replaying half-poisoned values.
        gen = estimator.noise_generation
        snapshot_running = estimator.snapshot_running
        snaps: Dict[int, TaskSnapshot] = {}
        pending: List[Tuple[float, int]] = []
        running_ids: List[int] = []
        for task in tasks:
            task_id = task.task_id
            if task.is_running:
                tnew, trem, actual, acc = snapshot_running(task, now)
                snap = TaskSnapshot(task, True, task.running_copy_count, trem, tnew)
                snap._actual = actual
                snap._acc = acc
                running_ids.append(task_id)
            else:
                work = task.spec.work
                tnew = max(1e-6, (rate * work) * noise)
                snap = TaskSnapshot(task, False, 0, tnew, tnew)
                pending.append((tnew, task_id, work))
            snaps[task_id] = snap
        pending.sort()
        self.phase = phase
        self.now = now
        self.epoch = samples
        self.gen = gen
        self.snaps = snaps
        self.pending_sorted = pending
        self.running_ids = running_ids
        self.p_rate = rate
        self.p_noise = noise
        self.p_stale = False
        self.choice_void = False
        self.dirty.clear()

    def _reestimate(self, now: float) -> None:
        # The sample epoch (or noise generation) moved: every estimate is
        # stale, but the *membership* of the pending/running structures is
        # maintained by the launch/finish hooks and stays valid.  The
        # unbatched walk interleaved pending and running tasks in id order;
        # since pending estimates make no draws and no records, re-running
        # the running tasks in id order first and the pending arithmetic
        # second emits the identical side-effect stream.
        snaps = self.snaps
        samples, gen, rate, noise = self.estimator.update_running_snaps(
            snaps, self.running_ids, now
        )
        # New pending keys are produced in old key order: the transform
        # ``work -> (rate * work) * noise`` is monotone, so the list comes
        # out nearly sorted and timsort's run detection makes the sort
        # ~linear (float rounding can still create fresh ties whose id
        # tie-break lands out of order, hence the sort stays).  Pending
        # *snapshots* are left stale on purpose: the fast selection paths
        # read only the sorted list, and ``materialize`` refreshes the
        # snapshot fields on demand for the policies that do read them.
        pending = [
            ((tnew if (tnew := (rate * work) * noise) >= 1e-6 else 1e-6), task_id, work)
            for _, task_id, work in self.pending_sorted
        ]
        pending.sort()
        self.now = now
        self.epoch = samples
        self.gen = gen
        self.pending_sorted = pending
        self.p_rate = rate
        self.p_noise = noise
        self.p_stale = True
        self.choice_void = False
        self.dirty.clear()

    def _retime(self, now: float) -> None:
        # Pending snapshots are untouched: within one sample epoch their
        # ``tnew`` (and hence ``trem``) cannot change, so re-estimating them
        # would produce bit-identical values with no draws or records.  The
        # batch walk's epoch-factor fetch is a pure cache hit here.
        self.estimator.update_running_snaps(self.snaps, self.running_ids, now)
        self.now = now
        self.choice_void = False
        self.dirty.clear()

    def _replay(self) -> None:
        estimator = self.estimator
        snaps = self.snaps
        dirty = self.dirty
        tracker_mean = estimator.trem_tracker._accuracy
        if not dirty:
            # Pure cache hit — the common case.  Fold each running task's
            # cached accuracy sample straight into the tracker's running
            # mean: identical floats fold identically, and the tracker's
            # ``record`` would compute exactly this sample from the cached
            # ``(trem, actual)`` pair.
            count = tracker_mean.count
            value = tracker_mean.value
            for task_id in self.running_ids:
                count += 1
                value += (snaps[task_id]._acc - value) / count
            tracker_mean.count = count
            tracker_mean.value = value
            return
        gen = self.gen
        now = self.now
        snapshot_running = estimator.snapshot_running
        forced = False
        for task_id in self.running_ids:
            snap = snaps[task_id]
            if forced or task_id in dirty:
                # The task launched a copy since the last walk (or a noise
                # eviction earlier in this walk poisoned the cache):
                # re-estimate for real, with the same draws the unbatched
                # walk would perform here.
                task = snap.task
                tnew, trem, actual, acc = snapshot_running(task, now)
                snap.running = True
                snap.copies = task.running_copy_count
                snap.trem = trem
                snap.tnew = tnew
                snap._actual = actual
                snap._acc = acc
                if estimator.noise_generation != gen:
                    forced = True
            else:
                acc = snap._acc
                count = tracker_mean.count + 1
                tracker_mean.count = count
                tracker_mean.value += (acc - tracker_mean.value) / count
        dirty.clear()

    def on_copy_launched(self, task: Task) -> None:
        """Maintain the selection structures after a copy launch."""
        task_id = task.task_id
        snap = self.snaps.get(task_id)
        if snap is None:
            return
        self.dirty.add(task_id)
        self.choice_void = False
        if not snap.running:
            # The list key is recomputed from the stored epoch factor (the
            # snapshot's ``tnew`` may be stale while ``p_stale`` is set).
            tnew = (self.p_rate * task.spec.work) * self.p_noise
            if tnew < 1e-6:
                tnew = 1e-6
            index = bisect_left(self.pending_sorted, (tnew, task_id))
            del self.pending_sorted[index]
            insort(self.running_ids, task_id)

    def on_task_finished(self, task: Task) -> None:
        """Drop a completed task from the selection structures.

        Tolerates unknown ids: a straggler copy of an earlier phase can
        finish while the index already tracks the next phase.
        """
        task_id = task.task_id
        snap = self.snaps.pop(task_id, None)
        if snap is None:
            return
        self.choice_void = False
        if snap.running or task_id in self.dirty:
            ids = self.running_ids
            index = bisect_left(ids, task_id)
            if index < len(ids) and ids[index] == task_id:
                del ids[index]
            self.dirty.discard(task_id)
        else:
            pending = self.pending_sorted
            tnew = (self.p_rate * task.spec.work) * self.p_noise
            if tnew < 1e-6:
                tnew = 1e-6
            index = bisect_left(pending, (tnew, task_id))
            if index < len(pending):
                entry = pending[index]
                if entry[0] == tnew and entry[1] == task_id:
                    del pending[index]

    def materialize(self) -> List[TaskSnapshot]:
        """The snapshot list in walk (task id) order, for generic policies."""
        snaps = self.snaps
        if self.p_stale:
            # Flush the deferred per-epoch pending values into the snapshots
            # (the sorted list is authoritative; see ``_reestimate``).
            for tnew, task_id, _ in self.pending_sorted:
                snap = snaps[task_id]
                snap.tnew = tnew
                snap.trem = tnew
            self.p_stale = False
        return [snaps[task.task_id] for task in self.job.schedulable_tasks(self.now)]


class SchedulingView:
    """Everything a policy may look at when choosing the next task to launch.

    ``tasks`` is materialised lazily when the view was built from a
    :class:`SchedulingIndex` (``sched``): GS/RAS/GRASS pick straight from
    the index's flat structures and never touch the snapshot list, while
    baseline policies and the switch deciders still see the exact list the
    eager builder produced.
    """

    __slots__ = (
        "now",
        "job",
        "_tasks",
        "bound",
        "remaining_deadline",
        "remaining_required_tasks",
        "wave_width",
        "cluster_utilization",
        "estimator_accuracy",
        "phase_index",
        "is_input_phase",
        "sched",
    )

    def __init__(
        self,
        now: float,
        job: Job,
        tasks: Optional[List[TaskSnapshot]],
        bound: ApproximationBound,
        remaining_deadline: Optional[float],
        remaining_required_tasks: int,
        wave_width: int,
        cluster_utilization: float,
        estimator_accuracy: float,
        phase_index: int = 0,
        is_input_phase: bool = True,
        sched: Optional[SchedulingIndex] = None,
    ) -> None:
        self.now = now
        self.job = job
        self._tasks = tasks
        self.bound = bound
        self.remaining_deadline = remaining_deadline
        self.remaining_required_tasks = remaining_required_tasks
        self.wave_width = wave_width
        self.cluster_utilization = cluster_utilization
        self.estimator_accuracy = estimator_accuracy
        self.phase_index = phase_index
        self.is_input_phase = is_input_phase
        self.sched = sched

    @property
    def tasks(self) -> List[TaskSnapshot]:
        tasks = self._tasks
        if tasks is None:
            tasks = self._tasks = self.sched.materialize()
        return tasks

    def pending(self) -> List[TaskSnapshot]:
        return [snap for snap in self.tasks if not snap.running]

    def running(self) -> List[TaskSnapshot]:
        return [snap for snap in self.tasks if snap.running]

    def elapsed(self) -> float:
        return self.job.elapsed(self.now)


@dataclass
class SchedulingDecision:
    """The policy's answer: launch a copy of ``snapshot.task``.

    ``speculative`` is True when the task already has a running copy, i.e.
    the launch is a speculative duplicate rather than an original.
    """

    snapshot: TaskSnapshot

    @property
    def task(self) -> Task:
        return self.snapshot.task

    @property
    def speculative(self) -> bool:
        return self.snapshot.running


class SpeculationPolicy(abc.ABC):
    """Base class for all speculation policies.

    A policy instance is shared across the jobs of one simulation so it can
    carry state between jobs (GRASS's sample store does exactly that); the
    per-job hooks tell it when jobs start and finish.

    Policies that *learn* across jobs set ``learns_across_jobs`` and implement
    the :meth:`state_snapshot` / :meth:`restore_state` pair, which is what
    lets the experiment harness warm a policy once and ship the warmed state
    to worker processes instead of re-simulating the warm-up workload inside
    every run (see ``repro.experiments.warmup``).
    """

    name: str = "policy"

    #: True for policies whose decisions depend on state accumulated from
    #: previously finished jobs.  Stateless policies never need a warm-up
    #: pass: a warm-up simulation shares nothing with the real one except the
    #: policy object, so skipping it cannot change their results.
    learns_across_jobs: bool = False

    #: True when ``choose_task`` is a pure function of the scheduling index
    #: state and the bound/deadline/required view fields — no policy-side
    #: mutation, no dependence on cluster utilisation or accuracy.  The
    #: engine then caches a None decision for the current index state
    #: (``SchedulingIndex.choice_void``) and skips the repeat ask, emitting
    #: only the replay fold the estimation walk is required to produce.
    #: GRASS must stay False: its ``choose_task`` updates per-job switching
    #: state from the view's utilisation on every call.
    stateless_choose: bool = False

    def on_job_start(self, job: Job, now: float) -> None:
        """Called when a job is admitted; default is stateless."""

    def on_job_finish(self, job: Job, result: JobResult, now: float) -> None:
        """Called when a job finishes (bound met or deadline hit)."""

    def state_snapshot(self) -> Optional[object]:
        """Picklable snapshot of the cross-job state, or None if stateless.

        The contract: ``restore_state(state_snapshot())`` on a *fresh*
        instance built with the same configuration must yield a policy that
        makes exactly the decisions this instance would make from now on.
        """
        return None

    def restore_state(self, snapshot: Optional[object]) -> None:
        """Restore a snapshot captured by :meth:`state_snapshot`.

        ``None`` (a stateless policy's snapshot) is accepted as a no-op so
        callers can round-trip any policy uniformly; anything else on a
        stateless policy is a usage error.

        Implementations must treat ``snapshot`` as **shared read-only
        data** and deep-copy anything mutable they adopt from it: the
        experiment harness restores many policy instances from one snapshot
        object when running in-process (``workers=1``), and an aliased store
        would leak one run's learning into the next — diverging from the
        worker-process path, where pickling isolates the copies.
        """
        if snapshot is not None:
            raise ValueError(
                f"policy {self.name!r} is stateless and cannot restore {type(snapshot).__name__}"
            )

    @abc.abstractmethod
    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        """Pick the next task copy to launch, or None to leave the slot idle."""

    def label(self) -> str:
        """Label used in experiment reports."""
        return self.name


def make_decision(snapshot: Optional[TaskSnapshot]) -> Optional[SchedulingDecision]:
    """Helper: wrap a snapshot (or None) into a decision."""
    if snapshot is None:
        return None
    return SchedulingDecision(snapshot=snapshot)


def deadline_candidates(
    view: SchedulingView, resource_aware: bool
) -> List[TaskSnapshot]:
    """Pruning stage of Pseudocode 1 (deadline-bound jobs).

    Tasks whose fresh copy cannot finish within the remaining deadline are
    dropped.  Running tasks are kept only when speculation passes the
    policy's test: ``tnew < trem`` for GS, positive resource savings for RAS.
    Pending tasks are always kept (they do not involve speculation).
    """
    remaining = view.remaining_deadline
    candidates: List[TaskSnapshot] = []
    for snap in view.tasks:
        if remaining is not None and snap.tnew > remaining:
            continue
        if snap.running:
            if resource_aware:
                if snap.saving > 0:
                    candidates.append(snap)
            else:
                if snap.speculation_beneficial:
                    candidates.append(snap)
        else:
            candidates.append(snap)
    return candidates


def deadline_fallback(
    view: SchedulingView, max_copies_per_task: int = 4
) -> Optional[TaskSnapshot]:
    """Last-resort choice when every task is pruned by the deadline filter.

    The pruning stage drops tasks whose *expected* fresh-copy duration
    exceeds the remaining deadline, but durations are stochastic: leaving the
    slot idle guarantees zero completions from it, whereas launching the
    shortest pending task still has a chance of beating the deadline.  Both
    GS and RAS therefore fall back to the pending task with the lowest
    ``tnew`` (and, failing that, to a beneficial duplicate) rather than
    idling — the slot has nothing better to do.
    """
    pending = view.pending()
    if pending:
        return min(pending, key=lambda snap: (snap.tnew, snap.task_id))
    beneficial = [
        snap
        for snap in view.running()
        if snap.speculation_beneficial and snap.copies < max_copies_per_task
    ]
    if beneficial:
        return min(beneficial, key=lambda snap: (snap.tnew, snap.task_id))
    return None


def error_candidates(
    view: SchedulingView, resource_aware: bool
) -> List[TaskSnapshot]:
    """Pruning stage of Pseudocode 2 (error-bound jobs).

    Only the tasks that are the earliest to contribute to the error bound are
    considered: tasks are sorted by effective duration (min of ``trem`` and
    ``tnew``) and the first ``(1 - error) * count`` are kept, counting tasks
    that already completed towards the requirement.
    """
    needed = view.remaining_required_tasks
    if needed <= 0:
        # The input-phase bound is met (or this is an intermediate phase where
        # every remaining task is required): all unfinished tasks qualify.
        needed = len(view.tasks)
    ordered = sorted(view.tasks, key=lambda snap: (snap.effective_duration, snap.task_id))
    earliest = ordered[:needed]
    candidates: List[TaskSnapshot] = []
    for snap in earliest:
        if snap.running:
            if resource_aware:
                if snap.saving > 0:
                    candidates.append(snap)
            else:
                if snap.speculation_beneficial:
                    candidates.append(snap)
        else:
            candidates.append(snap)
    return candidates


def index_error_window(
    sched: SchedulingIndex, needed: int
) -> Tuple[int, List[int]]:
    """The earliest-``needed`` window of :func:`error_candidates`, from the index.

    Returns ``(k_p, included_running_ids)``: how many pending tasks fall in
    the window (always its ``k_p`` cheapest, i.e. a prefix of
    ``pending_sorted``) and which running tasks do.  A running task with
    effective-duration key ``k`` has merged rank ``#pending keys < k`` (one
    bisect) plus ``#running keys < k``; ranks are strictly increasing along
    the sorted running keys, so the scan stops at the first exclusion.
    """
    pending = sched.pending_sorted
    snaps = sched.snaps
    keys: List[Tuple[float, int]] = []
    append = keys.append
    for task_id in sched.running_ids:
        snap = snaps[task_id]
        trem = snap.trem
        tnew = snap.tnew
        append((tnew if tnew < trem else trem, task_id))
    keys.sort()
    included: List[int] = []
    # Keys ascend, so each bisect can resume from the previous result.
    lo = 0
    offset = 0
    for key in keys:
        lo = bisect_left(pending, key, lo)
        if lo + offset < needed:
            included.append(key[1])
            offset += 1
        else:
            break
    k_p = needed - offset
    if k_p > len(pending):
        k_p = len(pending)
    return k_p, included


def index_pending_tail(
    sched: SchedulingIndex, k_p: int
) -> Optional[Tuple[float, int, float]]:
    """Longest pending task in the error window, ties broken to lowest id.

    The window's pending part is ``pending_sorted[:k_p]`` (ascending
    ``(tnew, task_id)``), so the maximal ``tnew`` is at index ``k_p - 1``
    and the lowest id among equal-``tnew`` entries is the first entry of
    that run — found by bisecting for the bare ``(tnew,)`` prefix, which
    compares below every ``(tnew, id)`` tuple.
    """
    if k_p <= 0:
        return None
    pending = sched.pending_sorted
    longest = pending[k_p - 1][0]
    return pending[bisect_left(pending, (longest,))]


def index_deadline_fallback(
    sched: SchedulingIndex, max_copies_per_task: int
) -> Optional[TaskSnapshot]:
    """:func:`deadline_fallback`, served from the index structures."""
    pending = sched.pending_sorted
    snaps = sched.snaps
    if pending:
        return snaps[pending[0][1]]
    best: Optional[TaskSnapshot] = None
    best_key: Optional[Tuple[float, int]] = None
    for task_id in sched.running_ids:
        snap = snaps[task_id]
        if snap.copies >= max_copies_per_task or not snap.tnew < snap.trem:
            continue
        key = (snap.tnew, task_id)
        if best_key is None or key < best_key:
            best = snap
            best_key = key
    return best

"""Greedy Speculative (GS) scheduling — Pseudocode 1 & 2 with ``OC = 0``.

GS greedily picks the task (original or speculative copy) that improves the
approximation goal the earliest *right now*:

* Deadline-bound jobs: Shortest Job First over the pruned candidates — the
  task with the smallest ``tnew`` that still fits within the deadline.
* Error-bound jobs: Longest Job First over the earliest-contributing tasks —
  the task with the largest ``trem``, so that the straggler holding back the
  error bound gets a fresh copy.

Speculative copies are admitted whenever the new copy is expected to beat the
running one (``tnew < trem``); the opportunity cost of burning a slot on the
duplicate is ignored, which is exactly what RAS fixes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingIndex,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
    deadline_candidates,
    deadline_fallback,
    error_candidates,
    index_deadline_fallback,
    index_error_window,
    index_pending_tail,
    make_decision,
)


class GreedySpeculative(SpeculationPolicy):
    """The GS policy of §3.1."""

    name = "gs"
    stateless_choose = True

    def __init__(self, max_copies_per_task: int = 4) -> None:
        if max_copies_per_task < 1:
            raise ValueError("max_copies_per_task must be at least 1")
        self.max_copies_per_task = max_copies_per_task

    # -- selection ----------------------------------------------------------------

    def _admissible(self, candidates: List[TaskSnapshot]) -> List[TaskSnapshot]:
        """Drop running tasks that already hit the per-task copy cap."""
        return [
            snap
            for snap in candidates
            if not snap.running or snap.copies < self.max_copies_per_task
        ]

    def _choose_deadline(self, view: SchedulingView) -> Optional[TaskSnapshot]:
        candidates = self._admissible(deadline_candidates(view, resource_aware=False))
        if not candidates:
            # Nothing is expected to fit in the remaining time: fill the slot
            # anyway rather than idling (durations are stochastic).
            return deadline_fallback(view, self.max_copies_per_task)
        # Selection stage: lowest tnew first.  Ties favour originals over
        # speculative duplicates (a duplicate can never beat an equally fast
        # original), then break deterministically on task id.
        return min(candidates, key=lambda snap: (snap.tnew, snap.running, snap.task_id))

    def _choose_error(self, view: SchedulingView) -> Optional[TaskSnapshot]:
        candidates = self._admissible(error_candidates(view, resource_aware=False))
        if not candidates:
            return None
        # Selection stage: highest trem first (pending tasks use tnew as trem);
        # ties favour originals over speculative duplicates.
        def sort_key(snap: TaskSnapshot):
            remaining = snap.trem if snap.running else snap.tnew
            return (-remaining, snap.running, snap.task_id)

        return min(candidates, key=sort_key)

    # -- index-backed selection ---------------------------------------------------
    #
    # The fast paths below compute the same minima as the list-based stages
    # above without materialising or sorting snapshots: pending tasks come
    # pre-sorted by ``(tnew, task_id)`` in the index, so the pending minimum
    # (or the error window's pending maximum) is a list head (or a bisect),
    # and only the running tasks — bounded by the job's allocation — are
    # scanned.  Tie-breaking keys are identical to the legacy stages.

    def _fast_deadline(
        self, view: SchedulingView, sched: SchedulingIndex
    ) -> Optional[TaskSnapshot]:
        remaining = view.remaining_deadline
        cap = self.max_copies_per_task
        snaps = sched.snaps
        pending = sched.pending_sorted
        best: Optional[TaskSnapshot] = None
        best_key = None
        if pending:
            tnew, task_id = pending[0][:2]
            if remaining is None or tnew <= remaining:
                best = snaps[task_id]
                best_key = (tnew, False, task_id)
        for task_id in sched.running_ids:
            snap = snaps[task_id]
            tnew = snap.tnew
            if snap.copies >= cap or not tnew < snap.trem:
                continue
            if remaining is not None and tnew > remaining:
                continue
            key = (tnew, True, task_id)
            if best_key is None or key < best_key:
                best = snap
                best_key = key
        if best is not None:
            return best
        return index_deadline_fallback(sched, cap)

    def _fast_error(
        self, view: SchedulingView, sched: SchedulingIndex
    ) -> Optional[TaskSnapshot]:
        needed = view.remaining_required_tasks
        if needed <= 0:
            needed = len(sched.snaps)
        k_p, included = index_error_window(sched, needed)
        snaps = sched.snaps
        best: Optional[TaskSnapshot] = None
        best_key = None
        tail = index_pending_tail(sched, k_p)
        if tail is not None:
            tnew, task_id = tail[:2]
            best = snaps[task_id]
            best_key = (-tnew, False, task_id)
        cap = self.max_copies_per_task
        for task_id in included:
            snap = snaps[task_id]
            if snap.copies >= cap or not snap.tnew < snap.trem:
                continue
            key = (-snap.trem, True, task_id)
            if best_key is None or key < best_key:
                best = snap
                best_key = key
        return best

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        sched = view.sched
        if sched is not None:
            if view.bound.is_deadline:
                return make_decision(self._fast_deadline(view, sched))
            return make_decision(self._fast_error(view, sched))
        if view.bound.is_deadline:
            return make_decision(self._choose_deadline(view))
        return make_decision(self._choose_error(view))

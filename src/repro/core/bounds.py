"""Approximation bounds: deadline-bound and error-bound jobs (§2.1).

A deadline-bound job maximises the fraction of (input) tasks completed by a
wall-clock deadline.  An error-bound job minimises the time taken to complete
``(1 - error)`` of its (input) tasks.  An error bound of zero is an exact job
that must complete every task — the paper treats exact computation as the
special case ``error == 0`` and so do we.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional


class BoundType(Enum):
    """Which approximation dimension a job is bounded on."""

    DEADLINE = "deadline"
    ERROR = "error"


@dataclass(frozen=True)
class ApproximationBound:
    """An approximation bound attached to a job.

    Exactly one of ``deadline`` (seconds, relative to the job's start) or
    ``error`` (fraction of input tasks that may be left incomplete) is set
    depending on ``kind``.
    """

    kind: BoundType
    deadline: Optional[float] = None
    error: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind is BoundType.DEADLINE:
            if self.deadline is None or self.deadline <= 0:
                raise ValueError("deadline-bound jobs need a positive deadline")
            if self.error is not None:
                raise ValueError("deadline-bound jobs must not set an error")
        elif self.kind is BoundType.ERROR:
            if self.error is None or not 0.0 <= self.error < 1.0:
                raise ValueError("error bound must lie in [0, 1)")
            if self.deadline is not None:
                raise ValueError("error-bound jobs must not set a deadline")
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown bound type {self.kind}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def with_deadline(cls, deadline: float) -> "ApproximationBound":
        """A job that must stop at ``deadline`` seconds after it starts."""
        return cls(kind=BoundType.DEADLINE, deadline=deadline)

    @classmethod
    def with_error(cls, error: float) -> "ApproximationBound":
        """A job that finishes once ``(1 - error)`` of its input tasks are done."""
        return cls(kind=BoundType.ERROR, error=error)

    @classmethod
    def exact(cls) -> "ApproximationBound":
        """An exact job: every task must complete (error bound of zero)."""
        return cls(kind=BoundType.ERROR, error=0.0)

    # -- helpers --------------------------------------------------------------

    @property
    def is_deadline(self) -> bool:
        return self.kind is BoundType.DEADLINE

    @property
    def is_error(self) -> bool:
        return self.kind is BoundType.ERROR

    @property
    def is_exact(self) -> bool:
        # repro: allow[DET004] exact zero-error sentinel, set literally and never computed
        return self.kind is BoundType.ERROR and self.error == 0.0

    def required_tasks(self, total_tasks: int) -> int:
        """Number of input tasks an error-bound job must complete.

        For deadline-bound jobs the notion does not apply and the total is
        returned (the job simply completes as many as it can).
        """
        if total_tasks < 0:
            raise ValueError("total_tasks must be non-negative")
        if self.is_deadline:
            return total_tasks
        assert self.error is not None
        return int(math.ceil((1.0 - self.error) * total_tasks))

    def describe(self) -> str:
        """Human-readable description used in logs and experiment reports."""
        if self.is_deadline:
            return f"deadline={self.deadline:.2f}s"
        if self.is_exact:
            return "exact (error=0)"
        assert self.error is not None
        return f"error={self.error * 100.0:.1f}%"

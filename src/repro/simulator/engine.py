"""The discrete-event simulation engine.

The engine drives a set of jobs (from the workload generator) through a
cluster under one speculation policy.  It owns:

* the event loop (job arrivals, copy completions, deadlines),
* slot accounting and fair-share allocation across concurrent jobs,
* the per-job ``trem`` / ``tnew`` estimators and their accuracy tracking,
* materialising the policy-facing :class:`SchedulingView`,
* job termination semantics for deadline-bound, error-bound and exact jobs.

It deliberately knows nothing about *which* policy it is running; GS, RAS,
GRASS, LATE, Mantri and the oracle all plug into the same
:class:`~repro.core.policies.base.SpeculationPolicy` interface.

Performance
-----------

The event loop is engineered so that processing one event costs O(affected
state), never O(cluster) or O(workload):

* job specs, jobs and task copies are reached through ``dict`` indexes
  (``job_id -> JobSpec``, ``copy_id -> TaskCopy``) instead of linear scans;
* jobs maintain per-phase pending/completed counters and running-copy totals
  incrementally (see :class:`~repro.core.task.TaskObserver`), so scheduling
  queries never rescan every task;
* fair-share allocations are recomputed only when a *dirty flag* says the
  running-job set or some job's schedulable counts actually changed;
* ``COPY_FINISH`` events of killed copies and ``JOB_DEADLINE`` events of
  early-finishing jobs are cancelled via :meth:`EventQueue.cancel` rather
  than popped and discarded, keeping the heap small and the simulated
  timeline free of dead wake-ups.

On top of the asymptotics, the hot path is flattened for single-core
constant factors — under the invariant that every optimisation leaves the
metrics digests *byte-identical* (same RNG draw order, same float operation
order; ``scripts/check.sh replay-determinism`` and the digest-pinned tests
enforce this):

* events travel as packed ``(time, priority, seq, ...)`` tuples on a plain
  heap, and all events sharing a timestamp are drained as one cohort per
  loop iteration (:meth:`EventQueue.pop_at_or_before`);
* the cluster keeps flat columns over machines (a ``speed_column`` array, a
  cached ``median_speed``) and a busy-count-bucketed free-list, so
  ``pick_machine`` reads the least-loaded candidate set off a bucket
  instead of rescanning all machines per launch;
* each job carries an incremental :class:`SchedulingIndex` — task snapshots
  plus a ``(tnew, task_id)``-sorted pending list — that is *replayed*
  against estimator feedback instead of rebuilt per scheduling round;
  re-estimates refresh the sorted list lazily and defer snapshot writes
  until a policy actually materialises the view;
* policies whose choice is a pure function of the index state declare
  ``stateless_choose``, letting the engine skip the re-ask after a ``None``
  decision when nothing it reads has changed (the mandated estimator folds
  still run);
* the straggler model reseeds one scratch generator per copy through the
  C-level ``seed`` with a pre-encoded digest prefix, instead of spawning a
  fresh RNG stream per multiplier.

Measured by ``benchmarks/bench_engine_hotpath.py`` at ``default`` scale,
the flattening took the seed engine from 943 (gs) / 1,096 (grass)
events/second to 6,419 / 5,651 on the same box — roughly 6.8x and 5.2x
(about 5.3x / 4.0x after calibration-normalising for machine speed; the
original 10x target proved out of reach in pure CPython once every remaining
cost — Mersenne-Twister reseeds, estimator folds, per-epoch re-sorts — was
shown to be mandated by digest equivalence).  ``BENCH_engine.json`` tracks
the numbers and ``scripts/check.sh bench-gate`` holds both quick- and
default-scale throughput to a 30% regression budget.

Memory
------

Resident state is O(max *concurrent* jobs), never O(workload) — the only
per-job residues are plain ints (the duplicate-id check's id set) and the
metrics' per-job results, never specs, tasks or estimators:

* ``job_specs`` may be a lazy ``Iterable[JobSpec]`` (any non-``Sequence``
  iterable, e.g. a generator) sorted by ``(arrival_time, job_id)``.  The
  engine holds a one-spec lookahead and injects each ``JOB_ARRIVAL`` only
  when the previous arrival has been handled, so specs materialise one at a
  time, interleaved correctly with in-flight copy-finish/deadline events.
  A ``Sequence`` is sorted and validated up front exactly as before — the
  two ingestion paths produce byte-identical event streams (same RNG spawn
  order, same ``(arrival_time, job_id)`` tie-breaking), which
  ``tests/test_stream_specs.py`` locks in with a pickled-metrics property
  test.
* ``_finish_job`` evicts the job's ``Job``, ``TaskEstimator`` and spec the
  moment its :class:`~repro.core.job.JobResult` is recorded (outstanding
  event handles were already cancelled), so finished jobs never accumulate.
  ``peak_resident_jobs`` reports the high-water mark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.estimators import EstimatorConfig, TaskEstimator
from repro.core.job import Job, JobSpec, JobState
from repro.core.policies.base import (
    SchedulingIndex,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
)
from repro.core.task import Task, TaskCopy
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import ResultSink, RetainAllSink
from repro.simulator.stragglers import StragglerConfig, StragglerModel
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation besides the jobs and the policy."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    stragglers: StragglerConfig = field(default_factory=StragglerConfig)
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    seed: int = 0
    background_utilization: float = 0.0
    max_simulated_time: float = 10_000_000.0
    oracle_estimates: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_utilization < 1.0:
            raise ValueError("background_utilization must be in [0, 1)")
        if self.max_simulated_time <= 0:
            raise ValueError("max_simulated_time must be positive")


class Simulation:
    """Runs a workload under one speculation policy and collects metrics."""

    def __init__(
        self,
        config: SimulationConfig,
        policy: SpeculationPolicy,
        job_specs: Union[Sequence[JobSpec], Iterable[JobSpec]],
        sink: Optional[ResultSink] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.cluster = Cluster(config.cluster)
        self.stragglers = StragglerModel(config.stragglers, seed=config.seed)
        # Where per-job results go: retained (default), folded into streaming
        # aggregates, or spilled to disk — see ``repro.simulator.sinks``.
        # With a non-retaining sink the collector holds zero JobResults, so
        # a streaming replay's memory is independent of trace length.
        self.metrics = MetricsCollector(sink=sink if sink is not None else RetainAllSink())
        self._events = EventQueue()
        self._now = 0.0
        self._rng = RngStream(config.seed, "engine")
        if isinstance(job_specs, Sequence):
            # Materialised path: sort and validate up front, as always.
            ordered = sorted(
                job_specs, key=lambda spec: (spec.arrival_time, spec.job_id)
            )
            if len({spec.job_id for spec in ordered}) != len(ordered):
                raise ValueError("job ids must be unique within a workload")
            self._spec_stream: Iterator[JobSpec] = iter(ordered)
            self._seen_job_ids: Optional[set] = None  # validated above
        else:
            # Lazy path: specs materialise one at a time; ordering and id
            # uniqueness are enforced as they are consumed by
            # ``_push_next_arrival``.  The dedup set holds job *ids* only
            # (ints, never specs) — the same bounded bookkeeping
            # ``traces.iter_trace`` keeps, and no more than the results list
            # already grows.
            self._spec_stream = iter(job_specs)
            self._seen_job_ids = set()
        self._next_spec: Optional[JobSpec] = next(self._spec_stream, None)
        if self._next_spec is None:
            raise ValueError("a simulation needs at least one job")
        self._last_arrival_key: Optional[Tuple[float, int]] = None
        # Specs whose arrival event is scheduled but has not fired yet (at
        # most one at a time); evicted again the moment the job finishes.
        self._spec_by_id: Dict[int, JobSpec] = {}
        self._jobs: Dict[int, Job] = {}
        self._estimators: Dict[int, TaskEstimator] = {}
        # Per-job incremental scheduling indexes (estimator mode only): live
        # snapshots plus sorted selection structures, kept consistent with
        # the estimators' noise caches — see ``SchedulingIndex``.
        self._sched_index: Dict[int, SchedulingIndex] = {}
        # Insertion-ordered job-id set (dict keys): O(1) removal on job
        # finish with the same deterministic iteration order the old list
        # gave the fair-share and dispatch loops.
        self._running_job_ids: Dict[int, None] = {}
        self._copy_counter = 0
        self.peak_resident_jobs = 0
        self._total_slots = self.cluster.total_slots
        self._reserved_slots = int(
            round(config.background_utilization * self._total_slots)
        )
        # Outstanding event handles, used to cancel events that can no longer
        # matter (killed copies, jobs that finished before their deadline).
        self._deadline_events: Dict[int, Event] = {}
        self._copy_finish_events: Dict[int, Event] = {}
        # Fair-share allocations are recomputed lazily: any mutation that can
        # change a job's demand (or the running-job set) raises this flag.
        self._alloc_dirty = True
        # Stateless-choice policies (GS/RAS) let the dispatch loop cache a
        # None decision per index state instead of re-asking; see
        # ``SpeculationPolicy.stateless_choose``.  Oracle runs bypass the
        # scheduling index entirely, so the cache never applies there.
        self._stateless_choice = (
            bool(getattr(policy, "stateless_choose", False))
            and not config.oracle_estimates
        )
        self.events_processed = 0

    # ------------------------------------------------------------------ lifecycle

    @property
    def now(self) -> float:
        return self._now

    def run(self) -> MetricsCollector:
        """Execute the simulation to completion and return the metrics."""
        self._push_next_arrival()
        truncated = False
        while True:
            event = self._events.pop()
            if event is None:
                break
            if event.time > self.config.max_simulated_time:
                truncated = True
                break
            self._now = max(self._now, event.time)
            self._process_event(event)
            # Apply every other event scheduled for the same instant before
            # making new scheduling decisions, so simultaneous completions
            # free their slots together (and deadlines see them as finished).
            # ``pop_at_or_before`` drains the cohort in one heap inspection
            # per event instead of a peek/pop pair.
            while True:
                cohort_event = self._events.pop_at_or_before(self._now)
                if cohort_event is None:
                    break
                self._process_event(cohort_event)
            self._recompute_allocations()
            self._dispatch()
        if truncated:
            self.metrics.truncated_jobs = self._count_truncated_jobs()
        # Force-finish anything still running (jobs in flight when the clock
        # ran out, or — the safety net — workloads a policy refused to
        # schedule); their partial results are still recorded.
        for job_id in list(self._running_job_ids):
            self._finish_job(self._jobs[job_id])
        self.metrics.simulated_time = self._now
        self.metrics.peak_resident_jobs = self.peak_resident_jobs
        self.metrics.events_processed = self.events_processed
        # Let the sink finalise (a spill sink flushes and closes its file);
        # results recorded after this point would be a bug, not a feature.
        self.metrics.sink.finish()
        return self.metrics

    def _count_truncated_jobs(self) -> int:
        """Jobs cut off by ``max_simulated_time``: in flight or never arrived.

        In-flight jobs are force-finished with partial results; jobs whose
        arrivals lie beyond the horizon produce no result at all.  Counting
        the latter drains the spec stream (O(trace) time, O(1) memory) —
        acceptable on the truncation path, which is the exceptional exit.
        The count is identical for the lazy and materialised ingestion paths.
        """
        never_arrived = len(self._spec_by_id) - len(self._jobs)
        if self._next_spec is not None:
            never_arrived += 1
        never_arrived += sum(1 for _ in self._spec_stream)
        return len(self._running_job_ids) + never_arrived

    # ------------------------------------------------------------------ event handlers

    def _process_event(self, event) -> None:
        """Apply one event's state changes (no scheduling decisions here)."""
        self.events_processed += 1
        if event.kind is EventKind.JOB_ARRIVAL:
            self._handle_arrival(event.payload["job_id"])
        elif event.kind is EventKind.COPY_FINISH:
            self._handle_copy_finish(
                event.payload["job_id"],
                event.payload["task_id"],
                event.payload["copy_id"],
            )
        elif event.kind is EventKind.JOB_DEADLINE:
            self._handle_deadline(event.payload["job_id"])

    def _push_next_arrival(self) -> None:
        """Schedule the lookahead spec's arrival and advance the lookahead.

        Exactly one not-yet-arrived spec has an event in the queue at any
        time.  Because specs are consumed in ``(arrival_time, job_id)`` order
        — sorted up front for sequences, enforced here for lazy iterables —
        the pop order of the queue is byte-identical to the old
        push-everything-up-front scheme: arrival/arrival ties are injected in
        key order, and arrival ties against other kinds are resolved by the
        kind priority, never by push order.
        """
        spec = self._next_spec
        if spec is None:
            return
        key = (spec.arrival_time, spec.job_id)
        if self._last_arrival_key is not None and key <= self._last_arrival_key:
            raise ValueError(
                "lazy job specs must be sorted by (arrival_time, job_id) with "
                f"unique ids (job {spec.job_id} at t={spec.arrival_time} after "
                f"key {self._last_arrival_key})"
            )
        if self._seen_job_ids is not None:
            if spec.job_id in self._seen_job_ids:
                raise ValueError("job ids must be unique within a workload")
            self._seen_job_ids.add(spec.job_id)
        self._last_arrival_key = key
        self._spec_by_id[spec.job_id] = spec
        self._events.push(spec.arrival_time, EventKind.JOB_ARRIVAL, job_id=spec.job_id)
        self._next_spec = next(self._spec_stream, None)

    def _handle_arrival(self, job_id: int) -> None:
        spec = self._spec_by_id[job_id]
        job = Job(spec)
        job.start(self._now)
        self._jobs[job_id] = job
        if len(self._jobs) > self.peak_resident_jobs:
            self.peak_resident_jobs = len(self._jobs)
        self._estimators[job_id] = TaskEstimator(
            self.config.estimator, self._rng.spawn(f"estimator/{job_id}")
        )
        self._running_job_ids[job_id] = None
        self._alloc_dirty = True
        self._recompute_allocations()
        self._set_input_deadline(job)
        if spec.bound.is_deadline:
            assert spec.bound.deadline is not None
            effective = job.input_deadline
            if effective is None:
                effective = spec.bound.deadline
            self._deadline_events[job_id] = self._events.push(
                self._now + effective, EventKind.JOB_DEADLINE, job_id=job_id
            )
        self.policy.on_job_start(job, self._now)
        # This arrival is done; stage the next one (same or later instant, so
        # the same-instant drain in ``run`` still sees it before dispatching).
        self._push_next_arrival()

    def _handle_copy_finish(self, job_id: int, task_id: int, copy_id: int) -> None:
        job = self._jobs[job_id]
        # Killed copies and finished jobs cancel their outstanding events, so
        # a fired COPY_FINISH always refers to a live copy of a running job.
        assert job.is_running, "COPY_FINISH fired for a finished job"
        task = job.tasks[task_id]
        copy = task.copy_by_id(copy_id)
        assert copy is not None and copy.is_running(), (
            "COPY_FINISH fired for a killed copy (its event should have been "
            "cancelled)"
        )
        self._copy_finish_events.pop(copy_id, None)
        estimator = self._estimators[job_id]
        killed = task.complete(self._now, copy)
        index = self._sched_index.get(job_id)
        if index is not None:
            index.on_task_finished(task)
        self._release_copy(job, copy)
        for victim in killed:
            self._cancel_copy_event(victim.copy_id)
            self._release_copy(job, victim)
            self.metrics.record_wasted_work(victim.end_time - victim.start_time)
        self._alloc_dirty = True
        actual_duration = copy.end_time - copy.start_time
        estimator.observe_completion(task, actual_duration)
        if job.all_required_work_done():
            self._finish_job(job)

    def _handle_deadline(self, job_id: int) -> None:
        self._deadline_events.pop(job_id, None)
        job = self._jobs.get(job_id)
        if job is None or not job.is_running:
            return
        self._finish_job(job)

    def _cancel_copy_event(self, copy_id: int) -> None:
        """Drop the pending COPY_FINISH event of a killed copy, if any."""
        event = self._copy_finish_events.pop(copy_id, None)
        if event is not None:
            self._events.cancel(event)

    # ------------------------------------------------------------------ job management

    def _set_input_deadline(self, job: Job) -> None:
        """Apportion a deadline-bound job's deadline to its input phase (§5.2).

        The time the intermediate phases will need is estimated from their
        task counts, the job's allocation and the median intermediate task
        work, and subtracted from the overall deadline.  The remainder is the
        input-phase deadline the policies see.  Only the input phase is then
        simulated for deadline-bound jobs; the accuracy metric depends only
        on input tasks (§5.2).
        """
        if not job.bound.is_deadline:
            return
        assert job.bound.deadline is not None
        intermediate_estimate = 0.0
        allocation = max(1, job.allocation)
        for phase in job.spec.intermediate_phases:
            # ``median_work`` is cached on the spec: re-sorting the phase's
            # works on every deadline-bound arrival was pure waste.
            waves = math.ceil(phase.task_count / allocation)
            intermediate_estimate += waves * phase.median_work
        job.input_deadline = max(
            1e-3, job.bound.deadline - intermediate_estimate
        )

    def _finish_job(self, job: Job) -> None:
        deadline_event = self._deadline_events.pop(job.job_id, None)
        if deadline_event is not None:
            self._events.cancel(deadline_event)
        killed = job.abandon_incomplete_tasks(self._now)
        for victim in killed:
            self._cancel_copy_event(victim.copy_id)
            self._release_copy(job, victim)
            self.metrics.record_wasted_work(victim.end_time - victim.start_time)
        job.finish(self._now)
        self._running_job_ids.pop(job.job_id, None)
        self._alloc_dirty = True
        # Evict the finished job's state the moment its result is recorded:
        # without this, resident jobs/estimators/specs grow with trace length
        # even though only the results are ever read again.  Every pending
        # event handle was cancelled above, so nothing can reach the job.
        estimator = self._estimators.pop(job.job_id)
        self._sched_index.pop(job.job_id, None)
        self._jobs.pop(job.job_id, None)
        self._spec_by_id.pop(job.job_id, None)
        result = job.to_result(
            policy_label=self.policy.label(),
            estimator_accuracy=estimator.combined_accuracy,
        )
        self.metrics.add_result(result)
        self.policy.on_job_finish(job, result, self._now)

    def _recompute_allocations(self) -> None:
        if not self._alloc_dirty:
            return
        self._alloc_dirty = False
        if not self._running_job_ids:
            return
        jobs = self._jobs
        # Effective limits are computed inline (demand capped by max_slots)
        # and handed straight to the fair-share core, skipping the public
        # wrapper's intermediate demand/cap dicts.
        limits: Dict[int, int] = {}
        for job_id in self._running_job_ids:
            job = jobs[job_id]
            # ``schedulable_counts`` inlined: pending tasks plus one extra
            # speculative copy per running task is the job's demand.
            phase = job.current_phase()
            if phase >= job.spec.dag_length:
                demand = 1
            else:
                pending = job._pending_by_phase[phase]
                running = len(job._unfinished_by_phase[phase]) - pending
                demand = pending + 2 * running
                if demand < 1:
                    demand = 1
            cap = job.spec.max_slots
            limits[job_id] = demand if cap is None else min(cap, demand)
        allocations = self.cluster.fair_share_limits(
            limits, capacity=self._total_slots - self._reserved_slots
        )
        for job_id, allocation in allocations.items():
            jobs[job_id].allocation = allocation

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self) -> None:
        """Give every running job a chance to fill its allocation."""
        # Nothing below mutates the running-job set (jobs finish in event
        # handlers, never mid-dispatch), so the id dict is iterated directly;
        # slot capacity is likewise loop-invariant.  ``busy + reserved >=
        # total`` subsumes the old ``has_free_slot`` check since reserved
        # slots cannot be negative.
        cluster = self.cluster
        jobs = self._jobs
        choose_task = self.policy.choose_task
        total = self._total_slots
        reserved = self._reserved_slots
        stateless = self._stateless_choice
        sched_index = self._sched_index
        estimators = self._estimators
        now = self._now
        progress = True
        while progress:
            progress = False
            for job_id in self._running_job_ids:
                job = jobs[job_id]
                if job.state != JobState.RUNNING:
                    continue
                if job._running_copy_total >= job.allocation:
                    continue
                if cluster._busy_count + reserved >= total:
                    return
                if stateless:
                    # A stateless policy that said None for this exact index
                    # state will say None again: skip the re-ask, but emit
                    # the accuracy-tracker fold the replayed walk owes.
                    index = sched_index.get(job_id)
                    if (
                        index is not None
                        and index.choice_void
                        and not index.dirty
                        and index.now == now
                    ):
                        estimator = estimators[job_id]
                        if (
                            index.epoch == estimator.completed_samples
                            and index.gen == estimator.noise_generation
                        ):
                            index._replay()
                            continue
                view = self._build_view(job)
                if view is None:
                    continue
                decision = choose_task(view)
                if decision is None:
                    if stateless:
                        index = sched_index.get(job_id)
                        if index is not None:
                            index.choice_void = True
                    continue
                self._launch_copy(job, decision.task, speculative=decision.speculative)
                progress = True
        self.metrics.record_utilization(self._effective_utilization())

    def _effective_utilization(self) -> float:
        total = self.cluster.total_slots
        if total == 0:
            return 0.0
        return min(1.0, (self.cluster.busy_slots + self._reserved_slots) / total)

    def _build_view(self, job: Job) -> Optional[SchedulingView]:
        if self.config.oracle_estimates:
            return self._build_view_oracle(job)
        job_id = job.spec.job_id
        estimator = self._estimators[job_id]
        index = self._sched_index.get(job_id)
        if index is None:
            index = SchedulingIndex(job, estimator)
            self._sched_index[job_id] = index
        # ``prepare`` performs (or replays) the per-task estimation walk the
        # eager builder used to do, including its accuracy-tracker feedback,
        # so the view fields below read post-walk estimator state exactly as
        # before.
        if not index.prepare(self._now):
            return None
        phase_index = index.phase
        is_input = phase_index == 0
        if is_input:
            remaining_deadline = job.remaining_deadline(self._now)
            remaining_required = job.remaining_required_tasks()
        else:
            remaining_deadline = None
            # Schedulable tasks are unfinished by construction, so the old
            # ``sum(1 for task if not task.is_finished)`` is just the count.
            remaining_required = len(index.snaps)
        # ``_effective_utilization`` and ``combined_accuracy``, inlined (same
        # float expressions, minus the property/descriptor hops).
        utilization = (self.cluster._busy_count + self._reserved_slots) / self._total_slots
        if utilization > 1.0:
            utilization = 1.0
        trem_mean = estimator.trem_tracker._accuracy
        tnew_mean = estimator.tnew_tracker._accuracy
        accuracy = 0.5 * (
            (trem_mean.value if trem_mean.count else 1.0)
            + (tnew_mean.value if tnew_mean.count else 1.0)
        )
        allocation = job.allocation
        view = index.view
        if view is None:
            view = index.view = SchedulingView(
                now=self._now,
                job=job,
                tasks=None,
                bound=job.bound,
                remaining_deadline=remaining_deadline,
                remaining_required_tasks=remaining_required,
                wave_width=allocation if allocation > 1 else 1,
                cluster_utilization=utilization,
                estimator_accuracy=accuracy,
                phase_index=phase_index,
                is_input_phase=is_input,
                sched=index,
            )
        else:
            # One view per index, mutated per round: no policy retains views
            # across ``choose_task`` calls, and the lazy snapshot-list cache
            # is reset so ``view.tasks`` re-materialises from the live index.
            view.now = self._now
            view._tasks = None
            view.remaining_deadline = remaining_deadline
            view.remaining_required_tasks = remaining_required
            view.wave_width = allocation if allocation > 1 else 1
            view.cluster_utilization = utilization
            view.estimator_accuracy = accuracy
            view.phase_index = phase_index
            view.is_input_phase = is_input
        return view

    def _build_view_oracle(self, job: Job) -> Optional[SchedulingView]:
        """Eager view builder for oracle-estimate runs (no scheduling index)."""
        estimator = self._estimators[job.job_id]
        tasks = job.schedulable_tasks(self._now)
        if not tasks:
            return None
        phase_index = tasks[0].phase_index
        snapshots: List[TaskSnapshot] = []
        for task in tasks:
            snapshot = self._snapshot_task(job, task, estimator)
            snapshots.append(snapshot)
        is_input = phase_index == 0
        remaining_deadline = job.remaining_deadline(self._now) if is_input else None
        if is_input:
            remaining_required = job.remaining_required_tasks()
        else:
            remaining_required = sum(1 for task in tasks if not task.is_finished)
        return SchedulingView(
            now=self._now,
            job=job,
            tasks=snapshots,
            bound=job.bound,
            remaining_deadline=remaining_deadline,
            remaining_required_tasks=remaining_required,
            wave_width=max(1, job.allocation),
            cluster_utilization=self._effective_utilization(),
            estimator_accuracy=estimator.combined_accuracy,
            phase_index=phase_index,
            is_input_phase=is_input,
        )

    def _snapshot_task(
        self, job: Job, task: Task, estimator: TaskEstimator
    ) -> TaskSnapshot:
        running = task.is_running
        if self.config.oracle_estimates:
            tnew = self._oracle_tnew(job, task)
            trem = task.true_remaining(self._now) if running else tnew
        else:
            tnew = estimator.tnew(task)
            trem = estimator.trem(task, self._now) if running else tnew
            if running:
                # Feed realised accuracy back into the tracker (§5.1): compare
                # the estimate against the true remaining time of the best copy.
                estimator.record_trem_outcome(trem, max(1e-6, task.true_remaining(self._now)))
        return TaskSnapshot(
            task=task,
            running=running,
            copies=task.running_copy_count,
            trem=trem,
            tnew=tnew,
        )

    def _oracle_tnew(self, job: Job, task: Task) -> float:
        """True duration the *next* copy of ``task`` would have (oracle mode)."""
        copy_index = task.total_copies_launched
        # The oracle cannot know which machine the copy will land on, so it
        # uses the median machine speed — cached at Cluster construction; the
        # straggler multiplier (the part that matters) is exact.
        return self.stragglers.copy_duration(
            task.work, self.cluster.median_speed, job.job_id, task.task_id, copy_index
        )

    # ------------------------------------------------------------------ copy management

    def _launch_copy(self, job: Job, task: Task, speculative: bool) -> None:
        machine = self.cluster.pick_machine()
        if machine is None:
            return
        spec = task.spec
        job_id = spec.job_id
        task_id = spec.task_id
        copy_index = len(task.copies)
        duration = self.stragglers.copy_duration(
            spec.work, machine.speed_factor, job_id, task_id, copy_index
        )
        copy_id = self._copy_counter
        self._copy_counter = copy_id + 1
        copy = TaskCopy(
            copy_id=copy_id,
            task_id=task_id,
            machine_id=machine.machine_id,
            start_time=self._now,
            duration=duration,
        )
        task.add_copy(copy)
        index = self._sched_index.get(job_id)
        if index is not None:
            index.on_copy_launched(task)
        self.cluster.occupy(machine.machine_id, job_id, task_id, copy_id)
        if speculative:
            job.speculative_copies_launched += 1
        self.metrics.record_copy_launch(speculative)
        self._alloc_dirty = True
        self._copy_finish_events[copy_id] = self._events.push(
            self._now + duration,
            EventKind.COPY_FINISH,
            job_id=job_id,
            task_id=task_id,
            copy_id=copy_id,
        )

    def _release_copy(self, job: Job, copy: TaskCopy) -> None:
        self.cluster.release(copy.machine_id, job.job_id, copy.task_id, copy.copy_id)


def run_simulation(
    job_specs: Union[Sequence[JobSpec], Iterable[JobSpec]],
    policy: SpeculationPolicy,
    config: Optional[SimulationConfig] = None,
    sink: Optional[ResultSink] = None,
) -> MetricsCollector:
    """Convenience wrapper: run a workload under a policy and return metrics."""
    return Simulation(config or SimulationConfig(), policy, job_specs, sink=sink).run()

"""Straggler model: why copies of the same task take different durations.

The paper's measurements (Figure 3, §2.2) show that task durations —
*normalised by input size* — are heavy tailed: a Pareto tail with shape
β ≈ 1.259 (infinite variance), with the average job's slowest task about
eight times its median even after proactive mitigation.  The variability is
environmental (contention, IO interference, background daemons), not
intrinsic to the task, which is why launching a fresh copy helps: the copy
re-draws its runtime multiplier and, for such heavy tails, a fresh draw is
usually far better than the conditional remaining time of a long-running
copy (Guideline 1 / Theorem 1 only recommend speculation because β < 2).

Each copy's duration is ``work × machine_speed × multiplier`` where the
multiplier is drawn from a Pareto distribution with median 1 and shape β,
truncated at ``cap`` so a single draw cannot dominate an experiment (the cap
is what keeps the slowest-to-median ratio around the published ~8×).

Multipliers are derived deterministically from ``(seed, job, task, copy)`` so
the same experiment seed replays the same stragglers under every policy, and
so the oracle scheduler can query what a not-yet-launched copy *would* take.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from hashlib import sha256

from repro.utils.rng import RngStream


@dataclass(frozen=True)
class StragglerConfig:
    """Parameters of the per-copy duration-multiplier distribution.

    ``shape`` is the Pareto tail index (the paper's β = 1.259), ``cap`` the
    truncation point of the multiplier, and ``median`` the multiplier's
    median (1.0 means the workload generator's task work *is* the median
    duration, which is how the paper calibrates deadlines in §6.1).
    ``jitter`` adds a small Gaussian wobble representing benign run-to-run
    variation below the Pareto body.
    """

    shape: float = 1.259
    cap: float = 12.0
    median: float = 1.0
    jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.cap <= self.median:
            raise ValueError("cap must exceed the median multiplier")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    @property
    def scale(self) -> float:
        """Pareto scale parameter such that the median multiplier is ``median``."""
        return self.median / (2.0 ** (1.0 / self.shape))

    def mean_multiplier(self) -> float:
        """Analytic mean of the truncated multiplier, E[min(X, cap)]."""
        beta, xm, cap = self.shape, self.scale, self.cap
        # repro: allow[DET004] analytic special case: the closed form divides by (beta - 1)
        if beta == 1.0:
            body = xm * (1.0 + math.log(cap / xm))
        else:
            body = (beta * xm / (beta - 1.0)) * (1.0 - (xm / cap) ** (beta - 1.0))
        tail = cap * (xm / cap) ** beta
        return body + tail

    @classmethod
    def none(cls) -> "StragglerConfig":
        """A (nearly) straggler-free cluster: used for ideal-duration tests."""
        return cls(shape=1000.0, cap=1.01, median=1.0, jitter=0.0)

    @classmethod
    def light(cls) -> "StragglerConfig":
        """Milder tail than the production default (ablations)."""
        return cls(shape=1.8, cap=8.0, median=1.0, jitter=0.05)

    @classmethod
    def severe(cls) -> "StragglerConfig":
        """A heavily contended cluster, used in stress tests and ablations."""
        return cls(shape=1.1, cap=20.0, median=1.0, jitter=0.08)


class StragglerModel:
    """Deterministic per-copy duration multipliers.

    ``multiplier(job_id, task_id, copy_index)`` always returns the same value
    for the same experiment seed, regardless of when (or whether) the copy is
    actually launched.
    """

    def __init__(self, config: StragglerConfig, seed: int) -> None:
        self.config = config
        self._seed = seed
        self._root = RngStream(seed, "straggler-root")
        # ``multiplier`` runs once per copy launch, squarely on the engine's
        # hot path, so the per-copy stream spawn is flattened: the seed
        # derivation prefix (identical for every copy) is pre-encoded, the
        # config-derived Pareto parameters are computed once, and a single
        # scratch ``random.Random`` is re-seeded per copy instead of
        # constructing a stream object.  ``Random.seed`` resets the cached
        # second Gaussian, so the scratch generator's draws are bit-identical
        # to a freshly constructed stream's.
        self._seed_prefix = f"{seed}:straggler-root/".encode("utf-8")
        self._scale = config.scale
        self._inv_shape = 1.0 / config.shape
        # repro: allow[DET004] exact-config fast-path sentinel; jitter is set, not computed
        self._exact = config.jitter == 0.0 and config.shape >= 100.0
        # repro: allow[DET001] scratch RNG is reseeded via _seed_core before every copy draw
        self._scratch = random.Random()
        # ``random.Random.seed`` is a Python wrapper whose int path reduces to
        # the C base-class seed plus a ``gauss_next`` reset; binding the base
        # seed skips the wrapper's type dispatch on every reseed.
        self._seed_core = super(random.Random, self._scratch).seed
        self._rand_core = self._scratch.random
        self._gauss_core = self._scratch.gauss

    def _copy_stream(self, job_id: int, task_id: int, copy_index: int) -> RngStream:
        return self._root.spawn(f"{job_id}/{task_id}/{copy_index}")

    def multiplier(self, job_id: int, task_id: int, copy_index: int) -> float:
        """The duration multiplier the given copy would experience."""
        config = self.config
        if self._exact:
            # The "no stragglers" configuration: exactly the median multiplier,
            # so tests and worked examples get exact wave arithmetic.
            return config.median
        digest = sha256(
            self._seed_prefix + b"%d/%d/%d" % (job_id, task_id, copy_index)
        ).digest()
        self._seed_core(int.from_bytes(digest[:8], "big"))
        self._scratch.gauss_next = None
        # Inline ``bounded_pareto(shape, scale, cap)``.
        u = self._rand_core()
        if u < 1e-12:
            u = 1e-12
        value = self._scale / u ** self._inv_shape
        cap = config.cap
        if value > cap:
            value = cap
        jitter = config.jitter
        if jitter > 0:
            # Inline ``truncated_gauss(1.0, jitter, low=0.7, high=1.3)``.
            gauss = self._gauss_core
            for _ in range(64):
                wobble = gauss(1.0, jitter)
                if 0.7 <= wobble <= 1.3:
                    break
            else:
                wobble = gauss(1.0, jitter)
                if wobble < 0.7:
                    wobble = 0.7
                elif wobble > 1.3:
                    wobble = 1.3
            value *= wobble
        return max(0.05, value)

    def copy_duration(
        self,
        base_work: float,
        machine_speed: float,
        job_id: int,
        task_id: int,
        copy_index: int,
    ) -> float:
        """Actual duration of a copy: work x machine speed x straggler factor."""
        if base_work <= 0:
            raise ValueError("base_work must be positive")
        if machine_speed <= 0:
            raise ValueError("machine_speed must be positive")
        factor = self.multiplier(job_id, task_id, copy_index)
        return base_work * machine_speed * factor

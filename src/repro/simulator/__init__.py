"""Discrete-event cluster simulator substrate.

This package replaces the paper's 200-node EC2 deployment: it provides the
machines, slots, straggler behaviour and event loop on which the speculation
policies (GS, RAS, GRASS and the baselines) are exercised.
"""

from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.machine import Machine
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import (
    AggregateSink,
    JsonlSpillSink,
    ResultSink,
    RetainAllSink,
    SinkFactory,
    StreamingAggregates,
)
from repro.simulator.stragglers import StragglerConfig, StragglerModel

__all__ = [
    "AggregateSink",
    "Cluster",
    "ClusterConfig",
    "Event",
    "EventKind",
    "EventQueue",
    "JsonlSpillSink",
    "Machine",
    "MetricsCollector",
    "ResultSink",
    "RetainAllSink",
    "Simulation",
    "SimulationConfig",
    "SinkFactory",
    "StragglerConfig",
    "StragglerModel",
    "StreamingAggregates",
]

"""Machines: the physical substrate providing compute slots.

Each machine has a fixed number of slots and a static speed factor modelling
hardware heterogeneity (§2.1 notes that tasks take different durations even
with the same amount of work because of cluster heterogeneity).  Transient
slowdowns — the stragglers themselves — are modelled per copy by
:mod:`repro.simulator.stragglers`, matching the paper's observation that
machines are *not* consistently problematic (§2.2), so blacklisting them
would not help.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set


@dataclass
class Machine:
    """A machine with ``num_slots`` slots and a static speed factor.

    ``speed_factor`` multiplies task durations: 1.0 is the reference machine,
    larger is slower.
    """

    machine_id: int
    num_slots: int
    speed_factor: float = 1.0
    _busy_slots: int = field(default=0, repr=False)
    _running_copy_keys: Set[tuple] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise ValueError("a machine needs at least one slot")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")

    @property
    def busy_slots(self) -> int:
        return self._busy_slots

    @property
    def free_slots(self) -> int:
        return self.num_slots - self._busy_slots

    def has_free_slot(self) -> bool:
        return self.free_slots > 0

    def occupy(self, job_id: int, task_id: int, copy_id: int) -> None:
        """Occupy one slot for a task copy."""
        if not self.has_free_slot():
            raise RuntimeError(f"machine {self.machine_id} has no free slot")
        key = (job_id, task_id, copy_id)
        if key in self._running_copy_keys:
            raise RuntimeError(f"copy {key} already running on machine {self.machine_id}")
        self._running_copy_keys.add(key)
        self._busy_slots += 1

    def release(self, job_id: int, task_id: int, copy_id: int) -> None:
        """Release the slot held by a task copy."""
        key = (job_id, task_id, copy_id)
        if key not in self._running_copy_keys:
            raise RuntimeError(f"copy {key} is not running on machine {self.machine_id}")
        self._running_copy_keys.remove(key)
        self._busy_slots -= 1

    def duration_on_machine(self, base_duration: float) -> float:
        """Scale a reference duration by this machine's speed factor."""
        if base_duration <= 0:
            raise ValueError("base_duration must be positive")
        return base_duration * self.speed_factor

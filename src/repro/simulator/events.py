"""Event queue for the discrete-event simulator.

Events are ordered by time, then by a deterministic sequence number so two
runs with the same seed replay the exact same schedule (ties are common:
several copies can finish at the same instant when durations are integers).

The heap itself stores packed ``(time, priority, sequence)`` tuples — plain
tuple comparisons are what CPython's ``heapq`` C accelerator is optimised
for — while the :class:`Event` handle callers hold is a slot-based object
looked up by sequence number only when an entry is actually popped.
Cancellation is a dict deletion: a heap entry whose sequence is no longer
live is discarded in passing by ``pop``/``peek_time``.
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple


class EventKind(Enum):
    """The kinds of events the engine reacts to."""

    JOB_ARRIVAL = "job_arrival"
    COPY_FINISH = "copy_finish"
    JOB_DEADLINE = "job_deadline"
    PERIODIC_TICK = "periodic_tick"


#: Tie-break order for events scheduled at the same instant.  Copy completions
#: are applied before deadlines so a task finishing exactly at the deadline
#: still counts, and before arrivals so freed slots are visible to the new job.
_KIND_PRIORITY = {
    EventKind.COPY_FINISH: 0,
    EventKind.JOB_ARRIVAL: 1,
    EventKind.PERIODIC_TICK: 2,
    EventKind.JOB_DEADLINE: 3,
}


class Event:
    """A single simulator event (the handle returned by ``push``).

    Ordering compares ``(time, priority, sequence)``; the payload is excluded
    from comparisons so it never needs to be orderable itself.
    """

    __slots__ = ("time", "priority", "sequence", "kind", "payload")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        kind: EventKind,
        payload: Dict[str, Any],
    ) -> None:
        if time < 0:
            raise ValueError("event time must be non-negative")
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.kind = kind
        self.payload = payload

    def _key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"sequence={self.sequence!r}, kind={self.kind!r}, "
            f"payload={self.payload!r})"
        )


class EventQueue:
    """A deterministic min-heap of events with lazy cancellation.

    ``cancel`` removes the event from the live table without touching the
    heap; stale heap entries are skipped (and physically removed) by
    ``pop``/``peek_time``.  ``len`` and ``bool`` count only live events, so
    callers can treat a queue whose remaining entries are all cancelled as
    empty.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._live: Dict[int, Event] = {}
        self._next_sequence = 0

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def push(self, time: float, kind: EventKind, **payload: Any) -> Event:
        """Schedule an event and return it (the handle can be cancelled)."""
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, _KIND_PRIORITY[kind], sequence, kind, payload)
        heapq.heappush(self._heap, (time, event.priority, sequence))
        self._live[sequence] = event
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel an event: it will be skipped when popped.

        Cancelling an event that was already popped (or cancelled) is a
        no-op, so callers don't need to track whether a handle already fired.
        """
        self._live.pop(event.sequence, None)

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if the queue is empty."""
        heap = self._heap
        live = self._live
        while heap:
            event = live.pop(heapq.heappop(heap)[2], None)
            if event is not None:
                return event
        return None

    def pop_at_or_before(self, time: float) -> Optional[Event]:
        """Pop the earliest live event no later than ``time``, else None.

        This is the engine's same-instant cohort drain in one heap
        inspection: an event strictly after ``time`` is left queued.
        """
        heap = self._heap
        live = self._live
        while heap:
            head = heap[0]
            if head[2] not in live:
                heapq.heappop(heap)
                continue
            if head[0] > time:
                return None
            heapq.heappop(heap)
            return live.pop(head[2])
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event without removing it."""
        heap = self._heap
        live = self._live
        while heap and heap[0][2] not in live:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        self._heap.clear()
        self._live.clear()

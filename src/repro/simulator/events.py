"""Event queue for the discrete-event simulator.

Events are ordered by time, then by a deterministic sequence number so two
runs with the same seed replay the exact same schedule (ties are common:
several copies can finish at the same instant when durations are integers).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, Optional


class EventKind(Enum):
    """The kinds of events the engine reacts to."""

    JOB_ARRIVAL = "job_arrival"
    COPY_FINISH = "copy_finish"
    JOB_DEADLINE = "job_deadline"
    PERIODIC_TICK = "periodic_tick"


#: Tie-break order for events scheduled at the same instant.  Copy completions
#: are applied before deadlines so a task finishing exactly at the deadline
#: still counts, and before arrivals so freed slots are visible to the new job.
_KIND_PRIORITY = {
    EventKind.COPY_FINISH: 0,
    EventKind.JOB_ARRIVAL: 1,
    EventKind.PERIODIC_TICK: 2,
    EventKind.JOB_DEADLINE: 3,
}


@dataclass(frozen=True, order=True)
class Event:
    """A single simulator event.

    Ordering compares ``(time, priority, sequence)``; the payload is excluded
    from comparisons so it never needs to be orderable itself.
    """

    time: float
    priority: int
    sequence: int
    kind: EventKind = field(compare=False)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")


class EventQueue:
    """A deterministic min-heap of events with lazy cancellation.

    ``cancel`` marks an event dead without touching the heap; dead entries
    are skipped (and physically removed) by ``pop``/``peek_time``.  ``len``
    and ``bool`` count only live events, so callers can treat a queue whose
    remaining entries are all cancelled as empty.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter: Iterator[int] = itertools.count()
        self._cancelled: set = set()
        self._pending: set = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def push(self, time: float, kind: EventKind, **payload: Any) -> Event:
        """Schedule an event and return it (the handle can be cancelled)."""
        event = Event(
            time=time,
            priority=_KIND_PRIORITY[kind],
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        self._pending.add(event.sequence)
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel an event: it will be skipped when popped.

        Cancelling an event that was already popped (or cancelled) is a
        no-op, so callers don't need to track whether a handle already fired.
        """
        if event.sequence in self._pending:
            self._pending.discard(event.sequence)
            self._cancelled.add(event.sequence)

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            self._pending.discard(event.sequence)
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event without removing it."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.sequence)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()
        self._cancelled.clear()
        self._pending.clear()

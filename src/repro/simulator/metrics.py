"""Metrics collection for simulation runs.

The collector accumulates cluster-level counters and delegates per-job
results to a pluggable :class:`~repro.simulator.sinks.ResultSink` (retain
everything, fold into streaming aggregates, or spill to JSONL — see
``repro.simulator.sinks``).  It exposes the aggregates the paper reports:
average accuracy of deadline-bound jobs, average duration of error-bound
jobs, breakdowns by job bin and by bound value.  Aggregate accessors answer
from the sink's :class:`~repro.simulator.sinks.StreamingAggregates` whenever
the raw results are absent, so an aggregate-only collector supports the same
reporting surface as a retaining one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import BoundType
from repro.core.job import JobResult
from repro.simulator.sinks import (
    ResultSink,
    RetainAllSink,
    StreamingAggregates,
    results_with_bound,
)
from repro.utils.stats import OnlineStats, mean


@dataclass
class MetricsCollector:
    """Accumulates :class:`JobResult` records (via a sink) and cluster counters."""

    sink: ResultSink = field(default_factory=RetainAllSink)
    total_copies_launched: int = 0
    speculative_copies_launched: int = 0
    wasted_slot_seconds: float = 0.0
    utilization_stats: OnlineStats = field(default_factory=OnlineStats)
    simulated_time: float = 0.0
    #: Jobs cut off by ``max_simulated_time``: in flight (force-finished with
    #: partial results) or arriving past the horizon (no result at all).
    truncated_jobs: int = 0
    #: High-water mark of jobs resident in the engine at once — O(max
    #: concurrent), not O(workload), now that finished jobs are evicted.
    peak_resident_jobs: int = 0
    #: Engine events processed by the simulation that filled this collector;
    #: replay-level benches sum it across simulations to report events/s
    #: without holding the Simulation objects.
    events_processed: int = 0

    # -- recording -------------------------------------------------------------

    def add_result(self, result: JobResult) -> None:
        self.sink.record(result)

    def record_copy_launch(self, speculative: bool) -> None:
        self.total_copies_launched += 1
        if speculative:
            self.speculative_copies_launched += 1

    def record_wasted_work(self, slot_seconds: float) -> None:
        self.wasted_slot_seconds += slot_seconds

    def record_utilization(self, utilization: float) -> None:
        self.utilization_stats.add(utilization)

    # -- result access ----------------------------------------------------------

    @property
    def retains_results(self) -> bool:
        return self.sink.retains_results

    @property
    def results(self) -> List[JobResult]:
        """The retained raw results; raises when the sink dropped them.

        Raising (instead of silently returning an empty list) turns "this
        code path still assumes retained results" into an actionable error
        under ``--sink aggregate`` rather than a wrong 0.0 in a report.
        """
        retained = self.sink.results
        if retained is None:
            raise RuntimeError(
                f"per-job results were not retained ({type(self.sink).__name__}); "
                "use the aggregate accessors or run with the retain sink"
            )
        return retained

    @property
    def aggregates(self) -> StreamingAggregates:
        """This run's results as a mergeable constant-size aggregate view."""
        return self.sink.aggregates

    # -- filters ----------------------------------------------------------------

    def deadline_results(self) -> List[JobResult]:
        return results_with_bound(self.results, BoundType.DEADLINE)

    def error_results(self) -> List[JobResult]:
        return results_with_bound(self.results, BoundType.ERROR)

    def exact_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.is_exact]

    def by_bin(self, results: Optional[Sequence[JobResult]] = None) -> Dict[str, List[JobResult]]:
        """Group results into the paper's job-size bins.

        The paper's bins are small/medium/large (always present, possibly
        empty); a result carrying any *other* bin label — e.g. a caller's
        custom :class:`JobResult` stand-in — gets its own group instead of
        the bare ``KeyError`` this used to raise.
        """
        grouped: Dict[str, List[JobResult]] = {"small": [], "medium": [], "large": []}
        for result in results if results is not None else self.results:
            grouped.setdefault(result.job_bin, []).append(result)
        return grouped

    def filter(self, predicate: Callable[[JobResult], bool]) -> List[JobResult]:
        return [result for result in self.results if predicate(result)]

    # -- aggregates ----------------------------------------------------------------

    def average_accuracy(self, results: Optional[Sequence[JobResult]] = None) -> float:
        """Mean accuracy of deadline-bound jobs (the paper's headline metric)."""
        if results is None:
            return self.aggregates.average_accuracy
        pool = list(results)
        if not pool:
            return 0.0
        return mean([result.accuracy for result in pool])

    def average_duration(self, results: Optional[Sequence[JobResult]] = None) -> float:
        """Mean duration of error-bound jobs."""
        if results is None:
            return self.aggregates.average_duration
        pool = list(results)
        if not pool:
            return 0.0
        return mean([result.duration for result in pool])

    def accuracy_by_bin(self) -> Dict[str, float]:
        by_bin = self.aggregates.accuracy_by_bin()
        return {
            bin_name: by_bin[bin_name].mean if bin_name in by_bin else 0.0
            for bin_name in ("small", "medium", "large")
        }

    def duration_by_bin(self) -> Dict[str, float]:
        by_bin = self.aggregates.duration_by_bin()
        return {
            bin_name: by_bin[bin_name].mean if bin_name in by_bin else 0.0
            for bin_name in ("small", "medium", "large")
        }

    def bound_met_fraction(self) -> float:
        """Fraction of jobs that met their bound (error jobs) or finished fully."""
        return self.aggregates.bound_met_fraction

    def speculation_ratio(self) -> float:
        """Speculative copies as a fraction of all copies launched."""
        if self.total_copies_launched == 0:
            return 0.0
        return self.speculative_copies_launched / self.total_copies_launched

    def summary(self) -> Dict[str, float]:
        """A compact dictionary used by the CLI and the experiment reports."""
        aggregates = self.aggregates
        return {
            "jobs": float(aggregates.num_results),
            "deadline_jobs": float(aggregates.deadline_jobs),
            "error_jobs": float(aggregates.error_jobs),
            "avg_accuracy": aggregates.average_accuracy,
            "avg_duration": aggregates.average_duration,
            "bound_met_fraction": aggregates.bound_met_fraction,
            "speculation_ratio": self.speculation_ratio(),
            "wasted_slot_seconds": self.wasted_slot_seconds,
            "mean_utilization": self.utilization_stats.mean,
            "simulated_time": self.simulated_time,
            "truncated_jobs": float(self.truncated_jobs),
            "peak_resident_jobs": float(self.peak_resident_jobs),
        }

"""Metrics collection for simulation runs.

The collector accumulates per-job results plus cluster-level counters and
exposes the aggregates the paper reports: average accuracy of deadline-bound
jobs, average duration of error-bound jobs, breakdowns by job bin and by
bound value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.bounds import BoundType
from repro.core.job import JobResult
from repro.utils.stats import OnlineStats, mean


@dataclass
class MetricsCollector:
    """Accumulates :class:`JobResult` records and cluster counters."""

    results: List[JobResult] = field(default_factory=list)
    total_copies_launched: int = 0
    speculative_copies_launched: int = 0
    wasted_slot_seconds: float = 0.0
    utilization_stats: OnlineStats = field(default_factory=OnlineStats)
    simulated_time: float = 0.0
    #: Jobs cut off by ``max_simulated_time``: in flight (force-finished with
    #: partial results) or arriving past the horizon (no result at all).
    truncated_jobs: int = 0
    #: High-water mark of jobs resident in the engine at once — O(max
    #: concurrent), not O(workload), now that finished jobs are evicted.
    peak_resident_jobs: int = 0

    # -- recording -------------------------------------------------------------

    def add_result(self, result: JobResult) -> None:
        self.results.append(result)

    def record_copy_launch(self, speculative: bool) -> None:
        self.total_copies_launched += 1
        if speculative:
            self.speculative_copies_launched += 1

    def record_wasted_work(self, slot_seconds: float) -> None:
        self.wasted_slot_seconds += slot_seconds

    def record_utilization(self, utilization: float) -> None:
        self.utilization_stats.add(utilization)

    # -- filters ----------------------------------------------------------------

    def deadline_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.kind is BoundType.DEADLINE]

    def error_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.kind is BoundType.ERROR]

    def exact_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.is_exact]

    def by_bin(self, results: Optional[Sequence[JobResult]] = None) -> Dict[str, List[JobResult]]:
        """Group results into the paper's job-size bins."""
        grouped: Dict[str, List[JobResult]] = {"small": [], "medium": [], "large": []}
        for result in results if results is not None else self.results:
            grouped[result.job_bin].append(result)
        return grouped

    def filter(self, predicate: Callable[[JobResult], bool]) -> List[JobResult]:
        return [result for result in self.results if predicate(result)]

    # -- aggregates ----------------------------------------------------------------

    def average_accuracy(self, results: Optional[Sequence[JobResult]] = None) -> float:
        """Mean accuracy of deadline-bound jobs (the paper's headline metric)."""
        pool = list(results) if results is not None else self.deadline_results()
        if not pool:
            return 0.0
        return mean([result.accuracy for result in pool])

    def average_duration(self, results: Optional[Sequence[JobResult]] = None) -> float:
        """Mean duration of error-bound jobs."""
        pool = list(results) if results is not None else self.error_results()
        if not pool:
            return 0.0
        return mean([result.duration for result in pool])

    def accuracy_by_bin(self) -> Dict[str, float]:
        grouped = self.by_bin(self.deadline_results())
        return {
            bin_name: self.average_accuracy(results) if results else 0.0
            for bin_name, results in grouped.items()
        }

    def duration_by_bin(self) -> Dict[str, float]:
        grouped = self.by_bin(self.error_results())
        return {
            bin_name: self.average_duration(results) if results else 0.0
            for bin_name, results in grouped.items()
        }

    def bound_met_fraction(self) -> float:
        """Fraction of jobs that met their bound (error jobs) or finished fully."""
        if not self.results:
            return 0.0
        return sum(1 for result in self.results if result.met_bound) / len(self.results)

    def speculation_ratio(self) -> float:
        """Speculative copies as a fraction of all copies launched."""
        if self.total_copies_launched == 0:
            return 0.0
        return self.speculative_copies_launched / self.total_copies_launched

    def summary(self) -> Dict[str, float]:
        """A compact dictionary used by the CLI and the experiment reports."""
        return {
            "jobs": float(len(self.results)),
            "deadline_jobs": float(len(self.deadline_results())),
            "error_jobs": float(len(self.error_results())),
            "avg_accuracy": self.average_accuracy(),
            "avg_duration": self.average_duration(),
            "bound_met_fraction": self.bound_met_fraction(),
            "speculation_ratio": self.speculation_ratio(),
            "wasted_slot_seconds": self.wasted_slot_seconds,
            "mean_utilization": self.utilization_stats.mean,
            "simulated_time": self.simulated_time,
            "truncated_jobs": float(self.truncated_jobs),
            "peak_resident_jobs": float(self.peak_resident_jobs),
        }

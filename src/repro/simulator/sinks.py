"""Pluggable result sinks: where a simulation's :class:`JobResult`\\ s go.

``MetricsCollector`` used to hard-code one answer — append every result to a
list — which left a ``--stream-specs`` replay O(1) in specs and shards but
still O(trace) in results.  GRASS's evaluation only ever reports *aggregates*
(mean accuracy of deadline-bound jobs, mean duration of error-bound jobs,
by-bin breakdowns), so this module makes the destination pluggable:

* :class:`RetainAllSink` — today's behaviour: keep the full result list.
  The default, and what the figure pipeline (which slices raw results by
  workload metadata) requires.
* :class:`AggregateSink` — fold each result on arrival into a
  :class:`StreamingAggregates` and drop it.  Resident memory becomes
  independent of trace length.
* :class:`JsonlSpillSink` — stream one JSON row per result to disk for
  offline analysis while keeping only the aggregates in memory.

Every sink — including the retaining one — maintains the same
:class:`StreamingAggregates`, folded per result in arrival order, so
aggregate queries (and the metrics digest built from them) are bit-identical
across sinks by construction, not by numerical luck.

Mergeability
------------

A :class:`StreamingAggregates` is a tuple of per-simulation
:class:`AggregateChunk` records, and :meth:`StreamingAggregates.merge` is
*chunk-list concatenation*.  That makes the merge exactly associative (list
concatenation is), makes aggregate equality across the retain and aggregate
paths strict dataclass equality, and gives the digest a mergeable shape: each
chunk carries the sha256 over its own results' canonical encodings (the exact
per-result encoding ``cli.metrics_digest`` hashes), and the merged digest
folds the chunk digests in merge order.  Two replays with the same
(policy, seed, shard) partition therefore print the same digest whatever the
sink, streaming mode or worker count.  Totals (counts, means, by-bin stats)
are folded over the chunks on demand — O(#chunks), which is
O(policies x seeds x shards), never O(trace).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.core.bounds import BoundType
from repro.core.job import JobResult
from repro.utils.stats import OnlineStats

def canonical_result_record(result: JobResult) -> Dict[str, object]:
    """The digest's per-result record (also the JSONL spill row)."""
    return {
        "job_id": result.job_id,
        "accuracy": result.accuracy,
        "duration": result.duration,
        "completed": result.completed_input_tasks,
        "wasted_work": result.wasted_work,
        "speculative_copies": result.speculative_copies,
        "met_bound": result.met_bound,
    }


def encode_result(result: JobResult) -> bytes:
    """Canonical byte encoding of one result, fed to the rolling digest."""
    return json.dumps(
        canonical_result_record(result), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def results_with_bound(
    results: Iterable[JobResult], kind: BoundType
) -> List[JobResult]:
    """Results whose bound is of ``kind`` — the one filter the metrics layer
    and the experiment runner used to copy-paste at each other."""
    return [result for result in results if result.bound.kind is kind]


@dataclass
class AggregateChunk:
    """One simulation's fold of its results into constant-size aggregates.

    Everything here is plain data (ints, floats, :class:`OnlineStats`,
    ``bytes``), so chunks pickle cleanly across the worker boundary and
    compare with dataclass equality.  ``digest`` is the sha256 over the
    chunk's results' canonical encodings, in arrival order.
    """

    jobs: int = 0
    deadline_jobs: int = 0
    error_jobs: int = 0
    exact_jobs: int = 0
    bound_met_jobs: int = 0
    speculative_copies: int = 0
    deadline_accuracy: OnlineStats = field(default_factory=OnlineStats)
    error_duration: OnlineStats = field(default_factory=OnlineStats)
    bin_counts: Dict[str, int] = field(default_factory=dict)
    accuracy_by_bin: Dict[str, OnlineStats] = field(default_factory=dict)
    duration_by_bin: Dict[str, OnlineStats] = field(default_factory=dict)
    digest: bytes = hashlib.sha256(b"").digest()


@dataclass(frozen=True)
class StreamingAggregates:
    """Mergeable, picklable aggregates over any number of simulations.

    See the module docs: the representation is a tuple of per-simulation
    :class:`AggregateChunk`\\ s; :meth:`merge` concatenates, which is exactly
    associative, and every total is folded over the chunks on demand.
    """

    chunks: Tuple[AggregateChunk, ...] = ()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_results(cls, results: Iterable[JobResult]) -> "StreamingAggregates":
        """One-chunk aggregates folded from an in-memory result sequence."""
        accumulator = _ChunkAccumulator()
        for result in results:
            accumulator.fold(result)
        return cls(chunks=(accumulator.seal(),))

    def merge(self, other: "StreamingAggregates") -> "StreamingAggregates":
        """Combine with another aggregate view (exactly associative)."""
        return StreamingAggregates(chunks=self.chunks + other.chunks)

    @classmethod
    def merged(
        cls, parts: Iterable["StreamingAggregates"]
    ) -> "StreamingAggregates":
        chunks: Tuple[AggregateChunk, ...] = ()
        for part in parts:
            chunks = chunks + part.chunks
        return cls(chunks=chunks)

    # -- digest ----------------------------------------------------------------

    def digest_parts(self) -> List[bytes]:
        """Per-chunk sha256 digests, in merge order (see ``metrics_digest``)."""
        return [chunk.digest for chunk in self.chunks]

    # -- wire format -----------------------------------------------------------

    def to_wire(self) -> List[Dict[str, object]]:
        """Plain-JSON chunk list; inverse of :meth:`from_wire`."""
        return [chunk_to_wire(chunk) for chunk in self.chunks]

    @classmethod
    def from_wire(cls, wire: Iterable[Dict[str, object]]) -> "StreamingAggregates":
        return cls(chunks=tuple(chunk_from_wire(entry) for entry in wire))

    # -- totals ----------------------------------------------------------------

    @property
    def num_results(self) -> int:
        return sum(chunk.jobs for chunk in self.chunks)

    @property
    def deadline_jobs(self) -> int:
        return sum(chunk.deadline_jobs for chunk in self.chunks)

    @property
    def error_jobs(self) -> int:
        return sum(chunk.error_jobs for chunk in self.chunks)

    @property
    def exact_jobs(self) -> int:
        return sum(chunk.exact_jobs for chunk in self.chunks)

    @property
    def bound_met_jobs(self) -> int:
        return sum(chunk.bound_met_jobs for chunk in self.chunks)

    @property
    def speculative_copies(self) -> int:
        return sum(chunk.speculative_copies for chunk in self.chunks)

    @property
    def deadline_accuracy(self) -> OnlineStats:
        return self._merged_stats(lambda chunk: chunk.deadline_accuracy)

    @property
    def error_duration(self) -> OnlineStats:
        return self._merged_stats(lambda chunk: chunk.error_duration)

    @property
    def average_accuracy(self) -> float:
        """Mean accuracy of deadline-bound jobs (0.0 when there are none)."""
        return self.deadline_accuracy.mean

    @property
    def average_duration(self) -> float:
        """Mean duration of error-bound jobs (0.0 when there are none)."""
        return self.error_duration.mean

    @property
    def bound_met_fraction(self) -> float:
        total = self.num_results
        return self.bound_met_jobs / total if total else 0.0

    def bin_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for chunk in self.chunks:
            for bin_name, count in chunk.bin_counts.items():
                counts[bin_name] = counts.get(bin_name, 0) + count
        return counts

    def accuracy_by_bin(self) -> Dict[str, OnlineStats]:
        return self._merged_by_bin(lambda chunk: chunk.accuracy_by_bin)

    def duration_by_bin(self) -> Dict[str, OnlineStats]:
        return self._merged_by_bin(lambda chunk: chunk.duration_by_bin)

    def _merged_stats(self, pick) -> OnlineStats:
        merged = OnlineStats()
        for chunk in self.chunks:
            merged.merge(pick(chunk))
        return merged

    def _merged_by_bin(self, pick) -> Dict[str, OnlineStats]:
        merged: Dict[str, OnlineStats] = {}
        for chunk in self.chunks:
            for bin_name, stats in pick(chunk).items():
                merged.setdefault(bin_name, OnlineStats()).merge(stats)
        return merged


def chunk_to_wire(chunk: AggregateChunk) -> Dict[str, object]:
    """One aggregate chunk as a plain-JSON dict — the service's delta payload.

    This is the streaming wire format of the replay service: each completed
    (policy, seed, shard) simulation ships exactly one chunk, constant-size
    regardless of how many jobs it simulated, and a client folds received
    chunks back into a :class:`StreamingAggregates` with plain concatenation.
    The rolling result digest travels as hex, so client-side digest
    verification is byte-exact and independent of float formatting.
    """
    return {
        "jobs": chunk.jobs,
        "deadline_jobs": chunk.deadline_jobs,
        "error_jobs": chunk.error_jobs,
        "exact_jobs": chunk.exact_jobs,
        "bound_met_jobs": chunk.bound_met_jobs,
        "speculative_copies": chunk.speculative_copies,
        "deadline_accuracy": chunk.deadline_accuracy.to_wire(),
        "error_duration": chunk.error_duration.to_wire(),
        "bin_counts": dict(chunk.bin_counts),
        "accuracy_by_bin": {
            name: stats.to_wire() for name, stats in chunk.accuracy_by_bin.items()
        },
        "duration_by_bin": {
            name: stats.to_wire() for name, stats in chunk.duration_by_bin.items()
        },
        "digest": chunk.digest.hex(),
    }


def chunk_from_wire(wire: Dict[str, object]) -> AggregateChunk:
    """Inverse of :func:`chunk_to_wire` (exact round-trip, digest included)."""
    return AggregateChunk(
        jobs=int(wire["jobs"]),
        deadline_jobs=int(wire["deadline_jobs"]),
        error_jobs=int(wire["error_jobs"]),
        exact_jobs=int(wire["exact_jobs"]),
        bound_met_jobs=int(wire["bound_met_jobs"]),
        speculative_copies=int(wire["speculative_copies"]),
        deadline_accuracy=OnlineStats.from_wire(wire["deadline_accuracy"]),
        error_duration=OnlineStats.from_wire(wire["error_duration"]),
        bin_counts={name: int(count) for name, count in wire["bin_counts"].items()},
        accuracy_by_bin={
            name: OnlineStats.from_wire(stats)
            for name, stats in wire["accuracy_by_bin"].items()
        },
        duration_by_bin={
            name: OnlineStats.from_wire(stats)
            for name, stats in wire["duration_by_bin"].items()
        },
        digest=bytes.fromhex(wire["digest"]),
    )


def fold_run_digests(named_parts: Iterable[Tuple[str, Iterable[bytes]]]) -> str:
    """The policy-tagged digest fold shared by every digest consumer.

    ``named_parts`` yields ``(policy_name, per-chunk digests)`` pairs in the
    deterministic (policy, seed, shard) merge order.  The offline
    ``metrics_digest``, the replay service's end-of-plan digest and the
    client-side verification of streamed deltas all call this one function,
    so "streamed aggregates match offline replay" is an equality of inputs,
    never a reimplementation risk.
    """
    outer = hashlib.sha256()
    for name, parts in named_parts:
        outer.update(f"policy:{name}\n".encode("utf-8"))
        for part in parts:
            outer.update(part)
    return outer.hexdigest()


class _ChunkAccumulator:
    """Folds results one at a time into an :class:`AggregateChunk`.

    The live sha256 hasher cannot cross a pickle boundary, so the
    accumulator keeps it *outside* the chunk and stamps the (copyable)
    digest in when the chunk is sealed.  ``seal`` is non-destructive — the
    hasher is copied, never finalised — so a sink can keep folding after a
    snapshot has been taken.
    """

    def __init__(self) -> None:
        self.chunk = AggregateChunk()
        self._hasher = hashlib.sha256()

    def fold(self, result: JobResult) -> None:
        chunk = self.chunk
        chunk.jobs += 1
        bin_name = result.job_bin
        chunk.bin_counts[bin_name] = chunk.bin_counts.get(bin_name, 0) + 1
        if result.bound.kind is BoundType.DEADLINE:
            chunk.deadline_jobs += 1
            chunk.deadline_accuracy.add(result.accuracy)
            chunk.accuracy_by_bin.setdefault(bin_name, OnlineStats()).add(
                result.accuracy
            )
        elif result.bound.kind is BoundType.ERROR:
            chunk.error_jobs += 1
            chunk.error_duration.add(result.duration)
            chunk.duration_by_bin.setdefault(bin_name, OnlineStats()).add(
                result.duration
            )
        if result.bound.is_exact:
            chunk.exact_jobs += 1
        if result.met_bound:
            chunk.bound_met_jobs += 1
        chunk.speculative_copies += result.speculative_copies
        self._hasher.update(encode_result(result))

    def seal(self) -> AggregateChunk:
        sealed = copy.deepcopy(self.chunk)
        sealed.digest = self._hasher.copy().digest()
        return sealed


class ResultSink:
    """Destination for a simulation's :class:`JobResult` stream.

    Every sink folds each recorded result into a per-simulation aggregate
    chunk (see :class:`_ChunkAccumulator`); subclasses add what else happens
    to the result — retained, spilled, or dropped.  Sinks pickle with the
    collector they serve: the live hasher is sealed into the chunk digest on
    ``__getstate__`` and recording refuses to continue afterwards (a shipped
    chunk must never silently diverge from its digest).
    """

    #: Whether :attr:`results` retains the raw per-job records.
    retains_results = False

    def __init__(self) -> None:
        self._accumulator: Optional[_ChunkAccumulator] = _ChunkAccumulator()
        self._sealed_chunk: Optional[AggregateChunk] = None
        # Memoised seal of the live accumulator, invalidated per record():
        # aggregate consumers (digest, CLI table, improvement queries) read
        # ``aggregates`` repeatedly and must not deep-copy the chunk each time.
        self._cached_chunk: Optional[AggregateChunk] = None

    def record(self, result: JobResult) -> None:
        if self._accumulator is None:
            raise RuntimeError(
                f"{type(self).__name__} was sealed (pickled); it cannot "
                "record further results"
            )
        self._cached_chunk = None
        self._accumulator.fold(result)

    @property
    def results(self) -> Optional[List[JobResult]]:
        """The retained raw results, or ``None`` when the sink drops them."""
        return None

    def finish(self) -> None:
        """Hook run when the simulation completes (flush spill files, ...)."""

    @property
    def aggregates(self) -> StreamingAggregates:
        """This simulation's results as a one-chunk aggregate view."""
        if self._accumulator is not None:
            if self._cached_chunk is None:
                self._cached_chunk = self._accumulator.seal()
            return StreamingAggregates(chunks=(self._cached_chunk,))
        assert self._sealed_chunk is not None
        return StreamingAggregates(chunks=(self._sealed_chunk,))

    # -- pickling --------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        accumulator = state.pop("_accumulator")
        if accumulator is not None:
            state["_sealed_chunk"] = accumulator.seal()
        state["_cached_chunk"] = None
        state["_accumulator"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)


class RetainAllSink(ResultSink):
    """Keep every result — the historical behaviour and the default.

    Figures that slice raw results by per-job workload metadata need this;
    so does any caller that reads ``MetricsCollector.results`` directly.
    """

    retains_results = True

    def __init__(self) -> None:
        super().__init__()
        self._results: List[JobResult] = []

    def record(self, result: JobResult) -> None:
        super().record(result)
        self._results.append(result)

    @property
    def results(self) -> List[JobResult]:
        return self._results


class SealedChunkSink(ResultSink):
    """A sink born sealed around an already-computed aggregate chunk.

    The replay cache's hit path: a restored (policy, seed, shard) chunk
    becomes a collector whose ``aggregates`` view — and therefore digest
    part — is byte-identical to the simulation that produced it.  Recording
    into it raises (a cache hit *is* a finished simulation), and raw per-job
    results are never cached, so ``retains_results`` stays False.
    """

    def __init__(self, chunk: AggregateChunk) -> None:
        super().__init__()
        self._accumulator = None
        self._sealed_chunk = chunk


class AggregateSink(ResultSink):
    """Fold results into :class:`StreamingAggregates` and drop them.

    With this sink a ``--stream-specs`` replay holds zero :class:`JobResult`
    objects: resident memory is fully independent of trace length.
    """


class JsonlSpillSink(ResultSink):
    """Stream one JSON row per result to disk; keep aggregates in memory.

    Rows are the canonical digest records (one compact JSON object per
    line), written in arrival order, so offline analysis sees exactly what
    the digest hashed.  The file handle never crosses a pickle boundary:
    ``__getstate__`` flushes and closes it, keeping only the path.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = str(path)
        self._file: Optional[IO[str]] = None

    def record(self, result: JobResult) -> None:
        super().record(result)
        if self._file is None:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(encode_result(result).decode("utf-8") + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def finish(self) -> None:
        self.close()

    def __getstate__(self) -> Dict[str, object]:
        self.close()
        state = super().__getstate__()
        state["_file"] = None
        return state


#: CLI names of the sink kinds (``jsonl`` additionally carries a path).
SINK_KINDS = ("retain", "aggregate", "jsonl")


@dataclass(frozen=True)
class SinkFactory:
    """Picklable description of which sink a run should record into.

    A :class:`~repro.experiments.executor.RunRequest` cannot carry a sink
    *instance* (a spill sink holds a file handle; every request needs its
    own), so it carries this factory and the executing process builds the
    sink.  ``tag`` keeps concurrent spill files apart: the runner stamps
    each request's (policy, seed, shard) coordinates into it, so a jsonl
    sink writes ``<dir>/results-<tag>.jsonl`` per request.
    """

    kind: str = "retain"
    jsonl_dir: Optional[str] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SINK_KINDS:
            raise ValueError(
                f"unknown sink kind {self.kind!r}; expected one of {SINK_KINDS}"
            )
        if (self.kind == "jsonl") != (self.jsonl_dir is not None):
            raise ValueError("jsonl sinks need a directory; other kinds take none")

    @property
    def retains_results(self) -> bool:
        return self.kind == "retain"

    def with_tag(self, tag: str) -> "SinkFactory":
        return SinkFactory(kind=self.kind, jsonl_dir=self.jsonl_dir, tag=tag)

    def spill_path(self) -> Optional[Path]:
        if self.kind != "jsonl":
            return None
        name = f"results-{self.tag}.jsonl" if self.tag else "results.jsonl"
        return Path(self.jsonl_dir) / name

    def create(self) -> ResultSink:
        if self.kind == "retain":
            return RetainAllSink()
        if self.kind == "aggregate":
            return AggregateSink()
        return JsonlSpillSink(self.spill_path())


def parse_sink_spec(spec: str) -> SinkFactory:
    """Parse the CLI's ``--sink retain|aggregate|jsonl:PATH`` value."""
    if spec in ("retain", "aggregate"):
        return SinkFactory(kind=spec)
    if spec.startswith("jsonl:"):
        path = spec[len("jsonl:"):]
        if not path:
            raise ValueError("--sink jsonl needs a directory: jsonl:PATH")
        return SinkFactory(kind="jsonl", jsonl_dir=path)
    raise ValueError(
        f"unknown sink {spec!r}; expected retain, aggregate or jsonl:PATH"
    )

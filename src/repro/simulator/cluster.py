"""Cluster: machines, slots and fair-share allocation across jobs.

The cluster tracks which slots are busy, assigns newly launched copies to
machines, and recomputes each running job's slot allocation whenever the set
of running jobs changes.  Fair sharing is what makes jobs *multi-waved* (§2.1):
a job with 1000 tasks given 100 slots runs one tenth of its tasks at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulator.machine import Machine
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    The default of 200 machines with one slot each mirrors the paper's 200
    node EC2 deployment (each node contributing one task slot keeps the
    arithmetic of waves simple; ``slots_per_machine`` can be raised to model
    multi-slot nodes).
    """

    num_machines: int = 200
    slots_per_machine: int = 1
    heterogeneity: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.slots_per_machine <= 0:
            raise ValueError("slots_per_machine must be positive")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")

    @property
    def total_slots(self) -> int:
        return self.num_machines * self.slots_per_machine


class Cluster:
    """Runtime slot accounting and machine placement."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        rng = RngStream(config.seed, "cluster")
        self.machines: List[Machine] = []
        for machine_id in range(config.num_machines):
            if config.heterogeneity > 0:
                speed = rng.truncated_gauss(
                    1.0,
                    config.heterogeneity,
                    low=1.0 - config.heterogeneity,
                    high=1.0 + 2.0 * config.heterogeneity,
                )
            else:
                speed = 1.0
            self.machines.append(
                Machine(
                    machine_id=machine_id,
                    num_slots=config.slots_per_machine,
                    speed_factor=speed,
                )
            )
        self._machine_by_id: Dict[int, Machine] = {
            machine.machine_id: machine for machine in self.machines
        }
        self._placement_rng = rng.spawn("placement")
        self._busy_count = 0

    # -- capacity ---------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.config.total_slots

    @property
    def busy_slots(self) -> int:
        return self._busy_count

    @property
    def free_slots(self) -> int:
        return self.total_slots - self.busy_slots

    def has_free_slot(self) -> bool:
        return self.free_slots > 0

    def utilization(self) -> float:
        """Fraction of slots currently busy, in [0, 1]."""
        if self.total_slots == 0:
            return 0.0
        return self.busy_slots / self.total_slots

    # -- placement --------------------------------------------------------------

    def machine(self, machine_id: int) -> Machine:
        return self._machine_by_id[machine_id]

    def pick_machine(self) -> Optional[Machine]:
        """Pick a machine with a free slot, randomly among the least loaded.

        Random placement among least-loaded machines approximates the data
        locality-agnostic placement the paper's prototypes use for
        speculative copies.
        """
        candidates = [machine for machine in self.machines if machine.has_free_slot()]
        if not candidates:
            return None
        min_busy = min(machine.busy_slots for machine in candidates)
        least_loaded = [m for m in candidates if m.busy_slots == min_busy]
        return self._placement_rng.choice(least_loaded)

    def occupy(self, machine_id: int, job_id: int, task_id: int, copy_id: int) -> None:
        self.machine(machine_id).occupy(job_id, task_id, copy_id)
        self._busy_count += 1

    def release(self, machine_id: int, job_id: int, task_id: int, copy_id: int) -> None:
        self.machine(machine_id).release(job_id, task_id, copy_id)
        self._busy_count -= 1

    # -- fair sharing ---------------------------------------------------------------

    def fair_share(
        self,
        job_ids: Sequence[int],
        demands: Dict[int, int],
        caps: Optional[Dict[int, Optional[int]]] = None,
        capacity: Optional[int] = None,
    ) -> Dict[int, int]:
        """Max-min fair allocation of slots to jobs.

        ``demands`` maps a job to how many slots it could use right now
        (pending tasks plus running copies); ``caps`` optionally limits a job
        (``JobSpec.max_slots``).  Slots a job cannot use are redistributed to
        the others, which is what lets a lone small job in an idle cluster
        become single-waved while a crowded cluster forces multi-waved runs.
        ``capacity`` overrides the number of slots available for sharing
        (used to model background utilisation from other tenants).
        """
        allocations = {job_id: 0 for job_id in job_ids}
        if not job_ids:
            return allocations
        caps = caps or {}

        def limit(job_id: int) -> int:
            cap = caps.get(job_id)
            demand = demands.get(job_id, 0)
            if cap is None:
                return demand
            return min(cap, demand)

        remaining = self.total_slots if capacity is None else max(0, capacity)
        active = [job_id for job_id in job_ids if limit(job_id) > 0]
        # Iteratively hand out equal shares, redistributing unused capacity.
        while remaining > 0 and active:
            share = max(1, remaining // len(active))
            progressed = False
            for job_id in list(active):
                if remaining <= 0:
                    break
                want = limit(job_id) - allocations[job_id]
                if want <= 0:
                    active.remove(job_id)
                    continue
                grant = min(share, want, remaining)
                if grant > 0:
                    allocations[job_id] += grant
                    remaining -= grant
                    progressed = True
                if allocations[job_id] >= limit(job_id):
                    active.remove(job_id)
            if not progressed:
                break
        return allocations

"""Cluster: machines, slots and fair-share allocation across jobs.

The cluster tracks which slots are busy, assigns newly launched copies to
machines, and recomputes each running job's slot allocation whenever the set
of running jobs changes.  Fair sharing is what makes jobs *multi-waved* (§2.1):
a job with 1000 tasks given 100 slots runs one tenth of its tasks at a time.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.simulator.machine import Machine
from repro.utils.rng import RngStream
from repro.utils.stats import median


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    The default of 200 machines with one slot each mirrors the paper's 200
    node EC2 deployment (each node contributing one task slot keeps the
    arithmetic of waves simple; ``slots_per_machine`` can be raised to model
    multi-slot nodes).
    """

    num_machines: int = 200
    slots_per_machine: int = 1
    heterogeneity: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if self.slots_per_machine <= 0:
            raise ValueError("slots_per_machine must be positive")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")

    @property
    def total_slots(self) -> int:
        return self.num_machines * self.slots_per_machine


class Cluster:
    """Runtime slot accounting and machine placement."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        rng = RngStream(config.seed, "cluster")
        self.machines: List[Machine] = []
        for machine_id in range(config.num_machines):
            if config.heterogeneity > 0:
                speed = rng.truncated_gauss(
                    1.0,
                    config.heterogeneity,
                    low=1.0 - config.heterogeneity,
                    high=1.0 + 2.0 * config.heterogeneity,
                )
            else:
                speed = 1.0
            self.machines.append(
                Machine(
                    machine_id=machine_id,
                    num_slots=config.slots_per_machine,
                    speed_factor=speed,
                )
            )
        self._machine_by_id: Dict[int, Machine] = {
            machine.machine_id: machine for machine in self.machines
        }
        self._placement_rng = rng.spawn("placement")
        # ``pick_machine`` runs once per copy launch; bind the stream's
        # underlying ``Random.choice`` to skip the passthrough wrapper.
        self._placement_choice = self._placement_rng._random.choice
        self._busy_count = 0
        # Flat columns over the machines (index == machine_id): the speed
        # column feeds placement-free duration math without touching Machine
        # objects, and the cached median is what oracle ``tnew`` snapshots
        # use instead of re-sorting 200 speeds per estimate.
        self.speed_column: array = array(
            "d", (machine.speed_factor for machine in self.machines)
        )
        self.median_speed: float = median(self.speed_column)
        # Busy-count-bucketed free-list: ``_busy_buckets[b]`` holds the ids of
        # machines with exactly ``b`` busy slots, kept sorted ascending.  The
        # lowest non-empty bucket below ``slots_per_machine`` *is* the
        # least-loaded candidate set ``pick_machine`` used to rebuild in
        # O(machines) per copy launch.
        self._busy_buckets: List[List[int]] = [
            [] for _ in range(config.slots_per_machine + 1)
        ]
        self._busy_buckets[0] = list(range(config.num_machines))

    def _move_bucket(self, machine_id: int, old_busy: int, new_busy: int) -> None:
        bucket = self._busy_buckets[old_busy]
        del bucket[bisect_left(bucket, machine_id)]
        insort(self._busy_buckets[new_busy], machine_id)

    # -- capacity ---------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.config.total_slots

    @property
    def busy_slots(self) -> int:
        return self._busy_count

    @property
    def free_slots(self) -> int:
        return self.total_slots - self.busy_slots

    def has_free_slot(self) -> bool:
        return self.free_slots > 0

    def utilization(self) -> float:
        """Fraction of slots currently busy, in [0, 1]."""
        if self.total_slots == 0:
            return 0.0
        return self.busy_slots / self.total_slots

    # -- placement --------------------------------------------------------------

    def machine(self, machine_id: int) -> Machine:
        return self._machine_by_id[machine_id]

    def pick_machine(self) -> Optional[Machine]:
        """Pick a machine with a free slot, randomly among the least loaded.

        Random placement among least-loaded machines approximates the data
        locality-agnostic placement the paper's prototypes use for
        speculative copies.
        """
        # The lowest non-empty bucket (below the per-machine slot count) is
        # exactly the old least-loaded candidate list, already sorted by
        # machine id; ``random.choice`` consumes randomness as a function of
        # the sequence *length* only, so the draw is identical to picking
        # from the materialised Machine list.
        buckets = self._busy_buckets
        for busy in range(self.config.slots_per_machine):
            bucket = buckets[busy]
            if bucket:
                return self._machine_by_id[self._placement_choice(bucket)]
        return None

    def occupy(self, machine_id: int, job_id: int, task_id: int, copy_id: int) -> None:
        machine = self._machine_by_id[machine_id]
        busy = machine.busy_slots
        machine.occupy(job_id, task_id, copy_id)
        self._busy_count += 1
        self._move_bucket(machine_id, busy, busy + 1)

    def release(self, machine_id: int, job_id: int, task_id: int, copy_id: int) -> None:
        machine = self._machine_by_id[machine_id]
        busy = machine.busy_slots
        machine.release(job_id, task_id, copy_id)
        self._busy_count -= 1
        self._move_bucket(machine_id, busy, busy - 1)

    # -- fair sharing ---------------------------------------------------------------

    def fair_share(
        self,
        job_ids: Sequence[int],
        demands: Dict[int, int],
        caps: Optional[Dict[int, Optional[int]]] = None,
        capacity: Optional[int] = None,
    ) -> Dict[int, int]:
        """Max-min fair allocation of slots to jobs.

        ``demands`` maps a job to how many slots it could use right now
        (pending tasks plus running copies); ``caps`` optionally limits a job
        (``JobSpec.max_slots``).  Slots a job cannot use are redistributed to
        the others, which is what lets a lone small job in an idle cluster
        become single-waved while a crowded cluster forces multi-waved runs.
        ``capacity`` overrides the number of slots available for sharing
        (used to model background utilisation from other tenants).
        """
        if not job_ids:
            return {}
        caps = caps or {}

        # Precompute each job's effective limit once; the convergence loop
        # below reads it O(rounds) times per job.
        limits: Dict[int, int] = {}
        for job_id in job_ids:
            cap = caps.get(job_id)
            demand = demands.get(job_id, 0)
            limits[job_id] = demand if cap is None else min(cap, demand)
        return self.fair_share_limits(limits, capacity=capacity)

    def fair_share_limits(
        self, limits: Dict[int, int], capacity: Optional[int] = None
    ) -> Dict[int, int]:
        """Max-min fair allocation from precomputed per-job limits.

        The core of :meth:`fair_share`, exposed for callers (the engine's
        allocation pass) that already know each job's effective limit
        (``min(cap, demand)``) and would otherwise rebuild the demand and
        cap dicts on every recompute.  Iteration order of ``limits`` is the
        sharing order, exactly as ``job_ids`` ordered the wrapper.
        """
        allocations = {job_id: 0 for job_id in limits}
        remaining = self.total_slots if capacity is None else max(0, capacity)
        # Insertion-ordered dict as the active set: O(1) removal of converged
        # jobs (the old list paid an O(n) ``list.remove`` per convergence)
        # with the same deterministic iteration order.
        active: Dict[int, None] = {
            job_id: None for job_id, limit in limits.items() if limit > 0
        }
        # Iteratively hand out equal shares, redistributing unused capacity.
        while remaining > 0 and active:
            share = max(1, remaining // len(active))
            progressed = False
            for job_id in list(active):
                if remaining <= 0:
                    break
                limit = limits[job_id]
                want = limit - allocations[job_id]
                if want <= 0:
                    active.pop(job_id, None)
                    continue
                grant = min(share, want, remaining)
                if grant > 0:
                    allocations[job_id] += grant
                    remaining -= grant
                    progressed = True
                if allocations[job_id] >= limit:
                    active.pop(job_id, None)
            if not progressed:
                break
        return allocations

"""GRASS reproduction: trimming stragglers in approximation analytics.

A faithful, simulator-backed reproduction of *GRASS: Trimming Stragglers in
Approximation Analytics* (NSDI 2014).  The public API re-exports the pieces a
downstream user typically needs:

* job/task modelling and approximation bounds (:mod:`repro.core`),
* the GS / RAS / GRASS speculation policies (:mod:`repro.core.policies`),
* the LATE / Mantri / oracle baselines (:mod:`repro.baselines`),
* the discrete-event cluster simulator (:mod:`repro.simulator`),
* synthetic workload generation (:mod:`repro.workload`),
* the analytic model of Appendix A (:mod:`repro.model`),
* the experiment harness regenerating every figure (:mod:`repro.experiments`).

Quick start::

    from repro import (
        ApproximationBound, GrassConfig, Grass, Simulation, SimulationConfig,
        WorkloadConfig, generate_workload,
    )

    workload = generate_workload(WorkloadConfig(num_jobs=50, seed=1))
    metrics = Simulation(SimulationConfig(), Grass(), workload.specs()).run()
    print(metrics.summary())
"""

from repro.baselines import LatePolicy, MantriPolicy, NoSpeculationPolicy, OraclePolicy
from repro.core.bounds import ApproximationBound, BoundType
from repro.core.estimators import EstimatorConfig, TaskEstimator
from repro.core.job import Job, JobPhaseSpec, JobResult, JobSpec, job_bin_label
from repro.core.policies import (
    Grass,
    GrassConfig,
    GreedySpeculative,
    ResourceAwareSpeculative,
    SampleStore,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
)
from repro.core.task import CopyState, Task, TaskCopy, TaskSpec, TaskState
from repro.simulator import (
    Cluster,
    ClusterConfig,
    MetricsCollector,
    Simulation,
    SimulationConfig,
    StragglerConfig,
    StragglerModel,
)
from repro.workload.synthetic import (
    GeneratedWorkload,
    SyntheticWorkloadGenerator,
    WorkloadConfig,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # bounds and jobs
    "ApproximationBound",
    "BoundType",
    "Job",
    "JobSpec",
    "JobPhaseSpec",
    "JobResult",
    "job_bin_label",
    "Task",
    "TaskSpec",
    "TaskCopy",
    "TaskState",
    "CopyState",
    # estimators
    "EstimatorConfig",
    "TaskEstimator",
    # policies
    "SpeculationPolicy",
    "SchedulingView",
    "TaskSnapshot",
    "GreedySpeculative",
    "ResourceAwareSpeculative",
    "Grass",
    "GrassConfig",
    "SampleStore",
    # baselines
    "LatePolicy",
    "MantriPolicy",
    "NoSpeculationPolicy",
    "OraclePolicy",
    # simulator
    "Cluster",
    "ClusterConfig",
    "Simulation",
    "SimulationConfig",
    "StragglerConfig",
    "StragglerModel",
    "MetricsCollector",
    # workload
    "WorkloadConfig",
    "SyntheticWorkloadGenerator",
    "GeneratedWorkload",
    "generate_workload",
]

"""DAG-of-tasks helpers (§5.2).

Jobs are DAGs of phases: input tasks (map / extract) read from storage and
intermediate tasks (reduce / join) aggregate their outputs.  The core
:class:`~repro.core.job.Job` already models phases; this package provides
convenience builders for common DAG shapes and the deadline-apportioning
helper the engine uses to derive the input-phase deadline.
"""

from repro.dag.builder import (
    chain_job,
    estimate_intermediate_time,
    map_only_job,
    map_reduce_job,
)

__all__ = [
    "map_only_job",
    "map_reduce_job",
    "chain_job",
    "estimate_intermediate_time",
]

"""Builders for common job DAG shapes and deadline apportioning (§5.2)."""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.bounds import ApproximationBound
from repro.core.job import JobPhaseSpec, JobSpec
from repro.utils.stats import median


def map_only_job(
    job_id: int,
    task_works: Sequence[float],
    bound: ApproximationBound,
    arrival_time: float = 0.0,
    max_slots: Optional[int] = None,
    name: str = "",
) -> JobSpec:
    """A single-phase job: only input tasks (a pure map / extract job)."""
    phase = JobPhaseSpec(phase_index=0, task_works=tuple(task_works))
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival_time,
        phases=(phase,),
        bound=bound,
        name=name or f"map-only-{job_id}",
        max_slots=max_slots,
    )


def map_reduce_job(
    job_id: int,
    map_works: Sequence[float],
    reduce_works: Sequence[float],
    bound: ApproximationBound,
    arrival_time: float = 0.0,
    max_slots: Optional[int] = None,
    name: str = "",
) -> JobSpec:
    """A two-phase job: input (map) tasks followed by intermediate (reduce) tasks."""
    phases = (
        JobPhaseSpec(phase_index=0, task_works=tuple(map_works)),
        JobPhaseSpec(phase_index=1, task_works=tuple(reduce_works)),
    )
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival_time,
        phases=phases,
        bound=bound,
        name=name or f"map-reduce-{job_id}",
        max_slots=max_slots,
    )


def chain_job(
    job_id: int,
    input_works: Sequence[float],
    intermediate_phase_works: Sequence[Sequence[float]],
    bound: ApproximationBound,
    arrival_time: float = 0.0,
    max_slots: Optional[int] = None,
    name: str = "",
) -> JobSpec:
    """A chain DAG of arbitrary length: one input phase, N intermediate phases.

    Figure 9 varies the DAG length between 2 and 6; this builder constructs
    those jobs directly.
    """
    phases = [JobPhaseSpec(phase_index=0, task_works=tuple(input_works))]
    for offset, works in enumerate(intermediate_phase_works, start=1):
        phases.append(JobPhaseSpec(phase_index=offset, task_works=tuple(works)))
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival_time,
        phases=tuple(phases),
        bound=bound,
        name=name or f"chain-{job_id}",
        max_slots=max_slots,
    )


def estimate_intermediate_time(spec: JobSpec, allocation: int) -> float:
    """Estimated total time of every intermediate phase (§5.2).

    Intermediate tasks "perform similar functions across jobs" and "have
    relatively fewer stragglers", so a wave count times the median task work
    is the estimate both the paper and the engine use when apportioning a
    deadline between the input phase and the rest of the DAG.
    """
    if allocation <= 0:
        raise ValueError("allocation must be positive")
    total = 0.0
    for phase in spec.intermediate_phases:
        waves = math.ceil(phase.task_count / allocation)
        total += waves * median(list(phase.task_works))
    return total

"""Always-on multi-tenant replay service.

GRASS exists to serve *interactive* approximation queries — the paper's
production setting is Bing/Facebook clusters answering live analytics under
deadline/error bounds — yet everything else in this repo is an offline batch
CLI invocation.  This package promotes the library into a long-running
service:

* :mod:`repro.service.protocol` — the JSONL wire protocol: clients submit
  :class:`~repro.experiments.plan.ReplayPlan` objects as JSON and receive
  per-shard :class:`~repro.simulator.sinks.StreamingAggregates` delta
  chunks, ending with the policy-tagged metrics digest.
* :mod:`repro.service.admission` — weighted fair-share admission across
  tenants (the intra-simulation fair scheduler, one level up): per-tenant
  bounded queues, a bounded total backlog, and explicit 429-style rejection
  under overload — never unbounded buffering.
* :mod:`repro.service.server` — the asyncio front end multiplexing accepted
  plans onto the blocking executor machinery through
  :class:`~repro.experiments.executor.AsyncBridge`.
* :mod:`repro.service.client` — an asyncio client (plus sync helpers) that
  submits plans, collects streamed deltas and re-derives the digest
  client-side, so "streamed == offline" is verifiable end to end.
* :mod:`repro.service.load` — the load driver behind the CI service-smoke
  and the ``service-load`` benchmark: N concurrent tenants, digest parity
  against offline ``execute(plan)``, and an overload burst asserting
  explicit rejections.

Start a server with ``grass-experiments serve``; see the README's
"Replay service" section for a quickstart.
"""

from repro.service.admission import AdmissionRejected, FairShareAdmission
from repro.service.client import PlanOutcome, ReplayServiceClient, run_plan_sync
from repro.service.server import ReplayService, ServiceConfig

__all__ = [
    "AdmissionRejected",
    "FairShareAdmission",
    "PlanOutcome",
    "ReplayService",
    "ReplayServiceClient",
    "ServiceConfig",
    "run_plan_sync",
]

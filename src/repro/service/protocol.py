"""JSONL wire protocol of the replay service.

One JSON object per line, UTF-8, ``\\n``-terminated — the same framing the
trace files use, chosen so a session is debuggable with ``nc`` and a pair of
eyes.  Requests carry an ``op`` field, responses an ``event`` field:

Requests (client → server)
    ``{"op": "submit", "tenant": "...", "plan": {...}}``
        Submit a :class:`~repro.experiments.plan.ReplayPlan` (its
        ``to_wire()`` dict).  Answered *immediately* with ``accepted`` or
        ``rejected`` — admission is synchronous, execution is not.
    ``{"op": "ping"}``
        Liveness probe; answered with ``pong``.

Responses (server → client)
    ``{"event": "accepted", "id": N, "tenant": "..."}``
        The plan passed validation and admission; ``id`` tags every later
        message about it.
    ``{"event": "rejected", "code": 400|429, "reason": "..."}``
        400 = the plan itself is invalid (:class:`PlanError` text);
        429 = admission control refused it under overload.  Nothing further
        follows for this submission.
    ``{"event": "delta", "id": N, "policy": p, "seed": s, "shard": k,
    "chunk": {...}}``
        One completed (policy, seed, shard) simulation's aggregate chunk
        (:func:`~repro.simulator.sinks.chunk_to_wire`), streamed as soon as
        the simulation lands.  Exactly ``policies × seeds × shards`` deltas
        precede ``done``.
    ``{"event": "done", "id": N, "digest": "...", "num_jobs": ...,
    "num_shards": ..., "policies": [...], "seeds": [...],
    "truncated_jobs": ..., "elapsed_ms": ...}``
        The plan finished; ``digest`` is the policy-tagged metrics digest
        and ``policies``/``seeds``/``num_shards`` give the deterministic
        merge order, so a client can refold its received deltas and verify
        the digest without trusting the server.  When the plan ran with a
        replay cache the frame also carries a ``cache`` object with the
        hit/miss/bytes counters for the run.
    ``{"event": "error", "id": N, "reason": "..."}``
        The plan was accepted but execution failed (unreadable trace,
        malformed rows, ...); terminal for this submission.
    ``{"event": "pong"}``

Deltas for one submission arrive in simulation *completion* order, which
under ``workers > 1`` is not the merge order — each delta therefore carries
its full (policy, seed, shard) coordinates and reassembly is
order-independent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Hard cap on one JSONL frame.  A delta is a constant-size aggregate chunk
#: (a few KB); anything near this limit is a malformed or hostile line.
MAX_LINE_BYTES = 1_048_576


class ProtocolError(ValueError):
    """A frame violated the wire protocol; ``str(exc)`` is the reason."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as a compact JSONL frame (sorted keys, trailing newline)."""
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one received frame, enforcing the size and shape guards."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


# -- message constructors (single source of field names) ---------------------------


def submit_message(tenant: str, plan_wire: Dict[str, Any]) -> Dict[str, Any]:
    return {"op": "submit", "tenant": tenant, "plan": plan_wire}


def ping_message() -> Dict[str, Any]:
    return {"op": "ping"}


def accepted_message(request_id: int, tenant: str) -> Dict[str, Any]:
    return {"event": "accepted", "id": request_id, "tenant": tenant}


def rejected_message(code: int, reason: str) -> Dict[str, Any]:
    return {"event": "rejected", "code": code, "reason": reason}


def delta_message(
    request_id: int, policy: str, seed: int, shard: int, chunk_wire: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "event": "delta",
        "id": request_id,
        "policy": policy,
        "seed": seed,
        "shard": shard,
        "chunk": chunk_wire,
    }


def done_message(
    request_id: int,
    digest: str,
    num_jobs: int,
    num_shards: int,
    policies: List[str],
    seeds: List[int],
    truncated_jobs: int,
    elapsed_ms: float,
    cache: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    message = {
        "event": "done",
        "id": request_id,
        "digest": digest,
        "num_jobs": num_jobs,
        "num_shards": num_shards,
        "policies": policies,
        "seeds": seeds,
        "truncated_jobs": truncated_jobs,
        "elapsed_ms": elapsed_ms,
    }
    if cache is not None:
        # Replay-cache counters for the execution (hits/misses/stores/bytes/
        # evictions); only present when the plan ran with a cache.
        message["cache"] = cache
    return message


def error_message(request_id: Optional[int], reason: str) -> Dict[str, Any]:
    return {"event": "error", "id": request_id, "reason": reason}


def pong_message() -> Dict[str, Any]:
    return {"event": "pong"}

"""Client for the replay service, with client-side digest verification.

:class:`ReplayServiceClient` speaks the JSONL protocol over an asyncio
connection; :func:`run_plan_sync` wraps one submission in ``asyncio.run``
for scripts and tests that live outside an event loop.

The distinguishing feature is that the client does not have to *trust* the
server's digest: every streamed delta carries its (policy, seed, shard)
coordinates and its chunk's rolling sha256, the ``done`` message carries
the deterministic merge order, and :meth:`PlanOutcome.client_digest`
refolds the received chunks through the same
:func:`~repro.simulator.sinks.fold_run_digests` the offline path uses.
``outcome.verify()`` therefore proves the streamed aggregates are
byte-equivalent to an offline ``execute(plan)`` — the service's parity
contract, checked end to end on every session that cares to.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.plan import ReplayPlan
from repro.service import protocol
from repro.simulator.sinks import (
    AggregateChunk,
    StreamingAggregates,
    chunk_from_wire,
    fold_run_digests,
)


class ServiceError(RuntimeError):
    """The server reported an execution error or violated the protocol."""


class PlanRejected(RuntimeError):
    """The server refused a submission; mirrors the ``rejected`` frame."""

    def __init__(self, code: int, reason: str) -> None:
        super().__init__(f"rejected ({code}): {reason}")
        self.code = code
        self.reason = reason


@dataclass
class DeltaRecord:
    """One streamed (policy, seed, shard) aggregate chunk."""

    policy: str
    seed: int
    shard: int
    chunk: AggregateChunk
    #: Seconds from submission to this delta's arrival at the client.
    latency_seconds: float


@dataclass
class PlanOutcome:
    """Everything one completed submission streamed back."""

    request_id: int
    tenant: str
    plan: ReplayPlan
    #: The server's policy-tagged metrics digest.
    digest: str
    num_jobs: int
    num_shards: int
    #: Policies in merge (report) order, echoed by the server.
    policies: List[str]
    #: Resolved simulation seeds in merge order, echoed by the server.
    seeds: List[int]
    truncated_jobs: int
    #: Server-side execution time for the plan.
    elapsed_ms: float
    deltas: List[DeltaRecord] = field(default_factory=list)
    #: Client-observed submission→first-delta latency (None: no deltas).
    first_delta_seconds: Optional[float] = None
    #: Client-observed submission→done latency.
    total_seconds: float = 0.0
    #: Replay-cache counters from the ``done`` frame (None: no cache).
    cache: Optional[Dict[str, int]] = None

    def _ordered_chunks(self) -> Dict[Tuple[str, int, int], AggregateChunk]:
        by_key = {(d.policy, d.seed, d.shard): d.chunk for d in self.deltas}
        expected = {
            (policy, seed, shard)
            for policy in self.policies
            for seed in self.seeds
            for shard in range(self.num_shards)
        }
        missing = expected - set(by_key)
        surplus = set(by_key) - expected
        if missing or surplus:
            raise ServiceError(
                f"delta set does not match plan fan-out: {len(missing)} missing, "
                f"{len(surplus)} unexpected"
            )
        return by_key

    def client_digest(self) -> str:
        """Refold the received deltas into the policy-tagged digest.

        Deltas arrive in completion order; this reorders them into the
        deterministic (policy, seed, shard) merge order the server (and the
        offline path) folds in, using only the coordinates on the wire.
        """
        by_key = self._ordered_chunks()
        return fold_run_digests(
            (
                policy,
                [
                    by_key[(policy, seed, shard)].digest
                    for seed in self.seeds
                    for shard in range(self.num_shards)
                ],
            )
            for policy in self.policies
        )

    def aggregates_for(self, policy: str) -> StreamingAggregates:
        """The policy's merged aggregates, reassembled from deltas."""
        by_key = self._ordered_chunks()
        return StreamingAggregates(
            chunks=tuple(
                by_key[(policy, seed, shard)]
                for seed in self.seeds
                for shard in range(self.num_shards)
            )
        )

    def verify(self) -> str:
        """Check client digest == server digest; returns it or raises."""
        refolded = self.client_digest()
        if refolded != self.digest:
            raise ServiceError(
                f"digest mismatch: server {self.digest}, client refold {refolded}"
            )
        return refolded


class ReplayServiceClient:
    """One JSONL connection to a replay service (one tenant session)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ReplayServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def _send(self, message: Dict[str, object]) -> None:
        assert self._writer is not None, "not connected"
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()

    async def _receive(self) -> Dict[str, object]:
        assert self._reader is not None, "not connected"
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return protocol.decode_message(line)

    async def ping(self) -> None:
        await self._send(protocol.ping_message())
        reply = await self._receive()
        if reply.get("event") != "pong":
            raise ServiceError(f"expected pong, got {reply!r}")

    async def run_plan(self, plan: ReplayPlan, tenant: str) -> PlanOutcome:
        """Submit ``plan`` and collect its stream through ``done``.

        Raises :class:`PlanRejected` on a ``rejected`` answer and
        :class:`ServiceError` on an ``error`` event or protocol violation.
        """
        submitted_at = time.perf_counter()
        await self._send(protocol.submit_message(tenant, plan.to_wire()))
        request_id: Optional[int] = None
        deltas: List[DeltaRecord] = []
        first_delta: Optional[float] = None
        while True:
            message = await self._receive()
            event = message.get("event")
            if event == "rejected":
                raise PlanRejected(int(message["code"]), str(message["reason"]))
            if event == "accepted":
                request_id = int(message["id"])
                continue
            if event == "pong":
                continue
            if message.get("id") != request_id:
                # A frame for another submission on a shared connection;
                # this client runs one plan at a time, so this is a bug.
                raise ServiceError(f"frame for unexpected id: {message!r}")
            if event == "delta":
                now = time.perf_counter()
                if first_delta is None:
                    first_delta = now - submitted_at
                deltas.append(
                    DeltaRecord(
                        policy=str(message["policy"]),
                        seed=int(message["seed"]),
                        shard=int(message["shard"]),
                        chunk=chunk_from_wire(message["chunk"]),
                        latency_seconds=now - submitted_at,
                    )
                )
            elif event == "error":
                raise ServiceError(str(message["reason"]))
            elif event == "done":
                return PlanOutcome(
                    request_id=request_id if request_id is not None else -1,
                    tenant=tenant,
                    plan=plan,
                    digest=str(message["digest"]),
                    num_jobs=int(message["num_jobs"]),
                    num_shards=int(message["num_shards"]),
                    policies=[str(p) for p in message["policies"]],
                    seeds=[int(s) for s in message["seeds"]],
                    truncated_jobs=int(message["truncated_jobs"]),
                    elapsed_ms=float(message["elapsed_ms"]),
                    deltas=deltas,
                    first_delta_seconds=first_delta,
                    total_seconds=time.perf_counter() - submitted_at,
                    cache=message.get("cache"),
                )
            else:
                raise ServiceError(f"unknown event {event!r}")


def run_plan_sync(host: str, port: int, plan: ReplayPlan, tenant: str) -> PlanOutcome:
    """Connect, run one plan, disconnect — for synchronous callers."""

    async def _run() -> PlanOutcome:
        async with ReplayServiceClient(host, port) as client:
            return await client.run_plan(plan, tenant)

    return asyncio.run(_run())

"""The always-on replay service: asyncio front end over the blocking engine.

One event-loop thread owns every socket, the admission scheduler and the
dispatcher; plan execution happens on the bounded
:class:`~repro.experiments.executor.AsyncBridge` thread pool (which may
itself fan out over a ``ParallelExecutor`` process pool, per the plan's
``workers``).  The loop never blocks on a simulation, so fifty tenants can
hold open streaming sessions against a two-slot execution pool.

Life of a submission:

1. The connection reader decodes a ``submit`` frame, builds the
   :class:`~repro.experiments.plan.ReplayPlan` with ``from_wire`` and
   validates it — an invalid plan is answered ``rejected(400)`` without
   ever touching the scheduler.
2. :class:`~repro.service.admission.FairShareAdmission` either enqueues it
   (→ ``accepted``) or refuses it (→ ``rejected(429)``).  Both answers are
   written before the reader looks at the next frame, so a client always
   learns a submission's fate immediately.
3. The dispatcher task pops submissions in weighted fair-share order
   whenever an execution slot is free and runs
   :func:`repro.experiments.runner.execute` on the bridge pool.  The
   ``on_metrics`` hook fires in the worker thread as each (policy, seed,
   shard) simulation lands; its chunk is serialised there and marshalled to
   the loop with ``call_soon_threadsafe``, which preserves per-submission
   delta order and makes the outbox queue safe.
4. ``done`` carries the policy-tagged digest plus the merge-order metadata
   (policies, seeds, shard count) a client needs to refold its deltas and
   verify the digest independently.

Per-connection writes go through an outbox queue drained by a writer task —
the reader never awaits a slow peer's socket, and deltas from concurrently
executing submissions interleave cleanly on one connection.

With a replay cache configured (``--cache``), a submission whose every
(policy, seed, shard) slice is already stored is answered *before*
admission: the reader probes the cache synchronously on the loop thread
(pure disk reads, no simulation), streams the restored deltas and the
``done`` frame, and never debits the tenant's fair share — repeated plans
cost milliseconds instead of an execution slot.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.experiments.cache import ReplayCache
from repro.experiments.executor import AsyncBridge
from repro.experiments.plan import PlanError, ReplayPlan
from repro.experiments.runner import execute, plan_scale, probe_plan_cache
from repro.service import protocol
from repro.service.admission import (
    REJECT_BAD_PLAN,
    AdmissionRejected,
    FairShareAdmission,
)
from repro.simulator.sinks import chunk_to_wire
from repro.workload.traces import TraceFormatError

logger = logging.getLogger(__name__)


def _parse_weight(spec: str) -> Tuple[str, float]:
    tenant, _, raw = spec.partition("=")
    if not tenant or not raw:
        raise ValueError(f"weight must look like TENANT=FLOAT, got {spec!r}")
    return tenant, float(raw)


@dataclass
class ServiceConfig:
    """Tunables of one service instance; defaults suit tests and smokes."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (``start`` returns the real one).
    port: int = 0
    #: Plans executing concurrently — the bridge pool's thread count.
    max_inflight_plans: int = 2
    #: Per-tenant pending-submission bound (beyond in-flight ones).
    max_pending_per_tenant: int = 4
    #: Service-wide pending-submission bound.
    max_pending_total: int = 16
    #: Fair-share weights per tenant; unlisted tenants get ``default_weight``.
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: Content-addressed replay cache directory; ``None`` disables caching.
    #: Injected into every submitted plan that does not name its own cache.
    cache_dir: Optional[str] = None


@dataclass
class _Connection:
    """One client connection: its writer, outbox and liveness flag."""

    writer: asyncio.StreamWriter
    outbox: "asyncio.Queue[Optional[bytes]]"
    open: bool = True

    def send(self, message: Dict[str, Any]) -> None:
        if self.open:
            self.outbox.put_nowait(protocol.encode_message(message))


@dataclass(eq=False)  # identity semantics: tracked in a set while dispatched
class _Submission:
    """An admitted plan waiting for (or holding) an execution slot."""

    request_id: int
    tenant: str
    plan: ReplayPlan
    connection: _Connection
    submitted_at: float
    #: Virtual-time charge debited at dispatch; refunded on disconnect.
    cost: float = 0.0


class ReplayService:
    """The multi-tenant replay server; see the module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._admission = FairShareAdmission(
            max_pending_per_tenant=self.config.max_pending_per_tenant,
            max_pending_total=self.config.max_pending_total,
            weights=self.config.tenant_weights,
            default_weight=self.config.default_weight,
        )
        self._bridge: Optional[AsyncBridge] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        # Created in start(): binding an Event outside the serving loop
        # breaks on Python 3.8, where primitives capture the current loop.
        self._wakeup: Optional[asyncio.Event] = None
        self._inflight = 0
        self._next_id = 1
        self._tasks: Set[asyncio.Task] = set()
        # Loop-thread cache handle, used only for synchronous full-hit
        # probes in _handle_submit.  Worker-thread executions build their
        # own ReplayCache from plan.cache — the store is multi-process
        # safe, the in-memory LRU is not.
        self._cache: Optional[ReplayCache] = (
            ReplayCache(self.config.cache_dir)
            if self.config.cache_dir is not None
            else None
        )
        #: Dispatched-but-unfinished submissions, so a dropped connection
        #: can refund their admission debits.
        self._live: Set[_Submission] = set()
        #: Served-plan counters, for smoke assertions and logs.
        self.completed_plans = 0
        self.failed_plans = 0
        self.rejected_submissions = 0
        #: Plans answered entirely from the replay cache (no admission).
        self.cached_plans = 0
        #: Submissions cancelled or refunded because their client vanished.
        self.released_submissions = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._wakeup = asyncio.Event()
        self._bridge = AsyncBridge(max_concurrent=self.config.max_inflight_plans)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel the dispatcher and release the bridge.

        In-flight simulations on bridge threads are not interrupted (Python
        threads cannot be); their results are simply dropped.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for task in list(self._tasks):
            task.cancel()
        if self._bridge is not None:
            self._bridge.shutdown(wait=False)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer=writer, outbox=asyncio.Queue())
        writer_task = asyncio.ensure_future(self._drain_outbox(connection))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                if line.strip():
                    self._handle_frame(connection, line)
        finally:
            connection.open = False
            self._release_connection(connection)
            connection.outbox.put_nowait(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _release_connection(self, connection: _Connection) -> None:
        """Give back what a vanished client's submissions were holding.

        Pending submissions are cancelled outright — they were never
        dispatched, so they only occupied backlog slots.  Dispatched ones
        cannot be interrupted (the simulation runs on a bridge thread), but
        their results now go nowhere, so the tenant's virtual-time debit is
        refunded; without this a tenant that disconnects mid-plan would
        keep paying fair share for work the service threw away.
        """
        cancelled = self._admission.cancel_where(
            lambda item: isinstance(item, _Submission) and item.connection is connection
        )
        refunded = 0
        for submission in sorted(self._live, key=lambda s: s.request_id):
            if submission.connection is connection:
                self._admission.refund(submission.tenant, submission.cost)
                refunded += 1
        if cancelled or refunded:
            self.released_submissions += len(cancelled) + refunded
            logger.warning(
                "connection dropped before done: cancelled %d pending, "
                "refunded %d in-flight submission(s)",
                len(cancelled),
                refunded,
            )

    async def _drain_outbox(self, connection: _Connection) -> None:
        while True:
            frame = await connection.outbox.get()
            if frame is None:
                return
            try:
                connection.writer.write(frame)
                await connection.writer.drain()
            except (ConnectionError, OSError):
                connection.open = False
                return

    def _handle_frame(self, connection: _Connection, line: bytes) -> None:
        try:
            message = protocol.decode_message(line)
        except protocol.ProtocolError as exc:
            connection.send(protocol.rejected_message(REJECT_BAD_PLAN, str(exc)))
            return
        op = message.get("op")
        if op == "ping":
            connection.send(protocol.pong_message())
        elif op == "submit":
            self._handle_submit(connection, message)
        else:
            connection.send(
                protocol.rejected_message(REJECT_BAD_PLAN, f"unknown op {op!r}")
            )

    def _handle_submit(self, connection: _Connection, message: Dict[str, Any]) -> None:
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            connection.send(
                protocol.rejected_message(
                    REJECT_BAD_PLAN, "submit needs a non-empty string 'tenant'"
                )
            )
            return
        try:
            plan = ReplayPlan.from_wire(message.get("plan")).validate()
        except PlanError as exc:
            connection.send(protocol.rejected_message(REJECT_BAD_PLAN, str(exc)))
            return
        if plan.cache is None and self.config.cache_dir is not None:
            plan = replace(plan, cache=self.config.cache_dir)
        if plan.cache is not None and self._answer_from_cache(connection, tenant, plan):
            return
        scale = plan_scale(plan)
        # Charge the plan's fan-out: tenants pay virtual time in proportion
        # to the simulations they request, not the frames they send.
        cost = float(len(plan.policies) * len(scale.seeds) * plan.shards)
        submission = _Submission(
            request_id=self._next_id,
            tenant=tenant,
            plan=plan,
            connection=connection,
            submitted_at=time.perf_counter(),
            cost=cost,
        )
        try:
            self._admission.submit(tenant, submission, cost=cost)
        except AdmissionRejected as exc:
            self.rejected_submissions += 1
            connection.send(protocol.rejected_message(exc.code, exc.reason))
            return
        self._next_id += 1
        connection.send(protocol.accepted_message(submission.request_id, tenant))
        assert self._wakeup is not None, "service not started"
        self._wakeup.set()

    def _answer_from_cache(
        self, connection: _Connection, tenant: str, plan: ReplayPlan
    ) -> bool:
        """Serve ``plan`` from the replay cache, before any admission debit.

        Returns ``True`` only when *every* (policy, seed, shard) slice was
        restored — the probe never simulates, so a full hit costs a few
        disk reads and the tenant's fair share is untouched.  Any probe
        trouble (unreadable store, missing trace, partial hit) falls back
        to the normal admitted path, whose error frames are authoritative.
        """
        cache = self._cache if plan.cache == self.config.cache_dir else None
        # The shared cache's counters span the service's lifetime; snapshot
        # them so the done frame reports this request's activity only.
        before = cache.counters.as_dict() if cache is not None else None
        request_id = self._next_id
        deltas: List[Tuple[str, int, int, Dict[str, Any]]] = []

        def buffer_delta(policy: str, seed: int, shard: int, metrics: Any) -> None:
            deltas.append(
                (policy, seed, shard, chunk_to_wire(metrics.aggregates.chunks[-1]))
            )

        started = time.perf_counter()
        try:
            executed = probe_plan_cache(plan, cache=cache, on_metrics=buffer_delta)
        except asyncio.CancelledError:
            raise
        except Exception:
            return False
        if executed is None:
            return False
        self._next_id += 1
        self.cached_plans += 1
        self.completed_plans += 1
        stats = (
            executed.cache_stats.as_dict() if executed.cache_stats is not None else None
        )
        if stats is not None and before is not None:
            stats = {key: value - before.get(key, 0) for key, value in stats.items()}
        scale = plan_scale(plan)
        connection.send(protocol.accepted_message(request_id, tenant))
        for policy, seed, shard, chunk_wire in deltas:
            connection.send(protocol.delta_message(request_id, policy, seed, shard, chunk_wire))
        connection.send(
            protocol.done_message(
                request_id=request_id,
                digest=executed.digest,
                num_jobs=executed.num_jobs,
                num_shards=executed.num_shards,
                policies=list(plan.policies),
                seeds=list(scale.seeds),
                truncated_jobs=executed.truncated_jobs,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
                cache=stats,
            )
        )
        return True

    # -- dispatch and execution ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._inflight < self.config.max_inflight_plans:
                picked = self._admission.next()
                if picked is None:
                    break
                _tenant, submission = picked
                self._inflight += 1
                self._live.add(submission)
                task = asyncio.ensure_future(self._run_submission(submission))
                self._tasks.add(task)
                task.add_done_callback(self._on_submission_done)

    def _on_submission_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        self._inflight -= 1
        if self._wakeup is not None:
            self._wakeup.set()
        if not task.cancelled():
            task.exception()  # mark retrieved; _run_submission reports itself

    async def _run_submission(self, submission: _Submission) -> None:
        connection = submission.connection
        emit = AsyncBridge.loop_callback(self._emit_delta)
        request_id = submission.request_id

        def on_metrics(policy: str, seed: int, shard: int, metrics: Any) -> None:
            # Worker thread: serialise here (cheap, constant-size), marshal
            # the finished frame fields to the loop.
            chunk_wire = chunk_to_wire(metrics.aggregates.chunks[-1])
            emit(connection, request_id, policy, seed, shard, chunk_wire)

        assert self._bridge is not None
        started = time.perf_counter()
        try:
            executed = await self._bridge.submit(
                execute, submission.plan, on_metrics=on_metrics
            )
        except (PlanError, TraceFormatError, OSError) as exc:
            self.failed_plans += 1
            connection.send(
                protocol.error_message(
                    request_id, f"{type(exc).__name__}: {exc}"
                )
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # execution bug: report, keep serving
            self.failed_plans += 1
            connection.send(
                protocol.error_message(request_id, f"internal error: {exc!r}")
            )
            return
        finally:
            self._live.discard(submission)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        scale = plan_scale(submission.plan)
        self.completed_plans += 1
        connection.send(
            protocol.done_message(
                request_id=request_id,
                digest=executed.digest,
                num_jobs=executed.num_jobs,
                num_shards=executed.num_shards,
                policies=list(submission.plan.policies),
                seeds=list(scale.seeds),
                truncated_jobs=executed.truncated_jobs,
                elapsed_ms=elapsed_ms,
                cache=executed.cache_stats.as_dict()
                if executed.cache_stats is not None
                else None,
            )
        )

    def _emit_delta(
        self,
        connection: _Connection,
        request_id: int,
        policy: str,
        seed: int,
        shard: int,
        chunk_wire: Dict[str, Any],
    ) -> None:
        connection.send(
            protocol.delta_message(request_id, policy, seed, shard, chunk_wire)
        )


# -- CLI entry point (the ``grass-experiments serve`` verb) ------------------------


def build_serve_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    parser = parser or argparse.ArgumentParser(
        description="run the always-on multi-tenant replay service"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (default) binds an ephemeral port and prints it",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=2, metavar="N",
        help="plans executing concurrently (default 2)",
    )
    parser.add_argument(
        "--max-pending-per-tenant", type=int, default=4, metavar="N",
        help="pending submissions allowed per tenant before 429s (default 4)",
    )
    parser.add_argument(
        "--max-pending-total", type=int, default=16, metavar="N",
        help="pending submissions allowed service-wide before 429s (default 16)",
    )
    parser.add_argument(
        "--weight", action="append", default=[], metavar="TENANT=W",
        help="fair-share weight for a tenant (repeatable; default weight 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="content-addressed replay cache directory; fully cached plans "
        "are answered without debiting the tenant's fair share",
    )
    return parser


def serve_main(args: argparse.Namespace) -> int:
    try:
        weights = dict(_parse_weight(spec) for spec in args.weight)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight_plans=args.max_inflight,
        max_pending_per_tenant=args.max_pending_per_tenant,
        max_pending_total=args.max_pending_total,
        tenant_weights=weights,
        cache_dir=args.cache,
    )

    async def _serve() -> None:
        service = ReplayService(config)
        host, port = await service.start()
        print(f"listening on {host}:{port}", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Any] = None) -> int:
    return serve_main(build_serve_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

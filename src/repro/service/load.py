"""Load driver for the replay service: parity, throughput and overload.

``python -m repro.service.load`` drives N concurrent tenant sessions
against a replay service — an in-process one by default, or an external
server via ``--host``/``--port`` (as the CI service smoke does after
launching ``grass-experiments serve``).  Three properties are checked, and
the exit status reflects all of them:

* **parity** — every streamed plan's server digest, the client's refold of
  its deltas and an offline ``execute(plan)`` of the identical plan all
  agree byte-for-byte;
* **throughput/latency** — sustained completed plans/second and the
  p50/p99 of the client-observed submission→first-delta latency, the
  interactivity number an approximation-analytics service lives on;
* **overload** — an optional burst of rapid-fire submissions must draw at
  least one explicit 429-style rejection (admission control sheds load;
  it never buffers unboundedly or stalls silently).

The ``service-load`` benchmark imports :func:`run_load` directly and
records the same report into ``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.plan import ReplayPlan
from repro.experiments.runner import execute
from repro.service.client import PlanRejected, ReplayServiceClient
from repro.service.server import ReplayService, ServiceConfig
from repro.utils.stats import percentile

#: Plan used by the overload burst: the smallest valid streaming replay.
_BURST_PLAN = ReplayPlan(
    cluster_jobs=4,
    policies=("grass",),
    scale="quick",
    seeds=(1,),
    shards=1,
    stream_specs=True,
    sink="aggregate",
)


def build_plans(
    distinct_plans: int,
    cluster_jobs: int,
    shards: int,
    policies: Sequence[str],
    workers: int = 1,
) -> List[ReplayPlan]:
    """The distinct plans tenants cycle through (varied by tier seed)."""
    return [
        ReplayPlan(
            cluster_jobs=cluster_jobs,
            policies=tuple(policies),
            scale="quick",
            seeds=(1,),
            workers=workers,
            shards=shards,
            stream_specs=True,
            sink="aggregate",
            seed=index,
        ).validate()
        for index in range(distinct_plans)
    ]


def offline_digests(plans: Sequence[ReplayPlan]) -> List[str]:
    """The ground-truth digest of each plan, via offline ``execute``."""
    return [execute(plan).digest for plan in plans]


async def _tenant_session(
    host: str,
    port: int,
    tenant: str,
    plans: Sequence[Tuple[ReplayPlan, str]],
) -> List[Dict[str, Any]]:
    """Run this tenant's plans sequentially over one connection."""
    results: List[Dict[str, Any]] = []
    async with ReplayServiceClient(host, port) as client:
        for plan, expected_digest in plans:
            record: Dict[str, Any] = {"tenant": tenant}
            try:
                outcome = await client.run_plan(plan, tenant)
                outcome.verify()
                record["completed"] = True
                record["digest_ok"] = outcome.digest == expected_digest
                record["first_delta_seconds"] = outcome.first_delta_seconds
                record["total_seconds"] = outcome.total_seconds
            except PlanRejected as exc:
                record["completed"] = False
                record["rejected"] = True
                record["reason"] = exc.reason
            except Exception as exc:  # noqa: BLE001 - report, don't crash the drive
                record["completed"] = False
                record["rejected"] = False
                record["reason"] = f"{type(exc).__name__}: {exc}"
            results.append(record)
    return results


async def _burst_session(host: str, port: int, tenant: str) -> Dict[str, Any]:
    """Submit one tiny plan; classify the response (overload phase)."""
    try:
        async with ReplayServiceClient(host, port) as client:
            outcome = await client.run_plan(_BURST_PLAN, tenant)
            outcome.verify()
            return {"tenant": tenant, "completed": True, "rejected": False}
    except PlanRejected as exc:
        return {"tenant": tenant, "completed": False, "rejected": True, "code": exc.code}
    except Exception as exc:  # noqa: BLE001
        return {
            "tenant": tenant,
            "completed": False,
            "rejected": False,
            "reason": f"{type(exc).__name__}: {exc}",
        }


async def _drive(
    host: Optional[str],
    port: Optional[int],
    tenants: int,
    plans_per_tenant: int,
    plan_table: Sequence[Tuple[ReplayPlan, str]],
    overload_burst: int,
    max_inflight: int,
) -> Dict[str, Any]:
    service: Optional[ReplayService] = None
    if port is None:
        # Self-hosted: size admission so the steady-state drive never 429s
        # (rejections there would mean the driver, not the service, failed).
        service = ReplayService(
            ServiceConfig(
                max_inflight_plans=max_inflight,
                max_pending_per_tenant=plans_per_tenant + 2,
                max_pending_total=tenants * plans_per_tenant + 8,
            )
        )
        host, port = await service.start()
    assert host is not None and port is not None

    try:
        started = time.perf_counter()
        sessions = await asyncio.gather(
            *(
                _tenant_session(
                    host,
                    port,
                    f"tenant-{index}",
                    [
                        plan_table[(index + turn) % len(plan_table)]
                        for turn in range(plans_per_tenant)
                    ],
                )
                for index in range(tenants)
            )
        )
        elapsed = time.perf_counter() - started

        records = [record for session in sessions for record in session]
        completed = [r for r in records if r.get("completed")]
        first_deltas = [
            r["first_delta_seconds"]
            for r in completed
            if r.get("first_delta_seconds") is not None
        ]
        report: Dict[str, Any] = {
            "tenants": tenants,
            "plans": len(records),
            "completed": len(completed),
            "failed": len(records) - len(completed),
            "digest_mismatches": sum(1 for r in completed if not r["digest_ok"]),
            "elapsed_seconds": elapsed,
            "plans_per_second": len(completed) / elapsed if elapsed > 0 else 0.0,
            "first_delta_p50_seconds": percentile(first_deltas, 50) if first_deltas else None,
            "first_delta_p99_seconds": percentile(first_deltas, 99) if first_deltas else None,
            "total_p99_seconds": percentile(
                [r["total_seconds"] for r in completed], 99
            )
            if completed
            else None,
            "failures": [r for r in records if not r.get("completed")],
        }

        if overload_burst > 0:
            burst_host, burst_port = host, port
            tight: Optional[ReplayService] = None
            if service is not None:
                # Self-hosted: overload a deliberately tight second instance
                # so the steady-state server's sizing stays honest.
                tight = ReplayService(
                    ServiceConfig(
                        max_inflight_plans=1,
                        max_pending_per_tenant=1,
                        max_pending_total=2,
                    )
                )
                burst_host, burst_port = await tight.start()
            try:
                burst = await asyncio.gather(
                    *(
                        _burst_session(burst_host, burst_port, f"burst-{index}")
                        for index in range(overload_burst)
                    )
                )
            finally:
                if tight is not None:
                    await tight.stop()
            report["overload"] = {
                "submitted": overload_burst,
                "rejected": sum(1 for r in burst if r["rejected"]),
                "completed": sum(1 for r in burst if r["completed"]),
                "errors": [r for r in burst if not r["rejected"] and not r["completed"]],
            }
        else:
            report["overload"] = None
    finally:
        if service is not None:
            await service.stop()

    overload_ok = (
        report["overload"] is None
        or (
            report["overload"]["rejected"] >= 1
            and not report["overload"]["errors"]
        )
    )
    report["ok"] = (
        report["failed"] == 0 and report["digest_mismatches"] == 0 and overload_ok
    )
    return report


def run_load(
    tenants: int = 8,
    plans_per_tenant: int = 1,
    distinct_plans: int = 4,
    cluster_jobs: int = 12,
    shards: int = 2,
    policies: Sequence[str] = ("grass",),
    overload_burst: int = 0,
    host: Optional[str] = None,
    port: Optional[int] = None,
    max_inflight: int = 2,
) -> Dict[str, Any]:
    """Run the full drive (offline ground truth, then the service) and report.

    Synchronous on purpose: offline digests are computed before the event
    loop starts, then the async drive runs under ``asyncio.run``.
    """
    distinct_plans = max(1, min(distinct_plans, tenants * plans_per_tenant))
    plans = build_plans(distinct_plans, cluster_jobs, shards, policies)
    digests = offline_digests(plans)
    plan_table = list(zip(plans, digests))
    return asyncio.run(
        _drive(
            host,
            port,
            tenants,
            plans_per_tenant,
            plan_table,
            overload_burst,
            max_inflight,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="drive a replay service with concurrent tenants and "
        "verify digest parity, latency and overload shedding"
    )
    parser.add_argument("--tenants", type=int, default=8, metavar="N")
    parser.add_argument("--plans-per-tenant", type=int, default=1, metavar="N")
    parser.add_argument(
        "--distinct-plans", type=int, default=4, metavar="N",
        help="distinct plans tenants cycle through (default 4)",
    )
    parser.add_argument("--cluster-jobs", type=int, default=12, metavar="N")
    parser.add_argument("--shards", type=int, default=2, metavar="K")
    parser.add_argument(
        "--policy", action="append", default=None, metavar="NAME", dest="policies"
    )
    parser.add_argument(
        "--overload-burst", type=int, default=0, metavar="B",
        help="also rapid-fire B submissions and require explicit rejections",
    )
    parser.add_argument(
        "--host", default=None, help="drive an external server (with --port)"
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="external server port; omit to self-host in-process",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=2, metavar="N",
        help="self-hosted server's concurrent-plan slots (default 2)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write the report as JSON")
    args = parser.parse_args(argv)

    if args.host is not None and args.port is None:
        parser.error("--host needs --port")

    report = run_load(
        tenants=args.tenants,
        plans_per_tenant=args.plans_per_tenant,
        distinct_plans=args.distinct_plans,
        cluster_jobs=args.cluster_jobs,
        shards=args.shards,
        policies=tuple(args.policies) if args.policies else ("grass",),
        overload_burst=args.overload_burst,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")

    p99 = report["first_delta_p99_seconds"]
    print(
        f"service-load: {report['completed']}/{report['plans']} plans from "
        f"{report['tenants']} tenants in {report['elapsed_seconds']:.2f}s "
        f"({report['plans_per_second']:.2f} plans/s, p99 first delta "
        f"{p99:.3f}s)" if p99 is not None else "service-load: no plans completed"
    )
    print(f"digest parity: {report['plans'] - report['digest_mismatches']}/{report['plans']} ok")
    if report["overload"] is not None:
        overload = report["overload"]
        print(
            f"overload: {overload['rejected']}/{overload['submitted']} rejected, "
            f"{overload['completed']} completed"
        )
    if not report["ok"]:
        print("service-load: FAILED")
        for failure in report["failures"]:
            print(f"  {failure}")
        return 1
    print("service-load: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Weighted fair-share admission across tenants.

GRASS's fair scheduler divides cluster slots among jobs; the replay service
faces the same problem one level up — dividing a bounded execution pool
among *tenants* — and solves it the same way: virtual-time (stride)
scheduling.  Each tenant owns a bounded FIFO of pending submissions and a
virtual clock; dispatching a submission advances the tenant's clock by
``cost / weight``, and the next dispatch always goes to the backlogged
tenant with the smallest clock.  A weight-2 tenant's clock advances half as
fast, so it receives twice the dispatch share while contended — and an
idle tenant's clock is clamped forward to the service's virtual time when
it returns, so sleeping never banks credit (the classic starvation fix).

Overflow is *rejected, never buffered*: a full per-tenant queue or a full
service backlog raises :class:`AdmissionRejected` with an HTTP-flavoured
429 code the wire protocol forwards verbatim.  Under overload the service
therefore degrades by refusing new work with an explicit signal — the
approximation-analytics stance of the paper (bounded resources, explicit
degradation) applied to the control plane.

The scheduler is deliberately synchronous and event-loop-free: submissions
and dispatches happen on the server's single asyncio thread, so plain data
structures suffice and every decision is deterministic given the
submit/dispatch order — which is what the unit tests exercise.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: Admission refusal code carried on the wire (HTTP 429 Too Many Requests).
REJECT_OVERLOAD = 429
#: Invalid-plan refusal code carried on the wire (HTTP 400 Bad Request).
REJECT_BAD_PLAN = 400


class AdmissionRejected(Exception):
    """A submission was refused; ``code`` and ``reason`` go on the wire."""

    def __init__(self, code: int, reason: str) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason


class _TenantState:
    __slots__ = ("weight", "virtual_time", "queue")

    def __init__(self, weight: float) -> None:
        self.weight = weight
        self.virtual_time = 0.0
        # (arrival sequence, item, cost) triples, FIFO per tenant.
        self.queue: Deque[Tuple[int, object, float]] = deque()


class FairShareAdmission:
    """Bounded, weighted fair-share queueing of tenant submissions.

    ``submit`` either enqueues or raises :class:`AdmissionRejected`;
    ``next`` pops the submission the fair share says runs next, or ``None``
    when nothing is pending.  The caller (the service's dispatcher) decides
    *when* to call ``next`` — typically whenever an execution slot frees.
    """

    def __init__(
        self,
        max_pending_per_tenant: int = 4,
        max_pending_total: int = 64,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if max_pending_per_tenant < 1:
            raise ValueError("max_pending_per_tenant must be >= 1")
        if max_pending_total < 1:
            raise ValueError("max_pending_total must be >= 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self._max_pending_per_tenant = max_pending_per_tenant
        self._max_pending_total = max_pending_total
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._tenants: Dict[str, _TenantState] = {}
        self._pending_total = 0
        #: Monotone arrival counter; breaks virtual-time ties FIFO-fairly.
        self._sequence = 0
        #: Virtual time of the most recent dispatch — the clamp floor for
        #: tenants that went idle (empty queue) and come back.
        self._virtual_clock = 0.0

    # -- introspection ---------------------------------------------------------

    @property
    def pending_total(self) -> int:
        return self._pending_total

    def pending_for(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        return len(state.queue) if state else 0

    def backlogged_tenants(self) -> Tuple[str, ...]:
        return tuple(sorted(t for t, s in self._tenants.items() if s.queue))

    # -- submission ------------------------------------------------------------

    def submit(self, tenant: str, item: object, cost: float = 1.0) -> None:
        """Enqueue ``item`` for ``tenant`` or raise :class:`AdmissionRejected`.

        ``cost`` is the virtual-time charge of the submission (the service
        charges a plan's fan-out size), so a tenant submitting huge plans
        is debited proportionally more than one submitting small ones.
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        if self._pending_total >= self._max_pending_total:
            raise AdmissionRejected(
                REJECT_OVERLOAD,
                f"service backlog full ({self._pending_total} pending); retry later",
            )
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(self._weights.get(tenant, self._default_weight))
            self._tenants[tenant] = state
        if len(state.queue) >= self._max_pending_per_tenant:
            raise AdmissionRejected(
                REJECT_OVERLOAD,
                f"tenant {tenant!r} backlog full ({len(state.queue)} pending); "
                "retry later",
            )
        if not state.queue:
            # Returning from idle: forfeit unused share instead of banking it.
            state.virtual_time = max(state.virtual_time, self._virtual_clock)
        state.queue.append((self._sequence, item, cost))
        self._sequence += 1
        self._pending_total += 1

    # -- dispatch --------------------------------------------------------------

    def next(self) -> Optional[Tuple[str, object]]:
        """Pop the (tenant, item) the fair share dispatches next, if any."""
        best: Optional[str] = None
        best_key: Optional[Tuple[float, int]] = None
        for tenant, state in self._tenants.items():
            if not state.queue:
                continue
            key = (state.virtual_time, state.queue[0][0])
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        if best is None:
            return None
        state = self._tenants[best]
        _seq, item, cost = state.queue.popleft()
        self._pending_total -= 1
        self._virtual_clock = state.virtual_time
        state.virtual_time += cost / state.weight
        return best, item

    # -- release (client disconnects) ------------------------------------------

    def refund(self, tenant: str, cost: float) -> None:
        """Return a dispatched submission's virtual-time debit to ``tenant``.

        Used when a client disconnects after its submission was dispatched
        but before it finished: the results go nowhere, and without the
        refund the tenant's clock would stay advanced by ``cost / weight``
        — a fair-share penalty for work the service threw away.  The clock
        is floored at zero, and the idle clamp in :meth:`submit` already
        prevents a refund from banking credit below the service's virtual
        clock, so the net effect is "as if the dispatch never happened".
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        state = self._tenants.get(tenant)
        if state is None:
            return
        state.virtual_time = max(0.0, state.virtual_time - cost / state.weight)

    def cancel_where(
        self, predicate: Callable[[object], bool]
    ) -> List[Tuple[str, object]]:
        """Drop every *pending* item matching ``predicate``; return them.

        Pending items were never dispatched, so no virtual time was charged
        — cancellation only frees their backlog slots (per-tenant and
        service-wide).  Tenants are scanned in sorted order so the returned
        list is deterministic given the queue contents.
        """
        removed: List[Tuple[str, object]] = []
        for tenant in sorted(self._tenants):
            state = self._tenants[tenant]
            kept: Deque[Tuple[int, object, float]] = deque()
            for entry in state.queue:
                if predicate(entry[1]):
                    removed.append((tenant, entry[1]))
                else:
                    kept.append(entry)
            state.queue = kept
        self._pending_total -= len(removed)
        return removed

"""Baseline speculation policies the paper compares against.

* :mod:`repro.baselines.none` — no speculation at all (lower bound).
* :mod:`repro.baselines.late` — LATE (Zaharia et al., OSDI 2008), the
  mitigation deployed in the Facebook cluster.
* :mod:`repro.baselines.mantri` — Mantri (Ananthanarayanan et al., OSDI
  2010), the mitigation deployed in the Bing cluster.
* :mod:`repro.baselines.oracle` — an informed near-optimal reference that
  sees true task durations (the paper's "optimal scheduler" in §6.2.3).
"""

from repro.baselines.late import LatePolicy
from repro.baselines.mantri import MantriPolicy
from repro.baselines.none import NoSpeculationPolicy
from repro.baselines.oracle import OraclePolicy

__all__ = [
    "LatePolicy",
    "MantriPolicy",
    "NoSpeculationPolicy",
    "OraclePolicy",
]

"""No-speculation baseline: schedule originals in task order, never duplicate.

Useful as a lower bound in ablations and to measure how much any speculation
helps at all; the paper does not report it directly but its simulator section
implicitly uses it when quantifying the cost of stragglers.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
    make_decision,
)


class NoSpeculationPolicy(SpeculationPolicy):
    """Launch each task exactly once, in task-id (input) order."""

    name = "no-spec"

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        pending = view.pending()
        if not pending:
            return None
        return make_decision(min(pending, key=lambda snap: snap.task_id))

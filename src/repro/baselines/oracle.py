"""Oracle scheduler: the near-optimal reference of §6.2.3.

The paper compares GRASS against "an optimal scheduler that knows task
durations and slot availabilities in advance".  Exact optimality is NP-hard
(§2.2), and the paper's own optimal is a simulator-level bound; we provide an
informed greedy oracle with the same spirit:

* It is run with ``SimulationConfig.oracle_estimates = True`` so every
  ``trem`` / ``tnew`` it sees is the *true* value (the straggler model derives
  copy durations deterministically, so the duration a not-yet-launched copy
  would have is knowable).
* With perfect information the RAS-vs-GS trade-off collapses to the wave
  guideline of §3.2, which the oracle applies exactly: resource-aware
  speculation while more than ``switch_waves`` waves of required work remain,
  greedy speculation afterwards.

This gives a strong upper reference that GRASS should approach (Figure 8)
without claiming provable optimality — the same caveat the paper carries.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
)
from repro.core.policies.gs import GreedySpeculative
from repro.core.policies.ras import ResourceAwareSpeculative


class OraclePolicy(SpeculationPolicy):
    """Near-optimal reference scheduler with perfect duration knowledge."""

    name = "oracle"

    def __init__(self, switch_waves: float = 2.0, max_copies_per_task: int = 4) -> None:
        if switch_waves <= 0:
            raise ValueError("switch_waves must be positive")
        self.switch_waves = switch_waves
        self._gs = GreedySpeculative(max_copies_per_task=max_copies_per_task)
        self._ras = ResourceAwareSpeculative(max_copies_per_task=max_copies_per_task)

    def _remaining_waves(self, view: SchedulingView) -> float:
        """How many waves of required work remain, using true durations."""
        wave_width = max(1, view.wave_width)
        if view.bound.is_deadline:
            remaining = view.remaining_deadline
            if remaining is None or remaining <= 0:
                return 0.0
            durations = sorted(snap.tnew for snap in view.tasks)
            if not durations:
                return 0.0
            median_duration = durations[len(durations) // 2]
            if median_duration <= 0:
                return 0.0
            return remaining / median_duration
        needed = view.remaining_required_tasks
        if needed <= 0:
            return 0.0
        return needed / wave_width

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        if self._remaining_waves(view) > self.switch_waves:
            return self._ras.choose_task(view)
        return self._gs.choose_task(view)


def oracle_remaining_waves(view: SchedulingView, switch_waves: float = 2.0) -> float:
    """Expose the oracle's wave computation for tests and ablations."""
    return OraclePolicy(switch_waves=switch_waves)._remaining_waves(view)


def ceil_waves(task_count: int, wave_width: int) -> int:
    """Integral number of waves needed to run ``task_count`` tasks."""
    if wave_width <= 0:
        raise ValueError("wave_width must be positive")
    if task_count <= 0:
        return 0
    return math.ceil(task_count / wave_width)

"""LATE: Longest Approximate Time to End (Zaharia et al., OSDI 2008).

LATE is the straggler mitigation deployed in the Facebook cluster the paper
traces come from, and the primary baseline of the evaluation.  Its behaviour,
as modelled here:

* New (pending) tasks always take priority over speculation.
* Once a job has no pending tasks in the current phase, LATE considers
  speculating on running tasks whose *progress rate* is below the
  ``slow_task_percentile`` of the job's running tasks.
* Among those, it duplicates the task with the longest estimated time to end
  (the largest ``trem``), at most one speculative copy per task, and never
  more than ``speculative_cap`` of the job's slots running speculative copies.
* A task must have run for ``min_runtime_before_speculation`` seconds before
  it can be speculated on, so brand-new copies are not immediately flagged.

Crucially — and this is the gap GRASS exploits — LATE is oblivious to the
approximation bound: it neither prunes tasks that cannot meet the deadline
nor prioritises the tasks that contribute earliest to the error bound.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
    make_decision,
)
from repro.utils.stats import percentile


class LatePolicy(SpeculationPolicy):
    """The LATE baseline."""

    name = "late"

    def __init__(
        self,
        slow_task_percentile: float = 25.0,
        speculative_cap: float = 0.1,
        min_runtime_before_speculation: float = 1.0,
    ) -> None:
        if not 0.0 < slow_task_percentile < 100.0:
            raise ValueError("slow_task_percentile must be in (0, 100)")
        if not 0.0 < speculative_cap <= 1.0:
            raise ValueError("speculative_cap must be in (0, 1]")
        if min_runtime_before_speculation < 0:
            raise ValueError("min_runtime_before_speculation must be non-negative")
        self.slow_task_percentile = slow_task_percentile
        self.speculative_cap = speculative_cap
        self.min_runtime_before_speculation = min_runtime_before_speculation

    # -- helpers -----------------------------------------------------------------

    def _speculative_budget(self, view: SchedulingView) -> int:
        """Maximum number of simultaneously running speculative copies."""
        return max(1, int(self.speculative_cap * max(1, view.wave_width)))

    @staticmethod
    def _running_speculative_copies(view: SchedulingView) -> int:
        """Copies beyond the first per running task — LATE's current spend."""
        return sum(max(0, snap.copies - 1) for snap in view.running())

    def _slow_candidates(self, view: SchedulingView) -> List[TaskSnapshot]:
        running = [snap for snap in view.running() if snap.copies == 1]
        if not running:
            return []
        rates = []
        eligible = []
        for snap in running:
            copies = snap.task.running_copies
            if not copies:
                continue
            best = min(copies, key=lambda c: c.remaining(view.now))
            if best.elapsed(view.now) < self.min_runtime_before_speculation:
                continue
            rates.append(best.progress_rate(view.now))
            eligible.append((snap, best.progress_rate(view.now)))
        if not eligible:
            return []
        threshold = percentile(rates, self.slow_task_percentile)
        return [snap for snap, rate in eligible if rate <= threshold]

    # -- policy ------------------------------------------------------------------

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        pending = view.pending()
        if pending:
            # Bound-oblivious: plain input order, no pruning, no SJF/LJF.
            return make_decision(min(pending, key=lambda snap: snap.task_id))
        if self._running_speculative_copies(view) >= self._speculative_budget(view):
            return None
        slow = self._slow_candidates(view)
        if not slow:
            return None
        # Longest approximate time to end: largest estimated remaining time.
        return make_decision(min(slow, key=lambda snap: (-snap.trem, snap.task_id)))

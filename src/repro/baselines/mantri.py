"""Mantri (Ananthanarayanan et al., OSDI 2010): resource-aware restarts.

Mantri is the straggler mitigation deployed in the Bing cluster.  The aspects
relevant to this reproduction:

* Mantri monitors running tasks and duplicates a task when its remaining
  time is large relative to a fresh copy — the classic trigger is
  ``trem > 2 * tnew`` — so duplication saves cluster resources in expectation.
* Unlike LATE, Mantri will act on a straggler even while pending tasks exist,
  because the duplicate frees up the occupied slot sooner.
* At most two copies of a task run at once.

Like LATE, Mantri is oblivious to approximation bounds — it neither prunes
doomed tasks for deadline jobs nor prioritises the earliest contributors for
error-bound jobs — which is why GRASS outperforms it on approximation jobs.
Mantri's kill-restart variant is approximated by the duplicate-then-kill-loser
semantics the simulator already applies when the faster copy finishes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policies.base import (
    SchedulingDecision,
    SchedulingView,
    SpeculationPolicy,
    TaskSnapshot,
    make_decision,
)


class MantriPolicy(SpeculationPolicy):
    """The Mantri baseline."""

    name = "mantri"

    def __init__(
        self,
        duplicate_threshold: float = 2.0,
        max_copies_per_task: int = 2,
        min_runtime_before_speculation: float = 1.0,
    ) -> None:
        if duplicate_threshold <= 1.0:
            raise ValueError("duplicate_threshold must exceed 1.0")
        if max_copies_per_task < 2:
            raise ValueError("max_copies_per_task must be at least 2")
        if min_runtime_before_speculation < 0:
            raise ValueError("min_runtime_before_speculation must be non-negative")
        self.duplicate_threshold = duplicate_threshold
        self.max_copies_per_task = max_copies_per_task
        self.min_runtime_before_speculation = min_runtime_before_speculation

    def _duplicate_candidates(self, view: SchedulingView) -> List[TaskSnapshot]:
        candidates = []
        for snap in view.running():
            if snap.copies >= self.max_copies_per_task:
                continue
            copies = snap.task.running_copies
            if not copies:
                continue
            best = min(copies, key=lambda c: c.remaining(view.now))
            if best.elapsed(view.now) < self.min_runtime_before_speculation:
                continue
            if snap.trem > self.duplicate_threshold * snap.tnew:
                candidates.append(snap)
        return candidates

    def choose_task(self, view: SchedulingView) -> Optional[SchedulingDecision]:
        duplicates = self._duplicate_candidates(view)
        if duplicates:
            # Duplicate the worst offender: largest remaining time.
            return make_decision(
                min(duplicates, key=lambda snap: (-snap.trem, snap.task_id))
            )
        pending = view.pending()
        if pending:
            return make_decision(min(pending, key=lambda snap: snap.task_id))
        return None

"""Content-addressed replay result cache: never simulate the same slice twice.

Five PRs made every (policy, seed, shard) unit of replay work
bit-deterministic, gave its result a constant-size wire encoding
(:func:`repro.simulator.sinks.chunk_to_wire`) and made the merge an
associative fold.  That is exactly the precondition for *memoizing* results
instead of recomputing them — the efficiency-over-exactness trade at the
heart of GRASS, applied one level up: repeated load (CI determinism
matrices, figure reruns, multi-tenant serving) becomes O(cache lookup)
instead of O(simulation).

Keying — content-addressed, three ingredients
---------------------------------------------

An entry's key is the sha256 over the canonical JSON of:

* the **plan slice**: every plan field that can change the slice's digest
  (policy, simulation seed, shard coordinates, cluster size, framework,
  bound kind, bound-assignment seed) — and *none* that cannot (``workers``,
  streaming mode, sink, ``max_resident_shards`` are wall-clock/memory knobs
  whose digest-invariance the replay-determinism matrix locks);
* the **source fingerprint**: sha256 of the trace file's bytes, or the
  canonical dict of a generated tier's config — edit one row of a trace and
  every key under it changes;
* the **engine fingerprint**: sha256 over the digest-relevant
  ``repro.{core,simulator,workload}`` sources, so editing the simulator
  silently invalidates every entry computed by the old engine (the entries
  become unreachable keys, reclaimed by eviction or ``cache clear``).

The value is the slice's sealed :class:`~repro.simulator.sinks.AggregateChunk`
in its existing wire encoding plus the collector's scalar counters — enough
to restore a :class:`~repro.simulator.metrics.MetricsCollector` whose
aggregates (and digest part) are byte-identical to the simulation's.

Store layout and concurrency
----------------------------

``<root>/<key[:2]>/<key>.json`` — one JSON file per entry, fanned out over
256 prefix directories.  Writes go to a unique temp file in the same
directory and land with ``os.replace``, so readers never observe a partial
entry and concurrent multi-process writers of the *same* key (which, being
content-addressed, write the same bytes) simply race to an identical
result.  A small in-memory LRU fronts the store; the on-disk store is
bounded by ``max_bytes`` with least-recently-*used* eviction (hits refresh
the entry file's mtime).

Corrupt, truncated or wrong-version entries are treated as misses with a
one-line :class:`CacheIntegrityWarning` and are deleted (the next store
rewrites them); they never crash a replay.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import repro
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import (
    AggregateChunk,
    SealedChunkSink,
    chunk_from_wire,
    chunk_to_wire,
)
from repro.utils.stats import OnlineStats
from repro.workload.trace_replay import ClusterTierConfig

#: Bump when the entry payload layout changes; older files become warned
#: misses (satellite contract: never crash, never silently misread).
CACHE_FORMAT_VERSION = 1

#: ``repro`` subpackages whose sources can change a replay digest.  The
#: experiments package itself is deliberately absent: it decides *what* to
#: simulate (already keyed by the plan slice) and how to cache, not how a
#: simulation behaves.
ENGINE_PACKAGES = ("core", "simulator", "workload")


class CacheIntegrityWarning(UserWarning):
    """A cache entry was corrupt/truncated/wrong-version; treated as a miss."""


class StaleEntryError(RuntimeError):
    """A cache entry cannot be re-verified (source moved or changed)."""


def canonical_json_bytes(payload: object) -> bytes:
    """The one canonical encoding every fingerprint in this module hashes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


# -- fingerprints ------------------------------------------------------------------

#: Engine fingerprints memoized per package root (stable for the process:
#: source files do not change under a running replay).
_ENGINE_FINGERPRINTS: Dict[str, str] = {}

#: Trace-file fingerprints memoized by (path, size, mtime_ns, inode) so the
#: service's repeated-tenant probes pay one file read, then O(stat).
_SOURCE_FINGERPRINTS: Dict[Tuple[str, int, int, int], str] = {}


def engine_fingerprint(root: Optional[Union[str, Path]] = None) -> str:
    """sha256 over the digest-relevant engine sources (see module docs).

    ``root`` is the directory holding the ``repro`` package's subpackages;
    it defaults to the installed package and exists as a parameter so the
    invalidation tests can fingerprint an edited copy.  Files are folded in
    sorted relative-path order with their paths mixed in, so renames — not
    just edits — change the fingerprint.
    """
    base = Path(root) if root is not None else Path(repro.__file__).resolve().parent
    memo_key = str(base)
    cached = _ENGINE_FINGERPRINTS.get(memo_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for package in ENGINE_PACKAGES:
        for path in sorted((base / package).rglob("*.py")):
            hasher.update(path.relative_to(base).as_posix().encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(path.read_bytes())
            hasher.update(b"\x00")
    digest = hasher.hexdigest()
    _ENGINE_FINGERPRINTS[memo_key] = digest
    return digest


def source_fingerprint(source: Union[str, Path, ClusterTierConfig]) -> str:
    """Content fingerprint of a replay source.

    Trace files are hashed by *content* (streamed sha256 — edit one row and
    every cached slice under the trace misses); generated tiers are hashed
    by the canonical dict of every :class:`ClusterTierConfig` field, which
    fully determines the generated jobs.  File fingerprints are memoized by
    ``(path, size, mtime_ns, inode)``.
    """
    if isinstance(source, ClusterTierConfig):
        payload = {"kind": "cluster"}
        payload.update(dataclasses.asdict(source))
        digest = hashlib.sha256(canonical_json_bytes(payload)).hexdigest()
        return f"cluster:sha256:{digest}"
    path = Path(source)
    stat = path.stat()
    memo_key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns, stat.st_ino)
    cached = _SOURCE_FINGERPRINTS.get(memo_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(block)
    digest = f"trace:sha256:{hasher.hexdigest()}"
    if len(_SOURCE_FINGERPRINTS) >= 64:
        _SOURCE_FINGERPRINTS.clear()
    _SOURCE_FINGERPRINTS[memo_key] = digest
    return digest


def source_descriptor(source: Union[str, Path, ClusterTierConfig]) -> Dict[str, object]:
    """A re-runnable description of a source, stored beside each entry.

    The fingerprint alone cannot be *executed*; ``cache verify`` needs to
    re-simulate a sampled entry, so entries also carry this descriptor
    (absolute trace path, or the full tier config).
    """
    if isinstance(source, ClusterTierConfig):
        descriptor = {"kind": "cluster"}
        descriptor.update(dataclasses.asdict(source))
        return descriptor
    return {"kind": "trace", "path": str(Path(source).resolve())}


def source_from_descriptor(
    descriptor: Dict[str, object]
) -> Union[str, ClusterTierConfig]:
    """Inverse of :func:`source_descriptor`; raises :class:`StaleEntryError`."""
    kind = descriptor.get("kind")
    if kind == "trace":
        return str(descriptor["path"])
    if kind == "cluster":
        fields = {
            key: value for key, value in descriptor.items() if key != "kind"
        }
        try:
            return ClusterTierConfig(**fields)
        except TypeError as exc:
            raise StaleEntryError(f"unreadable cluster descriptor: {exc}") from None
    raise StaleEntryError(f"unknown source descriptor kind {kind!r}")


# -- cached slices -----------------------------------------------------------------


@dataclass(frozen=True)
class CachedSlice:
    """One (policy, seed, shard) simulation's cacheable result.

    The sealed aggregate chunk plus the collector's scalar gauges — exactly
    what :meth:`restore` needs to rebuild a collector whose aggregate view
    (and digest part) is byte-identical to the original simulation's.  Raw
    per-job results are deliberately *not* cached: GRASS's evaluation is
    aggregate-only, and retaining them would make entries O(trace).
    """

    chunk: AggregateChunk
    truncated_jobs: int = 0
    peak_resident_jobs: int = 0
    events_processed: int = 0
    total_copies_launched: int = 0
    speculative_copies_launched: int = 0
    wasted_slot_seconds: float = 0.0
    simulated_time: float = 0.0
    utilization_stats: OnlineStats = field(default_factory=OnlineStats)

    @classmethod
    def from_metrics(cls, metrics: MetricsCollector) -> "CachedSlice":
        chunks = metrics.aggregates.chunks
        if len(chunks) != 1:
            raise ValueError(
                f"a cacheable slice has exactly one aggregate chunk, got {len(chunks)}"
            )
        return cls(
            chunk=chunks[0],
            truncated_jobs=metrics.truncated_jobs,
            peak_resident_jobs=metrics.peak_resident_jobs,
            events_processed=metrics.events_processed,
            total_copies_launched=metrics.total_copies_launched,
            speculative_copies_launched=metrics.speculative_copies_launched,
            wasted_slot_seconds=metrics.wasted_slot_seconds,
            simulated_time=metrics.simulated_time,
            utilization_stats=metrics.utilization_stats,
        )

    def restore(self) -> MetricsCollector:
        """A collector indistinguishable from the original for aggregate
        consumers: same chunk, same digest part, same gauges; recording into
        it raises and ``retains_results`` is False."""
        return MetricsCollector(
            sink=SealedChunkSink(self.chunk),
            truncated_jobs=self.truncated_jobs,
            peak_resident_jobs=self.peak_resident_jobs,
            events_processed=self.events_processed,
            total_copies_launched=self.total_copies_launched,
            speculative_copies_launched=self.speculative_copies_launched,
            wasted_slot_seconds=self.wasted_slot_seconds,
            simulated_time=self.simulated_time,
            utilization_stats=self.utilization_stats,
        )

    def counters_wire(self) -> Dict[str, object]:
        return {
            "truncated_jobs": self.truncated_jobs,
            "peak_resident_jobs": self.peak_resident_jobs,
            "events_processed": self.events_processed,
            "total_copies_launched": self.total_copies_launched,
            "speculative_copies_launched": self.speculative_copies_launched,
            "wasted_slot_seconds": self.wasted_slot_seconds,
            "simulated_time": self.simulated_time,
            "utilization_stats": self.utilization_stats.to_wire(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CachedSlice":
        counters = payload["counters"]
        return cls(
            chunk=chunk_from_wire(payload["chunk"]),
            truncated_jobs=int(counters["truncated_jobs"]),
            peak_resident_jobs=int(counters["peak_resident_jobs"]),
            events_processed=int(counters["events_processed"]),
            total_copies_launched=int(counters["total_copies_launched"]),
            speculative_copies_launched=int(counters["speculative_copies_launched"]),
            wasted_slot_seconds=float(counters["wasted_slot_seconds"]),
            simulated_time=float(counters["simulated_time"]),
            utilization_stats=OnlineStats.from_wire(counters["utilization_stats"]),
        )


# -- counters ----------------------------------------------------------------------


@dataclass
class CacheCounters:
    """One cache's session counters, surfaced in replay output and service
    frames (the ISSUE's hit/miss/bytes/evictions contract)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt/truncated/wrong-version entries encountered (each also a miss).
    invalid: int = 0
    #: On-disk entries removed by the ``max_bytes`` budget.
    evictions: int = 0
    #: In-memory LRU entries dropped (the disk copy survives).
    memory_evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        parts = [
            f"{self.hits} hit{'s' if self.hits != 1 else ''}",
            f"{self.misses} miss{'es' if self.misses != 1 else ''}",
            f"{self.stores} stored",
        ]
        if self.invalid:
            parts.append(f"{self.invalid} invalid")
        if self.evictions:
            parts.append(f"{self.evictions} evicted")
        parts.append(f"{self.bytes_read}B read, {self.bytes_written}B written")
        return ", ".join(parts)


@dataclass(frozen=True)
class StoreStats:
    """One scan of the on-disk store (the ``cache stats`` verb's payload)."""

    entries: int = 0
    total_bytes: int = 0
    #: Entries written by a different engine fingerprint — unreachable by
    #: current lookups, reclaimed by eviction or ``cache clear``.
    stale_engine_entries: int = 0
    #: Files that do not parse as current-version entries.
    invalid_files: int = 0


# -- the cache ---------------------------------------------------------------------


class ReplayCache:
    """Content-addressed, shard-granular result store (see module docs).

    One instance per process/plan is fine — correctness comes from the
    content-addressed keys and atomic writes, not from sharing the object.
    The replay service holds one long-lived instance so its in-memory LRU
    persists across tenant submissions.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        memory_entries: int = 1024,
        engine: Optional[str] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.engine = engine if engine is not None else engine_fingerprint()
        self.counters = CacheCounters()
        self._memory: "OrderedDict[str, CachedSlice]" = OrderedDict()
        self._tmp_sequence = itertools.count()

    # -- keying ----------------------------------------------------------------

    def key_for(self, slice_wire: Dict[str, object]) -> str:
        """The entry key: sha256 over (format version, engine, slice)."""
        material = canonical_json_bytes(
            {
                "version": CACHE_FORMAT_VERSION,
                "engine": self.engine,
                "slice": slice_wire,
            }
        )
        return hashlib.sha256(material).hexdigest()

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup ----------------------------------------------------------------

    def lookup(self, slice_wire: Dict[str, object]) -> Optional[CachedSlice]:
        """The cached slice for this key, or ``None`` (a miss).

        Misses include absent entries and entries that fail validation
        (corrupt JSON, truncated file, wrong format version, key/engine
        mismatch) — the latter warn once, are deleted, and never raise.
        """
        key = self.key_for(slice_wire)
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.counters.hits += 1
            self._touch(self.entry_path(key))
            return cached
        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.counters.misses += 1
            return None
        cached, reason = self._decode_entry(raw, key)
        if cached is None:
            self.counters.invalid += 1
            self.counters.misses += 1
            warnings.warn(
                f"replay cache: treating {path} as a miss ({reason}); "
                "the entry will be recomputed and overwritten",
                CacheIntegrityWarning,
                stacklevel=2,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.counters.hits += 1
        self.counters.bytes_read += len(raw)
        self._touch(path)
        self._remember(key, cached)
        return cached

    def _decode_entry(
        self, raw: bytes, key: str
    ) -> Tuple[Optional[CachedSlice], str]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, f"corrupt entry: {exc}"
        if not isinstance(payload, dict):
            return None, "corrupt entry: not a JSON object"
        version = payload.get("version")
        if version != CACHE_FORMAT_VERSION:
            return None, (
                f"format version {version!r}, expected {CACHE_FORMAT_VERSION}"
            )
        if payload.get("engine") != self.engine or payload.get("key") != key:
            # The key hashes (engine, slice); a mismatch inside a matching
            # file means the file's content does not belong to its name.
            return None, "entry does not match its content-addressed key"
        try:
            return CachedSlice.from_payload(payload), ""
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"corrupt entry: {exc}"

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh the entry's mtime — the disk store's LRU recency signal."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    # -- store -----------------------------------------------------------------

    def store(
        self,
        slice_wire: Dict[str, object],
        cached: CachedSlice,
        descriptor: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write one entry atomically (tmp + ``os.replace``) and remember it.

        Concurrent writers of the same key write byte-identical payloads
        (the key is content-addressed over everything that determines them),
        so whichever ``os.replace`` lands last changes nothing.
        """
        key = self.key_for(slice_wire)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "engine": self.engine,
            "key": key,
            "slice": slice_wire,
            "source": descriptor or {},
            "chunk": chunk_to_wire(cached.chunk),
            "counters": cached.counters_wire(),
        }
        raw = canonical_json_bytes(payload)
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{next(self._tmp_sequence)}.tmp"
        tmp.write_bytes(raw)
        os.replace(tmp, path)
        self.counters.stores += 1
        self.counters.bytes_written += len(raw)
        self._remember(key, cached)
        if self.max_bytes is not None:
            self._evict_to_budget(keep=key)

    def _remember(self, key: str, cached: CachedSlice) -> None:
        self._memory[key] = cached
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.counters.memory_evictions += 1

    def _evict_to_budget(self, keep: Optional[str] = None) -> None:
        """Delete least-recently-used entry files until under ``max_bytes``.

        Recency is the entry file's mtime (hits refresh it); ties break on
        path for determinism.  ``keep`` protects the entry just written —
        a store must never evict its own result.
        """
        entries = []
        total = 0
        for path in sorted(self.root.glob("??/*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, str(path), path, stat.st_size))
            total += stat.st_size
        if self.max_bytes is None or total <= self.max_bytes:
            return
        entries.sort()
        for _mtime, _name, path, size in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path.stem == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.counters.evictions += 1
            self._memory.pop(path.stem, None)

    # -- maintenance (the ``cache`` CLI verb's backend) ------------------------

    def iter_entries(self) -> Iterator[Tuple[Path, Optional[Dict[str, object]]]]:
        """Every entry file in sorted order with its parsed payload.

        Unparseable files yield ``(path, None)`` so callers can count them
        without this iterator ever raising mid-scan.
        """
        for path in sorted(self.root.glob("??/*.json")):
            try:
                payload = json.loads(path.read_bytes().decode("utf-8"))
            except (OSError, UnicodeDecodeError, ValueError):
                yield path, None
                continue
            yield path, payload if isinstance(payload, dict) else None

    def store_stats(self) -> StoreStats:
        entries = 0
        total_bytes = 0
        stale = 0
        invalid = 0
        for path, payload in self.iter_entries():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            if payload is None or payload.get("version") != CACHE_FORMAT_VERSION:
                invalid += 1
                continue
            entries += 1
            if payload.get("engine") != self.engine:
                stale += 1
        return StoreStats(
            entries=entries,
            total_bytes=total_bytes,
            stale_engine_entries=stale,
            invalid_files=invalid,
        )

    def clear(self) -> int:
        """Remove every entry file; returns how many were deleted."""
        removed = 0
        for path in sorted(self.root.glob("??/*.json")):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        for path in sorted(self.root.glob("??/.*.tmp")):
            try:
                path.unlink()
            except OSError:
                pass
        self._memory.clear()
        return removed

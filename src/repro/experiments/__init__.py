"""Experiment harness: regenerates every table and figure of the evaluation.

* :mod:`repro.experiments.policies` — the named policy registry used across
  figures ("late", "mantri", "gs", "ras", "grass", "oracle", ...).
* :mod:`repro.experiments.executor` — fans independent (policy, seed) runs
  out over worker processes with a deterministic merge.
* :mod:`repro.experiments.runner` — runs a workload under one or more
  policies and computes the paper's improvement metrics.
* :mod:`repro.experiments.figures` — one function per table/figure.
* :mod:`repro.experiments.cli` — ``grass-experiments <figure>`` command line.
"""

from repro.experiments.executor import ParallelExecutor, RunRequest
from repro.experiments.policies import available_policies, make_policy
from repro.experiments.runner import (
    ComparisonResult,
    ExperimentScale,
    PolicyRun,
    compare_policies,
    improvement_in_accuracy,
    improvement_in_duration,
    run_policy,
)

__all__ = [
    "available_policies",
    "make_policy",
    "ParallelExecutor",
    "RunRequest",
    "ComparisonResult",
    "ExperimentScale",
    "PolicyRun",
    "compare_policies",
    "run_policy",
    "improvement_in_accuracy",
    "improvement_in_duration",
]

"""The unified replay plan: one object describing one replay, end to end.

Before this module, "replay a trace" was spread over four call shapes —
``runner.replay()`` (batch), ``runner.replay_stream()`` (bounded-memory),
its ``stream_specs=`` flavour, and the ``sink=`` knob — plus a trace-vs-
generated-tier source split, with the exactly-one-of validations duplicated
between the CLI and the library.  :class:`ReplayPlan` collapses all of that
into a single declarative dataclass consumed by one entry point,
:func:`repro.experiments.runner.execute`:

* **source** — exactly one of :attr:`trace` (a JSONL path) or
  :attr:`cluster_jobs` (the generated cluster-scale tier);
* **mode** — :attr:`stream` / :attr:`stream_specs` (both off = batch);
* **sink spec** — :attr:`sink` (``retain`` / ``aggregate`` / ``jsonl:DIR``);
* **policies, seeds, workers, shards, scale** — the fan-out shape.

The plan is *wire-first*: :meth:`to_wire` / :meth:`from_wire` round-trip it
through plain JSON, which is what lets the replay service accept plan
submissions over a socket and what guarantees a service-side execution is
the same experiment as an offline ``execute(plan)`` — same object, same
validation, same digest.

Every CLI-visible field carries its argparse definition in dataclass field
``metadata`` (see :func:`add_plan_arguments`), so the ``replay`` verb's
flags are *generated from* the plan and the two surfaces cannot drift.  All
cross-field validation lives in :meth:`ReplayPlan.validate` — one
:class:`PlanError` message per conflict — instead of being scattered over
CLI guard clauses.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.experiments.policies import available_policies
from repro.simulator.sinks import parse_sink_spec
from repro.workload.profiles import available_frameworks
from repro.workload.synthetic import (
    BOUND_DEADLINE,
    BOUND_ERROR,
    BOUND_EXACT,
    BOUND_MIXED,
)

#: Experiment-scale names a plan may reference (resolved by the runner).
PLAN_SCALES = ("quick", "default", "paper")

#: Bound kinds a plan may assign to replayed jobs.
PLAN_BOUND_KINDS = (BOUND_DEADLINE, BOUND_ERROR, BOUND_EXACT, BOUND_MIXED)


class PlanError(ValueError):
    """A replay plan is invalid; ``str(exc)`` is the one-line reason."""


def _cli(flag: Optional[str] = None, **kwargs: Any) -> Dict[str, Dict[str, Any]]:
    """Field metadata carrying the argparse definition of one plan field."""
    spec = dict(kwargs)
    if flag is not None:
        spec["flag"] = flag
    return {"cli": spec}


@dataclass(frozen=True)
class ReplayPlan:
    """One replay, fully described: source, mode, sink, policies and shape.

    Construct it directly, from CLI args (:func:`plan_from_args`) or from
    JSON (:meth:`from_wire` / :meth:`from_json`); then hand it to
    :func:`repro.experiments.runner.execute` — or submit it to a running
    replay service, which executes the very same object.

    Call :meth:`validate` before executing; every constraint violation
    raises :class:`PlanError` with a single self-contained message.
    """

    #: JSONL trace file to replay; exactly one of this or :attr:`cluster_jobs`.
    trace: Optional[str] = field(
        default=None,
        metadata=_cli(
            metavar="PATH",
            help="JSONL trace file (one {job_id, arrival_time, task_durations} "
            "object per line); exactly one of --trace / --cluster-jobs",
        ),
    )
    #: Replay the generated cluster-scale tier at this many jobs instead of a
    #: trace file (seeded by :attr:`seed`, byte-reproducible).
    cluster_jobs: Optional[int] = field(
        default=None,
        metadata=_cli(
            metavar="N",
            arg_type=int,
            help="replay the generated cluster-scale tier at N jobs instead of "
            "a trace file: jobs are generated lazily (seeded by --seed, "
            "byte-reproducible, log-normal sizes) — combine with "
            "--stream-specs --sink aggregate to replay a million jobs with "
            "O(concurrent jobs) resident state",
        ),
    )
    #: Policies to replay under, in report order.
    policies: Tuple[str, ...] = field(
        default=("grass", "late"),
        metadata=_cli(
            flag="--policy",
            action="append",
            metavar="NAME",
            help="policy to replay under (repeatable; default: grass and late)",
        ),
    )
    #: Experiment scale name (cluster size, default seeds); the trace decides
    #: the workload itself.
    scale: str = field(
        default="default",
        metadata=_cli(
            choices=PLAN_SCALES,
            help="cluster scale (machines, seeds); the trace decides the workload",
        ),
    )
    #: Explicit simulation seeds; ``None`` uses the scale's defaults.
    seeds: Optional[Tuple[int, ...]] = field(
        default=None,
        metadata=_cli(
            nargs="+",
            arg_type=int,
            metavar="SEED",
            help="explicit simulation seeds (default: the scale's seeds)",
        ),
    )
    #: Worker processes for the (policy, seed, shard) fan-out; 0 = auto.
    workers: int = field(
        default=1,
        metadata=_cli(
            metavar="N",
            arg_type=int,
            help="worker processes for the (policy, seed, shard) fan-out; "
            "1 = serial (default), 0 = auto; results are bit-identical for "
            "any value",
        ),
    )
    #: Arrival-window shards, each replayed as an independent simulation.
    shards: int = field(
        default=1,
        metadata=_cli(
            metavar="K",
            arg_type=int,
            help="split the trace into K arrival-window shards, each replayed "
            "as an independent simulation (default 1)",
        ),
    )
    #: Bounded-memory streaming pipeline (parse shard k+1 while k simulates).
    stream: bool = field(
        default=False,
        metadata=_cli(
            action="store_true",
            help="bounded-memory streaming pipeline: parse shard k+1 while "
            "shard k simulates, never materialising the full trace; the "
            "metrics digest is identical to the batch path at the same "
            "--shards count (requires an arrival-sorted trace)",
        ),
    )
    #: Stream job specs lazily *inside* each simulation (implies streaming).
    stream_specs: bool = field(
        default=False,
        metadata=_cli(
            action="store_true",
            help="stream job specs lazily inside each simulation: requests "
            "carry a trace window description instead of materialised spec "
            "lists and the engine evicts finished jobs, bounding resident "
            "state to the max number of concurrent jobs — even with "
            "--shards 1; the digest is identical to the batch path at the "
            "same --shards count (requires an arrival-sorted trace)",
        ),
    )
    #: With :attr:`stream`: resident-shard bound in the submitting process.
    max_resident_shards: int = field(
        default=2,
        metadata=_cli(
            metavar="N",
            arg_type=int,
            help="with --stream: at most N shard workloads resident in the "
            "main process at once (default 2: parse one shard ahead; 1 "
            "disables pipelining; larger N admits more cross-shard "
            "parallelism)",
        ),
    )
    #: Result sink spec: ``retain``, ``aggregate`` or ``jsonl:DIR``.
    sink: str = field(
        default="retain",
        metadata=_cli(
            metavar="KIND",
            help="where per-job results go: 'retain' (default — keep every "
            "JobResult in memory), 'aggregate' (fold each result into "
            "constant-size mergeable aggregates on arrival; resident memory "
            "becomes independent of trace length) or 'jsonl:DIR' (spill one "
            "JSON row per result under DIR, aggregates in memory); the "
            "metrics digest and summary table are identical for every kind",
        ),
    )
    #: Content-addressed result-cache directory; ``None`` disables caching.
    cache: Optional[str] = field(
        default=None,
        metadata=_cli(
            metavar="DIR",
            help="content-addressed replay cache directory: every (policy, "
            "seed, shard) chunk is looked up in DIR before simulating and "
            "stored after, keyed on the plan slice, the trace/cluster "
            "source fingerprint and the engine-source fingerprint, so "
            "re-executing a previously executed plan restores every chunk "
            "from disk with a byte-identical metrics digest",
        ),
    )
    #: Execution framework profile the replay simulates.
    framework: str = field(
        default="hadoop",
        metadata=_cli(
            help="execution framework profile: hadoop (default) or spark",
        ),
    )
    #: Approximation bounds assigned to replayed jobs.
    bound_kind: str = field(
        default=BOUND_MIXED,
        metadata=_cli(
            choices=PLAN_BOUND_KINDS,
            help="approximation bounds assigned to replayed jobs (default mixed)",
        ),
    )
    #: Seed for the per-job bound/slot assignment (and the generated tier).
    seed: int = field(
        default=0,
        metadata=_cli(
            arg_type=int,
            help="seed for the per-job bound/slot assignment (default 0)",
        ),
    )

    # -- derived ---------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The execution mode: ``batch``, ``stream`` or ``stream-specs``."""
        if self.stream_specs:
            return "stream-specs"
        if self.stream:
            return "stream"
        return "batch"

    @property
    def streaming(self) -> bool:
        return self.stream or self.stream_specs

    @property
    def source_label(self) -> str:
        """Human-readable source description for tables and logs."""
        if self.trace is not None:
            return self.trace
        return f"cluster-tier[{self.cluster_jobs} jobs, seed {self.seed}]"

    # -- validation ------------------------------------------------------------

    def validate(self) -> "ReplayPlan":
        """Raise :class:`PlanError` on the first constraint violation.

        Every conflict has exactly one message, stated in terms of both the
        CLI flags and the plan fields so the same error reads correctly
        from either surface.  Returns ``self`` so call sites can chain
        ``plan.validate()`` into an execute call.
        """
        if (self.trace is None) == (self.cluster_jobs is None):
            raise PlanError(
                "give exactly one of --trace PATH or --cluster-jobs N "
                "(plan fields: trace / cluster_jobs)"
            )
        if self.cluster_jobs is not None and self.cluster_jobs < 1:
            raise PlanError("--cluster-jobs must be >= 1")
        if self.stream and self.stream_specs:
            raise PlanError(
                "give at most one of --stream / --stream-specs (plan fields: "
                "stream / stream_specs) — spec streaming already parses "
                "shards lazily"
            )
        if self.workers < 0:
            raise PlanError("--workers must be >= 0 (0 means auto)")
        if self.shards < 1:
            raise PlanError("--shards must be >= 1")
        if self.max_resident_shards < 1:
            raise PlanError("--max-resident-shards must be >= 1")
        if not self.policies:
            raise PlanError("a plan needs at least one policy")
        unknown = [name for name in self.policies if name not in available_policies()]
        if unknown:
            raise PlanError(
                f"unknown polic{'ies' if len(unknown) > 1 else 'y'} "
                f"{', '.join(unknown)}; expected one of "
                f"{', '.join(available_policies())}"
            )
        if self.scale not in PLAN_SCALES:
            raise PlanError(
                f"unknown scale {self.scale!r}; expected one of "
                f"{', '.join(PLAN_SCALES)}"
            )
        if self.seeds is not None and not self.seeds:
            raise PlanError("--seeds needs at least one seed (or omit it)")
        if self.framework not in available_frameworks():
            raise PlanError(
                f"unknown framework {self.framework!r}; expected one of "
                f"{', '.join(available_frameworks())}"
            )
        if self.bound_kind not in PLAN_BOUND_KINDS:
            raise PlanError(
                f"unknown bound kind {self.bound_kind!r}; expected one of "
                f"{', '.join(PLAN_BOUND_KINDS)}"
            )
        try:
            parse_sink_spec(self.sink)
        except ValueError as exc:
            raise PlanError(str(exc)) from None
        return self

    # -- wire format -----------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """Plain-JSON dict (tuples become lists); inverse of :meth:`from_wire`."""
        wire: Dict[str, Any] = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            wire[spec.name] = value
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "ReplayPlan":
        """Build a plan from a JSON-decoded dict, rejecting unknown fields."""
        if not isinstance(wire, dict):
            raise PlanError(f"a plan must be a JSON object, got {type(wire).__name__}")
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(wire) - known)
        if unknown:
            raise PlanError(
                f"unknown plan field{'s' if len(unknown) > 1 else ''}: "
                f"{', '.join(unknown)}"
            )
        values: Dict[str, Any] = {}
        for name, value in wire.items():
            if name in ("policies", "seeds") and isinstance(value, list):
                value = tuple(value)
            values[name] = value
        try:
            return cls(**values)
        except TypeError as exc:  # e.g. unhashable junk in a field
            raise PlanError(f"malformed plan: {exc}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "ReplayPlan":
        try:
            wire = json.loads(payload)
        except ValueError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from None
        return cls.from_wire(wire)


# -- CLI generation ---------------------------------------------------------------


def plan_cli_fields() -> Tuple[dataclasses.Field, ...]:
    """The plan fields that carry a CLI definition, in declaration order."""
    return tuple(
        spec for spec in dataclasses.fields(ReplayPlan) if "cli" in spec.metadata
    )


def add_plan_arguments(parser: argparse.ArgumentParser) -> None:
    """Add one argparse flag per :class:`ReplayPlan` field, from its metadata.

    This is the anti-drift mechanism of the plan API: the ``replay`` CLI
    verb's parser is *generated* here, so adding a plan field with ``_cli``
    metadata is all it takes to expose it on the command line, and the two
    surfaces cannot disagree about names, defaults or help text.  Flags for
    list-like fields (``--policy``, ``--seeds``) default to ``None`` and
    :func:`plan_from_args` substitutes the dataclass default, so "flag not
    given" is distinguishable from an explicit value.
    """
    for spec in plan_cli_fields():
        cli = dict(spec.metadata["cli"])
        flag = cli.pop("flag", "--" + spec.name.replace("_", "-"))
        kwargs: Dict[str, Any] = {"help": cli.pop("help", ""), "dest": spec.name}
        action = cli.pop("action", None)
        if action == "store_true":
            kwargs["action"] = "store_true"
            kwargs["default"] = spec.default
        elif action == "append":
            kwargs["action"] = "append"
            kwargs["default"] = None
        else:
            kwargs["default"] = None if spec.name in ("seeds",) else spec.default
            arg_type = cli.pop("arg_type", None)
            if arg_type is not None:
                kwargs["type"] = arg_type
            if "choices" in cli:
                kwargs["choices"] = cli.pop("choices")
            if "nargs" in cli:
                kwargs["nargs"] = cli.pop("nargs")
            if "metavar" in cli:
                kwargs["metavar"] = cli.pop("metavar")
        # append/store_true flags may still carry a metavar/type for help
        if action == "append":
            if "metavar" in cli:
                kwargs["metavar"] = cli.pop("metavar")
            arg_type = cli.pop("arg_type", None)
            if arg_type is not None:
                kwargs["type"] = arg_type
        parser.add_argument(flag, **kwargs)


def plan_from_args(args: argparse.Namespace) -> ReplayPlan:
    """Build a (not yet validated) plan from a parsed argparse namespace."""
    values: Dict[str, Any] = {}
    for spec in plan_cli_fields():
        raw = getattr(args, spec.name)
        if raw is None:
            continue  # keep the dataclass default
        if isinstance(raw, list):
            raw = tuple(raw)
        values[spec.name] = raw
    return ReplayPlan(**values)

"""Parallel execution of simulation runs.

``compare_policies`` at the paper scale is 300 jobs x 3 seeds x ~7 policies
of strictly independent simulations — an embarrassingly parallel workload
that the serial harness turned into an overnight job.  This module provides
:class:`ParallelExecutor`, which fans :class:`RunRequest` batches out over a
``multiprocessing`` pool and merges the resulting
:class:`~repro.simulator.metrics.MetricsCollector` objects back **in request
order**, so the output is bit-identical to the serial path no matter how the
OS schedules the workers.

Determinism contract
--------------------

* Each request is self-contained: the worker constructs its own policy
  instance (policies are stateful learners) and its own ``Simulation``, so
  nothing is shared across processes.
* Every simulation is seeded explicitly; a ``(policy, seed)`` run therefore
  produces the same ``MetricsCollector`` whether it executes in this process,
  a worker process, or a different worker count.
* ``Pool.map`` preserves input order, and the executor never reorders
  results, so ``workers=N`` and ``workers=1`` return byte-identical payloads
  (``tests/test_executor.py`` locks this in with a pickle comparison).

The serial path (``workers=1``) does not touch ``multiprocessing`` at all,
which keeps unit tests and platforms without ``fork`` happy.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies.base import SpeculationPolicy
from repro.experiments.policies import make_policy
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import MetricsCollector
from repro.workload.synthetic import GeneratedWorkload


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation: a policy over a workload under one seed.

    The policy is named by registry name (``policy_name``) or passed as a
    ready instance (``policy``); exactly one must be given.  Named requests
    are safe to ship to worker processes; instance requests keep their
    (possibly stateful, pre-warmed) policy object and are therefore pinned to
    in-process execution.
    """

    workload: GeneratedWorkload
    config: SimulationConfig
    policy_name: Optional[str] = None
    policy: Optional[SpeculationPolicy] = None
    warmup: Optional[GeneratedWorkload] = None

    def __post_init__(self) -> None:
        if (self.policy_name is None) == (self.policy is None):
            raise ValueError("give exactly one of policy_name or policy")

    @property
    def parallel_safe(self) -> bool:
        """True if this request may run in a worker process."""
        return self.policy is None

    def execute(self) -> MetricsCollector:
        """Run this request in the current process and return its metrics.

        The warm-up pass exists for learning policies (GRASS): the same
        policy instance first processes a separate workload so its sample
        store reflects cluster history, exactly as a long-running production
        scheduler would.  Warm-up results are discarded.
        """
        policy = self.policy if self.policy is not None else make_policy(self.policy_name)
        if self.warmup is not None and self.warmup.job_specs:
            Simulation(self.config, policy, self.warmup.specs()).run()
        return Simulation(self.config, policy, self.workload.specs()).run()


def _execute_request(request: RunRequest) -> MetricsCollector:
    """Module-level trampoline so requests can cross a process boundary."""
    return request.execute()


def default_worker_count() -> int:
    """Worker count used when the caller passes ``workers=0`` ("auto")."""
    return max(1, (os.cpu_count() or 2) - 1)


class ParallelExecutor:
    """Runs batches of :class:`RunRequest` serially or over worker processes.

    ``workers=1`` (the default) executes in-process; ``workers>1`` uses a
    ``multiprocessing`` pool of that size; ``workers=0`` auto-sizes to the
    machine (``cpu_count - 1``).  Results always come back in request order.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 means auto)")
        self.workers = workers if workers > 0 else default_worker_count()

    def run(self, requests: Sequence[RunRequest]) -> List[MetricsCollector]:
        """Execute every request and return metrics in request order.

        Requests pinned to in-process execution (policy instances) run here;
        the parallel-safe remainder fans out over the pool.  A mixed batch
        therefore still parallelises everything it can.
        """
        requests = list(requests)
        if not requests:
            return []
        safe_indices = [
            index for index, request in enumerate(requests) if request.parallel_safe
        ]
        results: List[Optional[MetricsCollector]] = [None] * len(requests)
        if self.workers > 1 and len(safe_indices) > 1:
            pool_size = min(self.workers, len(safe_indices))
            with multiprocessing.Pool(processes=pool_size) as pool:
                fanned_out = pool.map(
                    _execute_request, [requests[index] for index in safe_indices]
                )
            for index, metrics in zip(safe_indices, fanned_out):
                results[index] = metrics
        for index, request in enumerate(requests):
            if results[index] is None:
                results[index] = request.execute()
        return results

"""Parallel execution of simulation runs.

``compare_policies`` at the paper scale is 300 jobs x 3 seeds x ~7 policies
of strictly independent simulations — an embarrassingly parallel workload
that the serial harness turned into an overnight job.  This module provides
:class:`ParallelExecutor`, which fans :class:`RunRequest` batches out over a
``multiprocessing`` pool and merges the resulting
:class:`~repro.simulator.metrics.MetricsCollector` objects back **in request
order**, so the output is bit-identical to the serial path no matter how the
OS schedules the workers.

Two entry points share that contract:

* :meth:`ParallelExecutor.run` — the batch path: materialise every request,
  fan out, return a list.
* :meth:`ParallelExecutor.run_stream` — the streaming path: consume an
  *iterator* of requests lazily (at most ``max_in_flight`` requests are ever
  materialised and unmerged at once) and yield metrics in request order as
  they complete.  This is what lets trace replay build arrival-window shards
  while earlier shards are still simulating, keeping memory bounded for
  traces that do not fit in RAM.

Determinism contract
--------------------

* Each request is self-contained: the worker constructs its own policy
  instance (policies are stateful learners) and its own ``Simulation``, so
  nothing is shared across processes.
* Every simulation is seeded explicitly; a ``(policy, seed)`` run therefore
  produces the same ``MetricsCollector`` whether it executes in this process,
  a worker process, or a different worker count.
* Results are merged strictly in request order — ``run`` never reorders and
  ``run_stream`` yields position ``i`` before pulling request ``i + k`` past
  its in-flight window — so ``workers=N`` and ``workers=1`` return
  byte-identical payloads (``tests/test_executor.py`` locks this in with a
  pickle comparison for both paths).

The serial path (``workers=1``) does not touch ``multiprocessing`` at all,
which keeps unit tests and platforms without ``fork`` happy.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import os
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.policies.base import SpeculationPolicy
from repro.experiments.policies import make_policy
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import SinkFactory
from repro.workload.synthetic import GeneratedWorkload


class RequestExecutionError(RuntimeError):
    """A request failed inside a worker process.

    ``multiprocessing`` re-raises worker exceptions in the parent with a
    traceback that names only the pool trampoline, which is useless for
    figuring out *which* of dozens of fanned-out simulations died.  The
    worker therefore wraps any failure in this exception, carrying the
    originating request's repr and the worker-side traceback as text (both
    pickle cleanly across the process boundary).
    """


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation: a policy over a workload under one seed.

    The policy is named by registry name (``policy_name``) or passed as a
    ready instance (``policy``); exactly one must be given.  Named requests
    are safe to ship to worker processes; instance requests keep their
    (possibly stateful, pre-warmed) policy object and are therefore pinned to
    in-process execution.

    The jobs come from exactly one of two sources:

    * ``workload`` — a materialised :class:`GeneratedWorkload`;
    * ``spec_source`` — a lazy *description* of the specs (any picklable
      object with ``iter_specs() -> Iterator[JobSpec]``, e.g.
      :class:`~repro.workload.trace_replay.TraceSpecSource`).  The executing
      process — worker or parent — materialises specs one at a time straight
      into the engine's lazy ingestion, so no process ever holds the spec
      list; this is what bounds memory for unsharded million-job replays.
      The source's spec stream must be sorted by ``(arrival_time, job_id)``
      (the engine raises otherwise).

    Warm-up comes in two mutually exclusive flavours:

    * ``warmup`` (+ optional ``warmup_config``) — simulate a separate
      workload first so a learning policy starts with cluster history;
    * ``warm_state`` — restore a pre-computed state snapshot (see
      ``repro.experiments.warmup``) instead of re-simulating that history.
      Snapshots are plain data, so snapshot-carrying named requests remain
      parallel-safe.
    """

    workload: Optional[GeneratedWorkload] = None
    config: SimulationConfig = None  # type: ignore[assignment]
    policy_name: Optional[str] = None
    policy: Optional[SpeculationPolicy] = None
    warmup: Optional[GeneratedWorkload] = None
    #: Config the warm-up simulation runs under; defaults to ``config``.
    #: The warm-up cache keys warmed state on this config's seed, so callers
    #: that share warm-ups across run seeds pass a dedicated warm-up config.
    warmup_config: Optional[SimulationConfig] = None
    #: Pre-warmed policy state (from ``SpeculationPolicy.state_snapshot``).
    warm_state: Optional[object] = None
    #: Lazy spec source (duck-typed: ``iter_specs()``); see the class docs.
    spec_source: Optional[object] = None
    #: Which result sink the simulation records into (None = retain all —
    #: the historical behaviour).  A factory rather than an instance: spill
    #: sinks hold file handles, and the executing process — worker or
    #: parent — must build its own.  With a non-retaining factory the
    #: returned collector carries aggregates only, so the worker ships a
    #: constant-size payload home instead of one JobResult per job.
    sink_factory: Optional[SinkFactory] = None

    def __post_init__(self) -> None:
        if self.config is None:
            raise ValueError("a run request needs a simulation config")
        if (self.workload is None) == (self.spec_source is None):
            raise ValueError("give exactly one of workload or spec_source")
        if (self.policy_name is None) == (self.policy is None):
            raise ValueError("give exactly one of policy_name or policy")
        if self.warm_state is not None and self.warmup is not None:
            raise ValueError("give at most one of warmup or warm_state")

    def __repr__(self) -> str:
        """Concise identity (the dataclass default would dump the workload)."""
        source = (
            self.policy_name
            if self.policy_name is not None
            else f"<instance {type(self.policy).__name__}>"
        )
        if self.warm_state is not None:
            warm = "snapshot"
        elif self.warmup is not None:
            warm = f"workload[{len(self.warmup.job_specs)}]"
        else:
            warm = "none"
        if self.workload is not None:
            jobs = f"jobs={len(self.workload.job_specs)}"
        else:
            jobs = f"specs={self.spec_source}"
        return (
            f"RunRequest(policy={source}, {jobs}, "
            f"seed={self.config.seed}, warm={warm})"
        )

    @property
    def parallel_safe(self) -> bool:
        """True if this request may run in a worker process."""
        return self.policy is None

    def execute(self) -> MetricsCollector:
        """Run this request in the current process and return its metrics.

        The warm-up pass exists for learning policies (GRASS): the same
        policy instance first processes a separate workload so its sample
        store reflects cluster history, exactly as a long-running production
        scheduler would.  Warm-up results are discarded.  A ``warm_state``
        snapshot replaces that pass with a state restore, which is
        byte-equivalent as long as the snapshot was taken after warming an
        identically-configured policy under ``warmup_config``.
        """
        policy = self.policy if self.policy is not None else make_policy(self.policy_name)
        if self.warm_state is not None:
            policy.restore_state(self.warm_state)
        elif self.warmup is not None and self.warmup.job_specs:
            warm_config = self.warmup_config or self.config
            Simulation(warm_config, policy, self.warmup.specs()).run()
        sink = self.sink_factory.create() if self.sink_factory is not None else None
        if self.spec_source is not None:
            # Lazy path: the spec-source iterator feeds the engine's
            # one-spec-lookahead ingestion; peak resident jobs stays O(max
            # concurrent) end to end.
            return Simulation(
                self.config, policy, self.spec_source.iter_specs(), sink=sink
            ).run()
        return Simulation(self.config, policy, self.workload.specs(), sink=sink).run()


def _execute_request(request: RunRequest) -> MetricsCollector:
    """Module-level trampoline so requests can cross a process boundary.

    Failures are re-raised as :class:`RequestExecutionError` naming the
    request, because the bare exception's traceback dies at the pool
    boundary.  The in-process path calls ``request.execute()`` directly and
    keeps its native (fully informative) traceback.
    """
    try:
        return request.execute()
    except Exception as exc:
        raise RequestExecutionError(
            f"worker failed on {request!r}: {type(exc).__name__}: {exc}\n"
            f"worker traceback:\n{traceback.format_exc()}"
        ) from None


def default_worker_count() -> int:
    """Worker count used when the caller passes ``workers=0`` ("auto")."""
    return max(1, (os.cpu_count() or 2) - 1)


#: In-flight entry of the streaming merge: a pool ticket for a parallel-safe
#: request, or the request itself when it is pinned to in-process execution.
_InFlight = Tuple[str, Union["multiprocessing.pool.AsyncResult", RunRequest]]


class ParallelExecutor:
    """Runs batches of :class:`RunRequest` serially or over worker processes.

    ``workers=1`` (the default) executes in-process; ``workers>1`` uses a
    ``multiprocessing`` pool of that size; ``workers=0`` auto-sizes to the
    machine (``cpu_count - 1``).  Results always come back in request order.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 means auto)")
        self.workers = workers if workers > 0 else default_worker_count()

    def run(self, requests: Sequence[RunRequest]) -> List[MetricsCollector]:
        """Execute every request and return metrics in request order.

        Requests pinned to in-process execution (policy instances) run here;
        the parallel-safe remainder fans out over the pool.  A mixed batch
        therefore still parallelises everything it can — with one deliberate
        exception: a batch containing exactly *one* parallel-safe request
        executes it in-process too.  Spawning a pool to run a single
        simulation costs more than the simulation (fork + pickle + teardown),
        so the serial fallback is intentional, not an accident of the guard.
        """
        requests = list(requests)
        if not requests:
            return []
        safe_indices = [
            index for index, request in enumerate(requests) if request.parallel_safe
        ]
        results: List[Optional[MetricsCollector]] = [None] * len(requests)
        if self.workers > 1 and len(safe_indices) > 1:
            pool_size = min(self.workers, len(safe_indices))
            with multiprocessing.Pool(processes=pool_size) as pool:
                fanned_out = pool.map(
                    _execute_request, [requests[index] for index in safe_indices]
                )
            for index, metrics in zip(safe_indices, fanned_out):
                results[index] = metrics
        for index, request in enumerate(requests):
            if results[index] is None:
                results[index] = request.execute()
        return results

    def run_stream(
        self,
        requests: Iterable[RunRequest],
        max_in_flight: Optional[int] = None,
    ) -> Iterator[MetricsCollector]:
        """Execute a request *stream* lazily, yielding metrics in order.

        The streaming twin of :meth:`run`: requests are pulled from the
        iterator only when there is room in the in-flight window, so a
        generator that materialises expensive payloads (trace-replay shard
        workloads) never gets more than ``max_in_flight`` of them alive in
        this process at once.  Parallel-safe requests are submitted to the
        pool as they are pulled; pinned (policy-instance) requests execute
        in-process when their turn to be yielded comes, which keeps the
        merge strictly in request order.

        ``max_in_flight`` defaults to ``2 * workers`` (enough to keep every
        worker busy while the next requests are being built).  With
        ``workers=1`` no pool is created and the stream is fully lazy: pull
        one, execute, yield.

        Determinism matches :meth:`run`: the same requests yield
        byte-identical metrics in the same order for any worker count.
        """
        iterator = iter(requests)
        if self.workers <= 1:
            for request in iterator:
                yield request.execute()
            return
        if max_in_flight is None:
            max_in_flight = 2 * self.workers
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")

        def resolve(entry: _InFlight) -> MetricsCollector:
            kind, payload = entry
            if kind == "pool":
                return payload.get()
            return payload.execute()

        in_flight: deque = deque()
        with multiprocessing.Pool(processes=self.workers) as pool:
            while True:
                # Drain before pulling: the request generator is only
                # advanced when the new request fits in the window, which is
                # what bounds how many of its payloads exist at once.
                if len(in_flight) >= max_in_flight:
                    yield resolve(in_flight.popleft())
                    continue
                request = next(iterator, None)
                if request is None:
                    break
                if request.parallel_safe:
                    ticket = pool.apply_async(_execute_request, (request,))
                    in_flight.append(("pool", ticket))
                else:
                    in_flight.append(("local", request))
            while in_flight:
                yield resolve(in_flight.popleft())


class AsyncBridge:
    """Asyncio-facing bridge over the blocking simulation machinery.

    The replay service's front end is a single-threaded event loop;
    simulations are CPU-bound blocking calls that may themselves fan out
    over a :class:`ParallelExecutor` multiprocessing pool.  The bridge owns
    a *bounded* thread pool — the service's in-flight plan capacity — and
    provides the two primitives an always-on server needs:

    * :meth:`submit` — run a blocking callable (typically
      ``runner.execute(plan, on_metrics=...)``) off-loop and await its
      result.  At most ``max_concurrent`` such calls execute at once;
      excess submissions wait in the thread pool's queue, which is why the
      server performs *admission* before ever reaching the bridge.
    * :meth:`loop_callback` — wrap a loop-side callable so worker threads
      can invoke it mid-run; invocations are marshalled onto the event loop
      with ``call_soon_threadsafe``.  This is how per-shard metrics hooks
      become streamed delta messages without the blocking thread ever
      touching asyncio state.

    The bridge is deliberately thin: it adds no queueing semantics of its
    own (admission owns fairness) and no result reordering (plan execution
    is already deterministic), so the service-side digest of a plan is the
    offline ``execute(plan)`` digest by construction.
    """

    def __init__(self, max_concurrent: int = 2) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        self.max_concurrent = max_concurrent
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="replay-plan"
        )

    async def submit(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``func(*args, **kwargs)`` on the bridge pool and await it."""
        loop = asyncio.get_running_loop()
        if kwargs:
            call = lambda: func(*args, **kwargs)  # noqa: E731
        elif args:
            call = lambda: func(*args)  # noqa: E731
        else:
            call = func
        return await loop.run_in_executor(self._pool, call)

    @staticmethod
    def loop_callback(callback: Callable[..., None]) -> Callable[..., None]:
        """A thread-safe wrapper invoking ``callback`` on the current loop.

        Must be called *on* the event loop (it captures the running loop);
        the returned callable may then be handed to blocking code running in
        any thread.  Invocations are fire-and-forget: they are queued to the
        loop in call order, which preserves the deterministic shard-major
        delta order of ``runner.execute``'s ``on_metrics`` hook.
        """
        loop = asyncio.get_running_loop()

        def schedule(*args: Any) -> None:
            # repro: allow[ASY202] this IS the sanctioned wrapper the rule routes callers to
            loop.call_soon_threadsafe(callback, *args)

        return schedule

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

"""Named policy registry used by the experiment harness and the CLI.

Policies carry per-simulation state (estimator samples, GRASS's learning
store), so the registry hands out *factories*: each call builds a fresh
policy instance.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines import LatePolicy, MantriPolicy, NoSpeculationPolicy, OraclePolicy
from repro.core.policies import Grass, GrassConfig, GreedySpeculative, ResourceAwareSpeculative
from repro.core.policies.base import SpeculationPolicy
from repro.core.policies.switching import (
    FACTOR_ACCURACY,
    FACTOR_BOUND,
    FACTOR_UTILIZATION,
)

PolicyFactory = Callable[[], SpeculationPolicy]


def _grass(config: Optional[GrassConfig] = None) -> Grass:
    return Grass(config=config or GrassConfig())


_REGISTRY: Dict[str, PolicyFactory] = {
    "no-spec": NoSpeculationPolicy,
    "late": LatePolicy,
    "mantri": MantriPolicy,
    "gs": GreedySpeculative,
    "ras": ResourceAwareSpeculative,
    "grass": _grass,
    "grass-strawman": lambda: _grass(GrassConfig(switching="strawman")),
    "grass-1factor": lambda: _grass(GrassConfig(factors=frozenset({FACTOR_BOUND}))),
    "grass-2factor": lambda: _grass(
        GrassConfig(factors=frozenset({FACTOR_BOUND, FACTOR_UTILIZATION}))
    ),
    "grass-2factor-accuracy": lambda: _grass(
        GrassConfig(factors=frozenset({FACTOR_BOUND, FACTOR_ACCURACY}))
    ),
    "oracle": OraclePolicy,
}

#: Policies that must be simulated with perfect (true-duration) estimates.
ORACLE_POLICIES = frozenset({"oracle"})


def available_policies() -> tuple:
    """Names accepted by :func:`make_policy`."""
    return tuple(sorted(_REGISTRY))


def make_policy(name: str) -> SpeculationPolicy:
    """Build a fresh policy instance by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {available_policies()}"
        ) from exc
    return factory()


def make_grass_with_perturbation(perturbation: float) -> Grass:
    """GRASS with a non-default ξ, for the Figure 15 sensitivity sweep."""
    return _grass(GrassConfig(perturbation=perturbation))


def needs_oracle_estimates(name: str) -> bool:
    """True if the named policy must see true durations instead of estimates."""
    return name in ORACLE_POLICIES

"""Runs workloads under speculation policies and computes the paper's metrics.

The central object is :class:`ComparisonResult`: per-policy job results over
the *same* workload (same jobs, same straggler draws), from which the paper's
improvement percentages — accuracy gains for deadline-bound jobs, speedups
for error-bound jobs — are derived overall, per job bin, per deadline bin and
per error bin.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.bounds import BoundType
from repro.core.job import JobResult
from repro.core.policies.base import SpeculationPolicy
from pathlib import Path
from typing import Union

from repro.experiments.cache import (
    CacheCounters,
    CachedSlice,
    ReplayCache,
    StaleEntryError,
    source_descriptor,
    source_fingerprint,
)
from repro.experiments.executor import ParallelExecutor, RunRequest
from repro.experiments.plan import ReplayPlan, PlanError
from repro.experiments.policies import needs_oracle_estimates
from repro.experiments.warmup import (
    WarmupCache,
    check_warmup_seed_collision,
    policy_learns,
)
from repro.simulator.cluster import ClusterConfig
from repro.simulator.engine import SimulationConfig
from repro.workload.bins import deadline_bin_label, error_bin_label
from repro.workload.profiles import framework_profile
from repro.simulator.metrics import MetricsCollector
from repro.simulator.sinks import (
    SinkFactory,
    StreamingAggregates,
    fold_run_digests,
    parse_sink_spec,
    results_with_bound,
)
from repro.workload.synthetic import GeneratedWorkload, WorkloadConfig, generate_workload
from repro.workload.trace_replay import (
    ClusterSpecSource,
    ClusterTierConfig,
    TraceReplayConfig,
    TraceSpecSource,
    TraceWorkload,
    iter_cluster_trace,
    iter_job_specs,
    iter_trace_shards,
    slice_trace,
    straggler_cap_from_ratio,
    trace_to_workload,
)
from repro.workload.traces import TraceJob, iter_trace, load_trace, scan_jobs, scan_trace
from repro.utils.stats import mean

#: Hook invoked as each (policy, seed, shard) simulation's metrics land, in
#: the deterministic merge order: ``(policy_name, seed, shard_index, metrics)``.
#: The replay service uses it to stream per-tenant aggregate deltas while the
#: plan is still executing.
MetricsHook = Callable[[str, int, int, MetricsCollector], None]

#: Offset added to a workload's seed to derive its warm-up seed.  The
#: warm-up workload *and* the warm-up simulation share this seed, so warmed
#: policy state depends only on (policy, warm-up seed) — never on the
#: measured run's seed — which is what lets one warm-up serve every seed of
#: a multi-seed comparison (see ``repro.experiments.warmup``).
WARMUP_SEED_OFFSET = 7919


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime.

    The defaults match the benchmark harness (laptop-scale, a couple of
    minutes per figure); ``paper()`` gives a larger setting for overnight
    runs closer to the trace-driven simulations of §6.
    """

    num_jobs: int = 60
    size_scale: float = 0.25
    max_tasks_per_job: int = 400
    num_machines: int = 150
    seeds: Sequence[int] = (1,)
    warmup_jobs: int = 40
    #: Worker processes used to fan (policy, seed) runs out; 1 = serial,
    #: 0 = auto-size to the machine.  Results are merged deterministically,
    #: so this knob never changes the numbers — only the wall-clock time.
    workers: int = 1

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A very small scale for unit tests and smoke benchmarks."""
        return cls(
            num_jobs=16,
            size_scale=0.12,
            max_tasks_per_job=120,
            num_machines=80,
            seeds=(1,),
            warmup_jobs=10,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """A heavier scale approximating the paper's trace-driven simulator."""
        return cls(
            num_jobs=300,
            size_scale=1.0,
            max_tasks_per_job=2000,
            num_machines=200,
            seeds=(1, 2, 3),
            warmup_jobs=150,
        )


#: Experiment-scale factories keyed by the names a :class:`ReplayPlan` (and
#: the CLI's ``--scale`` flag) may reference.
SCALE_FACTORIES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}


@dataclass
class PolicyRun:
    """One policy's results over one workload (possibly several seeds).

    ``results`` holds the merged raw records when the runs recorded into a
    retaining sink and stays empty under ``--sink aggregate``;
    :attr:`aggregates` is populated either way (both paths fold the same
    per-simulation chunks in the same merge order), so aggregate consumers
    — the CLI table, the digest, the overall/per-bin improvements — never
    need the raw list.
    """

    policy_name: str
    results: List[JobResult] = field(default_factory=list)
    metrics: List[MetricsCollector] = field(default_factory=list)

    @property
    def aggregates(self) -> StreamingAggregates:
        """Mergeable aggregate view over this run's per-simulation metrics."""
        if self.metrics:
            return StreamingAggregates.merged(m.aggregates for m in self.metrics)
        return StreamingAggregates.from_results(self.results)

    def deadline_results(self) -> List[JobResult]:
        return results_with_bound(self.results, BoundType.DEADLINE)

    def error_results(self) -> List[JobResult]:
        return results_with_bound(self.results, BoundType.ERROR)

    def average_accuracy(self, results: Optional[Iterable[JobResult]] = None) -> float:
        if results is None and not self.results:
            return self.aggregates.average_accuracy
        pool = list(results) if results is not None else self.deadline_results()
        if not pool:
            return 0.0
        return mean([r.accuracy for r in pool])

    def average_duration(self, results: Optional[Iterable[JobResult]] = None) -> float:
        if results is None and not self.results:
            return self.aggregates.average_duration
        pool = list(results) if results is not None else self.error_results()
        if not pool:
            return 0.0
        return mean([r.duration for r in pool])


def improvement_in_accuracy(baseline: float, improved: float) -> float:
    """Percentage improvement in average accuracy (larger accuracy is better)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (improved - baseline) / baseline


def improvement_in_duration(baseline: float, improved: float) -> float:
    """Percentage reduction in average duration (smaller duration is better)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def build_simulation_config(
    workload: GeneratedWorkload,
    scale: ExperimentScale,
    seed: int,
    oracle_estimates: bool,
) -> SimulationConfig:
    """Simulation config matching a generated workload's framework profile."""
    framework = workload.config.framework_profile
    return SimulationConfig(
        cluster=ClusterConfig(num_machines=scale.num_machines, seed=seed),
        stragglers=framework.stragglers,
        estimator=framework.estimator,
        seed=seed,
        oracle_estimates=oracle_estimates,
    )


def run_policy(
    workload: GeneratedWorkload,
    policy: SpeculationPolicy,
    scale: ExperimentScale,
    seed: int,
    oracle_estimates: bool = False,
    warmup: Optional[GeneratedWorkload] = None,
) -> MetricsCollector:
    """Run one policy instance over one workload (optionally warmed up first).

    The instance may carry state (a warm-started GRASS learner), so the run
    executes in-process; use :func:`compare_policies` with ``workers`` to fan
    registry-named policies out over processes.
    """
    request = RunRequest(
        workload=workload,
        config=build_simulation_config(workload, scale, seed, oracle_estimates),
        policy=policy,
        warmup=warmup,
    )
    return ParallelExecutor(workers=1).run([request])[0]


@dataclass
class ComparisonResult:
    """Per-policy results over the same workload, plus the workload metadata."""

    workload: GeneratedWorkload
    runs: Dict[str, PolicyRun] = field(default_factory=dict)

    def run(self, policy_name: str) -> PolicyRun:
        return self.runs[policy_name]

    # -- overall improvements --------------------------------------------------------

    def accuracy_improvement(self, policy: str, baseline: str) -> float:
        """Figure 5 style: % improvement in average accuracy of deadline jobs.

        Answered from the runs' aggregates (as is every aggregate-only
        query on this class), so the comparison works — and reports the
        same numbers — under any result sink.
        """
        return improvement_in_accuracy(
            self.runs[baseline].aggregates.average_accuracy,
            self.runs[policy].aggregates.average_accuracy,
        )

    def duration_improvement(self, policy: str, baseline: str) -> float:
        """Figure 7 style: % reduction in average duration of error jobs."""
        return improvement_in_duration(
            self.runs[baseline].aggregates.average_duration,
            self.runs[policy].aggregates.average_duration,
        )

    # -- grouped improvements ----------------------------------------------------------

    def _grouped(self, results: Iterable[JobResult], group_fn) -> Dict[str, List[JobResult]]:
        grouped: Dict[str, List[JobResult]] = {}
        for result in results:
            grouped.setdefault(group_fn(result), []).append(result)
        return grouped

    def accuracy_improvement_by_bin(self, policy: str, baseline: str) -> Dict[str, float]:
        """Improvement per job-size bin (small / medium / large).

        Answered from the runs' :class:`StreamingAggregates` (per-bin
        accuracy stats of deadline-bound jobs), so the breakdown works under
        any result sink — raw results are never touched.
        """
        improvements: Dict[str, float] = {}
        base_bins = self.runs[baseline].aggregates.accuracy_by_bin()
        pol_bins = self.runs[policy].aggregates.accuracy_by_bin()
        for bin_name in ("small", "medium", "large"):
            base = base_bins.get(bin_name)
            pol = pol_bins.get(bin_name)
            if base is None or pol is None or not base.count or not pol.count:
                continue
            improvements[bin_name] = improvement_in_accuracy(base.mean, pol.mean)
        return improvements

    def duration_improvement_by_bin(self, policy: str, baseline: str) -> Dict[str, float]:
        improvements: Dict[str, float] = {}
        base_bins = self.runs[baseline].aggregates.duration_by_bin()
        pol_bins = self.runs[policy].aggregates.duration_by_bin()
        for bin_name in ("small", "medium", "large"):
            base = base_bins.get(bin_name)
            pol = pol_bins.get(bin_name)
            if base is None or pol is None or not base.count or not pol.count:
                continue
            improvements[bin_name] = improvement_in_duration(base.mean, pol.mean)
        return improvements

    def accuracy_improvement_by_deadline_bin(
        self, policy: str, baseline: str
    ) -> Dict[str, float]:
        """Figure 6a: improvement grouped by the deadline slack-factor bin."""

        def group(result: JobResult) -> str:
            metadata = self.workload.metadata_for(result.job_id)
            slack = metadata.deadline_slack_percent or 0.0
            return deadline_bin_label(slack)

        improvements: Dict[str, float] = {}
        base_groups = self._grouped(self.runs[baseline].deadline_results(), group)
        pol_groups = self._grouped(self.runs[policy].deadline_results(), group)
        for bin_name in base_groups:
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_accuracy(
                self.runs[baseline].average_accuracy(base),
                self.runs[policy].average_accuracy(pol),
            )
        return improvements

    def duration_improvement_by_error_bin(
        self, policy: str, baseline: str
    ) -> Dict[str, float]:
        """Figure 6b: improvement grouped by the error-bound bin."""

        def group(result: JobResult) -> str:
            error = (result.bound.error or 0.0) * 100.0
            return error_bin_label(error)

        improvements: Dict[str, float] = {}
        base_groups = self._grouped(self.runs[baseline].error_results(), group)
        pol_groups = self._grouped(self.runs[policy].error_results(), group)
        for bin_name in base_groups:
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_duration(
                self.runs[baseline].average_duration(base),
                self.runs[policy].average_duration(pol),
            )
        return improvements


#: Calibration scans memoized by source content fingerprint.  The replay
#: service probes the same source for every repeated tenant plan; after the
#: first sight, the scan is O(1) and the cache fast path answers in
#: milliseconds.  Bounded: a process sees a handful of sources, not many.
_SCAN_MEMO: Dict[str, object] = {}


def _scan_source_fingerprinted(source: "TraceSource", fingerprint: str):
    scan = _SCAN_MEMO.get(fingerprint)
    if scan is None:
        scan = _scan_source(source)
        if len(_SCAN_MEMO) >= 16:
            _SCAN_MEMO.clear()
        _SCAN_MEMO[fingerprint] = scan
    return scan


@dataclass
class _CacheSession:
    """One plan execution's view of the replay cache.

    Carries the slice-key fields shared by every (policy, seed, shard)
    coordinate of the plan plus the coordinates already restored from the
    cache, so the batch and streaming paths can partition the request grid
    into hits and misses without re-deriving keys.  The restored collectors
    are sealed around their cached chunks — byte-identical digest parts,
    no raw per-job results (aggregate consumers only).
    """

    cache: ReplayCache
    base: Dict[str, object]
    descriptor: Dict[str, object]
    restored: Dict[tuple, MetricsCollector] = field(default_factory=dict)

    def slice_wire(
        self, policy: str, seed: int, shard_index: int
    ) -> Dict[str, object]:
        wire = dict(self.base)
        wire.update({"policy": policy, "sim_seed": seed, "shard": shard_index})
        return wire

    def probe(
        self, policy_names: Sequence[str], seeds: Sequence[int], num_shards: int
    ) -> None:
        for name in policy_names:
            for seed in seeds:
                for shard_index in range(num_shards):
                    cached = self.cache.lookup(
                        self.slice_wire(name, seed, shard_index)
                    )
                    if cached is not None:
                        self.restored[(name, seed, shard_index)] = cached.restore()

    def hit(
        self, name: str, seed: int, shard_index: int
    ) -> Optional[MetricsCollector]:
        return self.restored.get((name, seed, shard_index))

    def complete(
        self, policy_names: Sequence[str], seeds: Sequence[int], num_shards: int
    ) -> bool:
        return len(self.restored) == len(policy_names) * len(seeds) * num_shards

    def store(
        self, name: str, seed: int, shard_index: int, metrics: MetricsCollector
    ) -> None:
        self.cache.store(
            self.slice_wire(name, seed, shard_index),
            CachedSlice.from_metrics(metrics),
            self.descriptor,
        )


def _open_cache_session(
    plan: ReplayPlan,
    scale: ExperimentScale,
    source: "TraceSource",
    cache: Optional[ReplayCache] = None,
):
    """Build a plan's cache session: ``(session, calibration scan)``.

    The slice key holds exactly the plan fields that can change a slice's
    digest — and none that cannot (``workers``, streaming mode, sink and
    ``max_resident_shards`` are wall-clock/memory knobs whose
    digest-invariance the replay-determinism matrix locks), so one cached
    execution serves every mode/worker/sink combination of the same
    experiment.
    """
    if cache is None:
        try:
            cache = ReplayCache(plan.cache)
        except OSError as exc:
            raise PlanError(
                f"cannot open replay cache at {plan.cache}: {exc}"
            ) from None
    fingerprint = source_fingerprint(source)
    scan = _scan_source_fingerprinted(source, fingerprint)
    if scan.num_jobs < 1:
        raise PlanError(f"trace is empty: {plan.source_label}")
    base = {
        "source": fingerprint,
        "num_shards": min(plan.shards, scan.num_jobs),
        "scale": plan.scale,
        "num_machines": scale.num_machines,
        "framework": plan.framework,
        "bound_kind": plan.bound_kind,
        "assignment_seed": plan.seed,
    }
    session = _CacheSession(
        cache=cache, base=base, descriptor=source_descriptor(source)
    )
    return session, scan


def _execute_replay(
    policy_names: Sequence[str],
    trace: Sequence[TraceJob],
    replay_config: Optional[TraceReplayConfig] = None,
    scale: Optional[ExperimentScale] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    sink: Optional[SinkFactory] = None,
    on_metrics: Optional[MetricsHook] = None,
    cache: Optional[_CacheSession] = None,
) -> ComparisonResult:
    """Replay a trace under the named policies and collect their results.

    The engine-facing twin of :func:`compare_policies` for trace-driven
    evaluation (§5/§6 methodology): the trace is adapted into the same
    ``JobSpec`` stream the synthetic generator emits, split into ``shards``
    arrival-window shards, and every (policy, seed, shard) triple fans out
    over the :class:`ParallelExecutor` as an independent simulation.

    Determinism mirrors ``compare_policies``: per-job bounds are seeded from
    ``(replay_config.seed, job_id)`` alone, every shard replays under the
    *full* trace's observed straggler severity, requests carry explicit
    seeds, and the merge happens in fixed (policy, seed, shard) order — so
    the result is byte-identical for any ``workers`` value.

    ``scale`` contributes the cluster size, seeds and default worker count;
    its workload-synthesis knobs (``num_jobs``, ``size_scale``, ...) are
    ignored because the trace decides the workload.

    ``sink`` picks where each simulation's per-job results go (default:
    retain them all).  With a non-retaining sink the merged comparison
    carries aggregates only — ``runs[name].aggregates`` — and its
    ``results`` lists stay empty; the digest and the summary statistics are
    identical either way.
    """
    scale = scale or ExperimentScale()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if workers is None:
        workers = scale.workers
    replay_config = replay_config or TraceReplayConfig()
    sink = sink or SinkFactory()

    full = trace_to_workload(trace, replay_config)
    if shards == 1:
        shard_workloads: List[TraceWorkload] = [full]
    else:
        shard_traces = slice_trace(trace, shards)
        shard_workloads = [
            trace_to_workload(
                shard,
                replay_config,
                shard_index=index,
                num_shards=len(shard_traces),
                stragglers=full.stragglers,
            )
            for index, shard in enumerate(shard_traces)
        ]

    def shard_config(seed: int, oracle: bool) -> SimulationConfig:
        base = build_simulation_config(full.workload, scale, seed, oracle)
        return replace(base, stragglers=full.stragglers)

    # Cache partition: coordinates already restored by the session's probe
    # never become requests; everything else fans out exactly as before, and
    # the merge below interleaves restored and fresh metrics back into the
    # same deterministic (policy, seed, shard) order — so the digest is
    # byte-identical whether 0%, some or 100% of the grid was cached.
    requests = [
        RunRequest(
            workload=shard_workloads[shard_index].workload,
            config=shard_config(seed, needs_oracle_estimates(name)),
            policy_name=name,
            sink_factory=sink.with_tag(f"{name}-seed{seed}-shard{shard_index}"),
        )
        for name in policy_names
        for seed in scale.seeds
        for shard_index in range(len(shard_workloads))
        if cache is None or cache.hit(name, seed, shard_index) is None
    ]
    fresh = iter(ParallelExecutor(workers=workers).run(requests))

    comparison = ComparisonResult(workload=full.workload)
    for name in policy_names:
        run = PolicyRun(policy_name=name)
        for seed in scale.seeds:
            for shard_index in range(len(shard_workloads)):
                metrics = (
                    cache.hit(name, seed, shard_index) if cache is not None else None
                )
                if metrics is None:
                    metrics = next(fresh)
                    if cache is not None:
                        cache.store(name, seed, shard_index, metrics)
                if metrics.retains_results:
                    run.results.extend(metrics.results)
                run.metrics.append(metrics)
                if on_metrics is not None:
                    on_metrics(name, seed, shard_index, metrics)
        comparison.runs[name] = run
    return comparison


def replay(
    policy_names: Sequence[str],
    trace: Sequence[TraceJob],
    replay_config: Optional[TraceReplayConfig] = None,
    scale: Optional[ExperimentScale] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    sink: Optional[SinkFactory] = None,
) -> ComparisonResult:
    """Deprecated: build a :class:`ReplayPlan` and call :func:`execute`.

    Thin shim over the batch replay internals, kept for one release so
    existing callers keep working; it is byte-identical to
    ``execute(plan)`` with ``stream=stream_specs=False`` over the same
    trace.  See :mod:`repro.experiments.plan` for the replacement API.
    """
    warnings.warn(
        "runner.replay() is deprecated and will be removed in the next "
        "release; build a ReplayPlan and call runner.execute(plan)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_replay(
        policy_names,
        trace,
        replay_config=replay_config,
        scale=scale,
        shards=shards,
        workers=workers,
        sink=sink,
    )


class _ResidencyTracker:
    """Counts trace shards alive in this process (built, not yet merged).

    Streaming replay's request generator calls :meth:`built` when it
    materialises a shard's workload and the merge loop calls :meth:`freed`
    when the shard's last result lands; both run on the same thread (the
    executor pulls requests from the merge loop's thread), so plain counters
    suffice.  ``peak`` is the number the ``--max-resident-shards`` contract
    is checked against.
    """

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def built(self) -> None:
        self.current += 1
        self.peak = max(self.peak, self.current)

    def freed(self) -> None:
        self.current -= 1


@dataclass
class StreamedReplay:
    """Result of :func:`replay_stream`, with its pipeline provenance."""

    comparison: ComparisonResult
    num_jobs: int
    num_shards: int
    max_resident_shards: int
    peak_resident_shards: int
    #: With ``stream_specs``: True — requests carried lazy spec sources, not
    #: materialised shard workloads.
    stream_specs: bool = False
    #: Engine high-water mark of concurrently resident jobs, maximised over
    #: every (policy, seed, shard) simulation.  The bounded-memory gauge of
    #: spec streaming: O(max concurrent jobs), not O(trace).
    peak_resident_jobs: int = 0


#: A streaming replay source: a JSONL trace path, or a generated trace tier
#: whose jobs are produced lazily (no file involved).
TraceSource = Union[str, Path, ClusterTierConfig]


def _source_jobs(source: TraceSource):
    """The lazy job stream of a replay source (file parse or generation)."""
    if isinstance(source, ClusterTierConfig):
        return iter_cluster_trace(source)
    return iter_trace(source)


def _scan_source(source: TraceSource):
    """The calibration scan of a replay source.

    Files go through :func:`scan_trace` (which also enforces the streaming
    parse's format and duplicate-id guards); generated tiers fold the same
    statistics over the generator — identical semantics, no file.
    """
    if isinstance(source, ClusterTierConfig):
        return scan_jobs(iter_cluster_trace(source), source=str(source))
    return scan_trace(source)


def _execute_replay_stream(
    policy_names: Sequence[str],
    trace_path: TraceSource,
    replay_config: Optional[TraceReplayConfig] = None,
    scale: Optional[ExperimentScale] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    max_resident_shards: int = 2,
    stream_specs: bool = False,
    sink: Optional[SinkFactory] = None,
    on_metrics: Optional[MetricsHook] = None,
    cache: Optional[_CacheSession] = None,
    scan=None,
) -> StreamedReplay:
    """Replay a JSONL trace as a bounded-memory streaming pipeline.

    The streaming twin of :func:`replay` for traces too large to hold in
    memory.  ``trace_path`` may also be a
    :class:`~repro.workload.trace_replay.ClusterTierConfig` — the generated
    million-job tier — in which case every pass below runs over the lazy
    generator instead of a file (with ``stream_specs`` the requests carry a
    :class:`~repro.workload.trace_replay.ClusterSpecSource` and each worker
    regenerates exactly its shard's window, random-access, so no process
    ever holds any slice of the trace).  Two passes over the file:

    1. **Calibration scan** (``traces.scan_trace``): bounded memory (it
       retains job *ids* for duplicate detection, never task payloads);
       yields the job count (shard boundaries need it) and the mean
       slowest-to-median ratio (every shard replays under the *full*
       trace's observed straggler severity — the same pinning the batch
       path does).
    2. **Streamed replay**: shards are parsed lazily
       (:func:`~repro.workload.trace_replay.iter_trace_shards`), adapted to
       workloads one at a time, and their (policy, seed) requests fed to
       :meth:`ParallelExecutor.run_stream` — shard ``k+1`` parses while
       shard ``k`` simulates.

    At most ``max_resident_shards`` shard workloads exist in this process at
    once (the executor's in-flight window is sized to
    ``(max_resident_shards - 1) * requests_per_shard + 1``, which provably
    bounds the span of unmerged requests to that many shards).
    ``max_resident_shards=1`` disables pipelining entirely; 2 (the default)
    overlaps parsing with simulation; larger values admit more parallelism
    across shards at proportional memory cost.  Worker processes briefly
    hold a pickled copy of the shard they are simulating on top of this
    parent-side bound.

    ``stream_specs`` pushes the bound *inside* each simulation: requests
    carry a lazy :class:`~repro.workload.trace_replay.TraceSpecSource`
    (a path plus shard coordinates) instead of a materialised shard
    workload, and the executing process feeds specs one at a time into the
    engine's lazy ingestion — no process ever holds a shard's spec list, so
    even an *unsharded* million-job replay runs with O(max concurrent jobs)
    resident state.  ``peak_resident_jobs`` on the result reports the
    engine's high-water mark; ``peak_resident_shards`` stays 0 because the
    parent never materialises a shard at all, and ``max_resident_shards``
    is accordingly ignored (with nothing to bound, the executor's default
    in-flight window keeps every worker busy instead).  (The parent still collects
    the per-job metadata the figure breakdowns need with one extra
    spec-construction pass — small records only, never task payloads.)

    Determinism: the requests are value-identical to :func:`replay`'s for
    the same ``shards`` count and the merge is reassembled in the batch
    path's (policy, seed, shard) order, so the metrics digest is identical
    to batch replay at the same shard split for any ``workers``, any
    ``max_resident_shards`` and either ``stream_specs`` setting —
    spec-streaming produces byte-identical specs (same per-job RNG streams)
    and a byte-identical engine event order (``tests/test_stream_specs.py``
    locks this in).  (Different shard *counts* are different experiments —
    jobs sharing a simulation contend for the cluster — which is exactly as
    true of the batch path.)

    The returned comparison's ``workload`` carries the merged per-job
    metadata but no job specs: materialising them is what this function
    exists to avoid.  With a non-retaining sink even the metadata merge is
    skipped (its only consumers slice raw results by job), leaving nothing
    in the parent that grows with the trace.

    ``sink`` picks the per-simulation result sink (see :func:`replay`).
    ``stream_specs`` + a non-retaining sink is the fully streaming
    configuration: O(1) in specs, shards *and* results — no process ever
    holds a spec list, a shard workload or a JobResult, so resident memory
    is independent of trace length end to end.

    Streaming requires the trace file to be sorted by
    ``(arrival_time, job_id)`` — the order batch replay sorts into — and
    raises ``ValueError`` otherwise.
    """
    scale = scale or ExperimentScale()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if max_resident_shards < 1:
        raise ValueError("max_resident_shards must be at least 1")
    if workers is None:
        workers = scale.workers
    replay_config = replay_config or TraceReplayConfig()
    sink = sink or SinkFactory()

    if scan is None:
        scan = _scan_source(trace_path)
    if not scan.arrival_sorted:
        raise ValueError(
            f"streaming replay requires a trace sorted by (arrival_time, job_id); "
            f"{trace_path} is not — sort it or use batch replay"
        )
    num_shards = min(shards, scan.num_jobs)
    framework = framework_profile(replay_config.framework)
    stragglers = replace(
        framework.stragglers,
        cap=straggler_cap_from_ratio(scan.mean_slowest_to_median),
    )
    configs = {
        (name, seed): SimulationConfig(
            cluster=ClusterConfig(num_machines=scale.num_machines, seed=seed),
            stragglers=stragglers,
            estimator=framework.estimator,
            seed=seed,
            oracle_estimates=needs_oracle_estimates(name),
        )
        for name in policy_names
        for seed in scale.seeds
    }

    residency = _ResidencyTracker()
    # Per-job metadata only serves consumers that slice *raw results* by job
    # (the figure breakdowns); with a non-retaining sink there is nothing to
    # slice, and skipping the merge removes the last parent-side O(trace)
    # structure — resident memory becomes independent of trace length.
    collect_metadata = sink.retains_results
    merged_metadata: Dict[int, object] = {}

    # Cache partition in the exact shard-major order the request generator
    # yields: the merge loop maps completion index -> miss_coords[index], so
    # the pipeline never assumes a full (policy, seed, shard) grid.  Without
    # a cache session every coordinate is a miss and behaviour is unchanged.
    miss_coords: List[tuple] = []
    shard_misses: Dict[int, int] = {}
    for shard_index in range(num_shards):
        for name in policy_names:
            for seed in scale.seeds:
                if cache is not None and cache.hit(name, seed, shard_index) is not None:
                    continue
                miss_coords.append((name, seed, shard_index))
                shard_misses[shard_index] = shard_misses.get(shard_index, 0) + 1
    miss_lookup = dict.fromkeys(miss_coords)

    if cache is not None and on_metrics is not None and cache.restored:
        # Restored chunks stream out before any simulation completes, in the
        # same shard-major order fresh completions use; delta consumers (the
        # service's clients) refold chunks by coordinate, so early hits never
        # perturb the reassembled digest.
        for shard_index in range(num_shards):
            for name in policy_names:
                for seed in scale.seeds:
                    metrics = cache.hit(name, seed, shard_index)
                    if metrics is not None:
                        on_metrics(name, seed, shard_index, metrics)

    def request_stream():
        if stream_specs:
            # Lazy-spec requests: a picklable description per shard, nothing
            # materialised in this process; the executing side streams the
            # shard's specs straight into the engine.
            for shard_index in range(num_shards):
                if shard_misses.get(shard_index, 0) == 0:
                    continue  # every coordinate of this shard was cached
                if isinstance(trace_path, ClusterTierConfig):
                    source = ClusterSpecSource(
                        tier=trace_path,
                        replay_config=replay_config,
                        shard_index=shard_index,
                        num_shards=num_shards,
                    )
                else:
                    source = TraceSpecSource(
                        trace_path=str(trace_path),
                        replay_config=replay_config,
                        shard_index=shard_index,
                        num_shards=num_shards,
                        total_jobs=scan.num_jobs,
                    )
                for name in policy_names:
                    for seed in scale.seeds:
                        if (name, seed, shard_index) not in miss_lookup:
                            continue
                        yield RunRequest(
                            spec_source=source,
                            config=configs[(name, seed)],
                            policy_name=name,
                            sink_factory=sink.with_tag(
                                f"{name}-seed{seed}-shard{shard_index}"
                            ),
                        )
            return
        shard_stream = iter_trace_shards(
            _source_jobs(trace_path), num_shards, scan.num_jobs
        )
        for shard_index in range(num_shards):
            shard_jobs = next(shard_stream)
            if shard_misses.get(shard_index, 0) == 0:
                # Every coordinate of this shard was restored from the cache:
                # parse past its jobs without adapting them into a workload
                # (the expensive per-job spec/bound derivation).
                del shard_jobs
                continue
            shard = trace_to_workload(
                shard_jobs,
                replay_config,
                shard_index=shard_index,
                num_shards=num_shards,
                stragglers=stragglers,
            )
            del shard_jobs
            residency.built()
            if collect_metadata:
                merged_metadata.update(shard.workload.metadata)
            for name in policy_names:
                for seed in scale.seeds:
                    if (name, seed, shard_index) not in miss_lookup:
                        continue
                    yield RunRequest(
                        workload=shard.workload,
                        config=configs[(name, seed)],
                        policy_name=name,
                        sink_factory=sink.with_tag(
                            f"{name}-seed{seed}-shard{shard_index}"
                        ),
                    )
            # Drop our reference before the consumer pulls the next shard's
            # first request, so "resident" counts real objects, not leaks.
            del shard

    per_shard = len(policy_names) * len(scale.seeds)
    if stream_specs:
        # No shard workload is ever resident here, so the residency window
        # has nothing to bound — spec-source requests are tiny descriptions;
        # let the executor keep every worker busy (its 2*workers default).
        window = None
    else:
        window = max(1, (max_resident_shards - 1) * per_shard + 1)
    executor = ParallelExecutor(workers=workers)
    collected: Dict[tuple, MetricsCollector] = {}
    peak_resident_jobs = 0
    remaining_misses = dict(shard_misses)
    for index, metrics in enumerate(
        executor.run_stream(request_stream(), max_in_flight=window)
    ):
        name, seed, shard_index = miss_coords[index]
        collected[(name, seed, shard_index)] = metrics
        if cache is not None:
            cache.store(name, seed, shard_index, metrics)
        if on_metrics is not None:
            # Completion order here is request order — shard-major — so a
            # streaming consumer (the replay service's delta emitter) sees
            # shard k's chunks before any of shard k+1's.
            on_metrics(name, seed, shard_index, metrics)
        if not stream_specs:
            remaining_misses[shard_index] -= 1
            if remaining_misses[shard_index] == 0:
                residency.freed()
    if stream_specs and collect_metadata:
        # The workers never ship metadata home, so collect it here with one
        # streaming spec-construction pass: O(#jobs) small metadata records,
        # never a spec list (each constructed spec is discarded immediately).
        for _ in iter_job_specs(
            _source_jobs(trace_path), replay_config, metadata=merged_metadata
        ):
            pass

    # Reassemble in the batch path's (policy, seed, shard) order so the
    # merged results — and hence the metrics digest — are byte-identical.
    stand_in = WorkloadConfig(
        workload="trace",
        framework=replay_config.framework,
        num_jobs=scan.num_jobs,
        bound_kind=replay_config.bound_kind,
        seed=replay_config.seed,
        dag_length=replay_config.dag_length,
        intermediate_task_fraction=replay_config.intermediate_task_fraction,
        deadline_slack_range=replay_config.deadline_slack_range,
        error_range=replay_config.error_range,
    )
    workload = GeneratedWorkload(config=stand_in)
    workload.metadata.update(merged_metadata)
    comparison = ComparisonResult(workload=workload)
    for name in policy_names:
        run = PolicyRun(policy_name=name)
        for seed in scale.seeds:
            for shard_index in range(num_shards):
                metrics = collected.get((name, seed, shard_index))
                if metrics is None:
                    assert cache is not None
                    metrics = cache.hit(name, seed, shard_index)
                peak_resident_jobs = max(
                    peak_resident_jobs, metrics.peak_resident_jobs
                )
                if metrics.retains_results:
                    run.results.extend(metrics.results)
                run.metrics.append(metrics)
        comparison.runs[name] = run
    return StreamedReplay(
        comparison=comparison,
        num_jobs=scan.num_jobs,
        num_shards=num_shards,
        max_resident_shards=max_resident_shards,
        peak_resident_shards=residency.peak,
        stream_specs=stream_specs,
        peak_resident_jobs=peak_resident_jobs,
    )


def replay_stream(
    policy_names: Sequence[str],
    trace_path: TraceSource,
    replay_config: Optional[TraceReplayConfig] = None,
    scale: Optional[ExperimentScale] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    max_resident_shards: int = 2,
    stream_specs: bool = False,
    sink: Optional[SinkFactory] = None,
) -> StreamedReplay:
    """Deprecated: build a :class:`ReplayPlan` and call :func:`execute`.

    Thin shim over the streaming replay internals, kept for one release so
    existing callers keep working; ``execute(plan)`` with ``stream=True``
    (or ``stream_specs=True``) is byte-identical.  See
    :mod:`repro.experiments.plan` for the replacement API.
    """
    warnings.warn(
        "runner.replay_stream() is deprecated and will be removed in the "
        "next release; build a ReplayPlan and call runner.execute(plan)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_replay_stream(
        policy_names,
        trace_path,
        replay_config=replay_config,
        scale=scale,
        shards=shards,
        workers=workers,
        max_resident_shards=max_resident_shards,
        stream_specs=stream_specs,
        sink=sink,
    )


def metrics_digest(comparison: ComparisonResult) -> str:
    """SHA-256 over the merged per-job results, canonically serialised.

    Two replays that produce byte-identical metrics — the determinism
    contract of ``workers`` — share the same digest, so scripts (and the
    replay service's clients) can compare runs without parsing tables.  The
    digest is the policy-tagged fold of each run's per-simulation chunk
    digests in the deterministic (policy, seed, shard) merge order
    (:func:`repro.simulator.sinks.fold_run_digests`); every sink maintains
    those chunk digests identically, so the value is byte-identical across
    ``--sink``, ``--stream``/``--stream-specs`` and ``--workers`` at the
    same shard count.
    """
    return fold_run_digests(
        (name, run.aggregates.digest_parts()) for name, run in comparison.runs.items()
    )


@dataclass
class ExecutedPlan:
    """Result of :func:`execute`: the comparison plus the plan's provenance."""

    plan: ReplayPlan
    comparison: ComparisonResult
    #: Jobs in the replayed source (the trace's job count, not results rows).
    num_jobs: int
    #: Arrival-window shards the source was actually split into.
    num_shards: int
    #: Streaming pipeline gauges; ``None`` when the plan ran in batch mode.
    streamed: Optional[StreamedReplay] = None
    #: Replay-cache session counters (hits/misses/stores/bytes/evictions);
    #: ``None`` when the plan executed without a cache.
    cache_stats: Optional[CacheCounters] = None

    @property
    def digest(self) -> str:
        """The policy-tagged metrics digest (see :func:`metrics_digest`)."""
        return metrics_digest(self.comparison)

    @property
    def truncated_jobs(self) -> int:
        """Job runs cut off by ``max_simulated_time``, summed over all runs."""
        return sum(
            metrics.truncated_jobs
            for run in self.comparison.runs.values()
            for metrics in run.metrics
        )


def plan_scale(plan: ReplayPlan) -> ExperimentScale:
    """The :class:`ExperimentScale` a plan executes under.

    The named scale contributes cluster size and default seeds; the plan's
    ``workers`` (and explicit ``seeds``, when given) override it.
    """
    scale = SCALE_FACTORIES[plan.scale]()
    overrides = {"workers": plan.workers}
    if plan.seeds is not None:
        overrides["seeds"] = tuple(plan.seeds)
    return replace(scale, **overrides)


def plan_source(plan: ReplayPlan) -> TraceSource:
    """The replay source a plan names: a trace path or a generated tier."""
    if plan.cluster_jobs is not None:
        return ClusterTierConfig(num_jobs=plan.cluster_jobs, seed=plan.seed)
    return plan.trace


def _executed_from_cache(
    plan: ReplayPlan,
    scale: ExperimentScale,
    replay_config: TraceReplayConfig,
    scan,
    num_shards: int,
    session: _CacheSession,
    on_metrics: Optional[MetricsHook] = None,
) -> ExecutedPlan:
    """Assemble an :class:`ExecutedPlan` entirely from restored chunks.

    The all-hits fast path: no simulation runs and the trace body is never
    loaded — the restored collectors fold in the deterministic (policy,
    seed, shard) merge order, so the digest is byte-identical to a real
    execution.  The comparison's workload is a stand-in (the streaming
    path's convention): cache-restored executions carry aggregates only,
    never raw per-job results or metadata.
    """
    if on_metrics is not None:
        # Mirror each mode's live emission order: shard-major under
        # streaming (completion order), merge order in batch.
        if plan.streaming:
            for shard_index in range(num_shards):
                for name in plan.policies:
                    for seed in scale.seeds:
                        on_metrics(
                            name, seed, shard_index,
                            session.hit(name, seed, shard_index),
                        )
        else:
            for name in plan.policies:
                for seed in scale.seeds:
                    for shard_index in range(num_shards):
                        on_metrics(
                            name, seed, shard_index,
                            session.hit(name, seed, shard_index),
                        )
    stand_in = WorkloadConfig(
        workload="trace",
        framework=replay_config.framework,
        num_jobs=scan.num_jobs,
        bound_kind=replay_config.bound_kind,
        seed=replay_config.seed,
        dag_length=replay_config.dag_length,
        intermediate_task_fraction=replay_config.intermediate_task_fraction,
        deadline_slack_range=replay_config.deadline_slack_range,
        error_range=replay_config.error_range,
    )
    comparison = ComparisonResult(workload=GeneratedWorkload(config=stand_in))
    peak_resident_jobs = 0
    for name in plan.policies:
        run = PolicyRun(policy_name=name)
        for seed in scale.seeds:
            for shard_index in range(num_shards):
                metrics = session.hit(name, seed, shard_index)
                peak_resident_jobs = max(
                    peak_resident_jobs, metrics.peak_resident_jobs
                )
                run.metrics.append(metrics)
        comparison.runs[name] = run
    streamed = None
    if plan.streaming:
        streamed = StreamedReplay(
            comparison=comparison,
            num_jobs=scan.num_jobs,
            num_shards=num_shards,
            max_resident_shards=plan.max_resident_shards,
            peak_resident_shards=0,
            stream_specs=plan.stream_specs,
            peak_resident_jobs=peak_resident_jobs,
        )
    return ExecutedPlan(
        plan=plan,
        comparison=comparison,
        num_jobs=scan.num_jobs,
        num_shards=num_shards,
        streamed=streamed,
        cache_stats=session.cache.counters,
    )


def probe_plan_cache(
    plan: ReplayPlan,
    cache: Optional[ReplayCache] = None,
    on_metrics: Optional[MetricsHook] = None,
) -> Optional[ExecutedPlan]:
    """Serve a plan entirely from its replay cache, or return ``None``.

    Never simulates and never loads the trace body: the only O(trace) work
    is the first-sight source fingerprint and calibration scan, both
    memoized per content fingerprint — which is what lets the replay
    service answer a repeated tenant plan before any admission debit.
    ``None`` means at least one (policy, seed, shard) coordinate is
    uncached and the plan needs a real execution.
    """
    plan.validate()
    if plan.cache is None and cache is None:
        return None
    scale = plan_scale(plan)
    source = plan_source(plan)
    session, scan = _open_cache_session(plan, scale, source, cache)
    num_shards = min(plan.shards, scan.num_jobs)
    session.probe(plan.policies, scale.seeds, num_shards)
    if not session.complete(plan.policies, scale.seeds, num_shards):
        return None
    replay_config = TraceReplayConfig(
        framework=plan.framework, bound_kind=plan.bound_kind, seed=plan.seed
    )
    return _executed_from_cache(
        plan, scale, replay_config, scan, num_shards, session, on_metrics
    )


def resimulate_cached_entry(payload: Dict[str, object]) -> str:
    """Re-run the simulation a cache entry memoizes; fresh chunk digest (hex).

    The ``cache verify`` backend: an entry's slice fields plus its source
    descriptor fully determine one (policy, seed, shard) simulation, so a
    digest mismatch against the stored chunk means the cache lied.  The
    re-run uses the lazy spec-source path — byte-identical specs and engine
    event order to every other mode (the stream-specs determinism contract).

    Raises :class:`~repro.experiments.cache.StaleEntryError` when the
    recorded source has moved or its content changed since the entry was
    written — there is nothing honest to compare against.
    """
    from repro.experiments.cache import source_from_descriptor

    slice_wire = payload.get("slice")
    descriptor = payload.get("source")
    if not isinstance(slice_wire, dict) or not isinstance(descriptor, dict):
        raise StaleEntryError("entry has no slice/source fields")
    source = source_from_descriptor(descriptor)
    try:
        fingerprint = source_fingerprint(source)
    except OSError as exc:
        raise StaleEntryError(f"source unavailable: {exc}") from None
    if fingerprint != slice_wire.get("source"):
        raise StaleEntryError("source content changed since the entry was written")
    scan = _scan_source_fingerprinted(source, fingerprint)
    try:
        policy = str(slice_wire["policy"])
        sim_seed = int(slice_wire["sim_seed"])
        shard_index = int(slice_wire["shard"])
        num_shards = int(slice_wire["num_shards"])
        num_machines = int(slice_wire["num_machines"])
        replay_config = TraceReplayConfig(
            framework=str(slice_wire["framework"]),
            bound_kind=str(slice_wire["bound_kind"]),
            seed=int(slice_wire["assignment_seed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StaleEntryError(f"unreadable slice fields: {exc}") from None
    framework = framework_profile(replay_config.framework)
    stragglers = replace(
        framework.stragglers,
        cap=straggler_cap_from_ratio(scan.mean_slowest_to_median),
    )
    config = SimulationConfig(
        cluster=ClusterConfig(num_machines=num_machines, seed=sim_seed),
        stragglers=stragglers,
        estimator=framework.estimator,
        seed=sim_seed,
        oracle_estimates=needs_oracle_estimates(policy),
    )
    if isinstance(source, ClusterTierConfig):
        spec_source = ClusterSpecSource(
            tier=source,
            replay_config=replay_config,
            shard_index=shard_index,
            num_shards=num_shards,
        )
    else:
        spec_source = TraceSpecSource(
            trace_path=str(source),
            replay_config=replay_config,
            shard_index=shard_index,
            num_shards=num_shards,
            total_jobs=scan.num_jobs,
        )
    request = RunRequest(
        spec_source=spec_source,
        config=config,
        policy_name=policy,
        sink_factory=SinkFactory(kind="aggregate").with_tag(
            f"{policy}-seed{sim_seed}-shard{shard_index}"
        ),
    )
    metrics = ParallelExecutor(workers=1).run([request])[0]
    return metrics.aggregates.chunks[0].digest.hex()


def execute(
    plan: ReplayPlan,
    on_metrics: Optional[MetricsHook] = None,
    cache: Optional[ReplayCache] = None,
) -> ExecutedPlan:
    """Execute a :class:`ReplayPlan` — the single entry point for replay.

    Everything the deprecated ``replay()`` / ``replay_stream()`` pair (and
    their ``stream_specs=`` / ``sink=`` knobs) could express is one plan
    field here, and the plan round-trips through JSON, so the offline CLI,
    the test matrix and the always-on replay service all execute the *same*
    object.  Determinism carries over unchanged: for a given plan the
    metrics digest is byte-identical across ``workers``, modes and sinks at
    the same shard count.

    With ``plan.cache`` set (or an explicit ``cache`` instance), every
    (policy, seed, shard) coordinate is looked up before simulating: hits
    restore their chunks from disk and fold into the same deterministic
    merge order, misses fan out to the executor as usual and are stored on
    completion.  An all-hits plan skips simulation *and* the trace load
    entirely.  The digest is byte-identical with and without the cache;
    ``cache_stats`` on the result reports the session's counters.  (With a
    retaining sink, raw per-job results are only present for recomputed
    slices — cached entries carry aggregates only; every aggregate/digest
    surface is complete and exact either way.)

    ``on_metrics`` is invoked as each (policy, seed, shard) simulation's
    metrics land — shard-major completion order under streaming modes, merge
    order in batch mode; cache hits are emitted up front in the same order —
    which is the hook the service's per-tenant delta streaming builds on.

    Raises :class:`~repro.experiments.plan.PlanError` on an invalid plan,
    ``FileNotFoundError`` / ``OSError`` when a trace path cannot be read and
    ``TraceFormatError`` on malformed traces.
    """
    plan.validate()
    scale = plan_scale(plan)
    replay_config = TraceReplayConfig(
        framework=plan.framework, bound_kind=plan.bound_kind, seed=plan.seed
    )
    sink = parse_sink_spec(plan.sink)
    source = plan_source(plan)

    session: Optional[_CacheSession] = None
    scan = None
    if cache is not None or plan.cache is not None:
        session, scan = _open_cache_session(plan, scale, source, cache)
        if plan.streaming and not scan.arrival_sorted:
            raise ValueError(
                f"streaming replay requires a trace sorted by "
                f"(arrival_time, job_id); {source} is not — sort it or use "
                "batch replay"
            )
        num_shards = min(plan.shards, scan.num_jobs)
        session.probe(plan.policies, scale.seeds, num_shards)
        if session.complete(plan.policies, scale.seeds, num_shards):
            return _executed_from_cache(
                plan, scale, replay_config, scan, num_shards, session, on_metrics
            )

    if plan.streaming:
        streamed = _execute_replay_stream(
            plan.policies,
            source,
            replay_config=replay_config,
            scale=scale,
            shards=plan.shards,
            workers=plan.workers,
            max_resident_shards=plan.max_resident_shards,
            stream_specs=plan.stream_specs,
            sink=sink,
            on_metrics=on_metrics,
            cache=session,
            scan=scan,
        )
        return ExecutedPlan(
            plan=plan,
            comparison=streamed.comparison,
            num_jobs=streamed.num_jobs,
            num_shards=streamed.num_shards,
            streamed=streamed,
            cache_stats=session.cache.counters if session is not None else None,
        )
    if isinstance(source, ClusterTierConfig):
        # Batch replay of the generated tier materialises it — fine for
        # digest-parity checks at small N; million-job runs belong on
        # ``stream_specs``.
        trace = list(iter_cluster_trace(source))
    else:
        trace = load_trace(source)
    if not trace:
        raise PlanError(f"trace is empty: {plan.source_label}")
    comparison = _execute_replay(
        plan.policies,
        trace,
        replay_config=replay_config,
        scale=scale,
        shards=plan.shards,
        workers=plan.workers,
        sink=sink,
        on_metrics=on_metrics,
        cache=session,
    )
    return ExecutedPlan(
        plan=plan,
        comparison=comparison,
        num_jobs=len(trace),
        num_shards=min(plan.shards, len(trace)),
        streamed=None,
        cache_stats=session.cache.counters if session is not None else None,
    )


def compare_policies(
    policy_names: Sequence[str],
    workload_config: WorkloadConfig,
    scale: Optional[ExperimentScale] = None,
    warmup: bool = True,
    workers: Optional[int] = None,
    warm_cache: bool = True,
    sink: Optional[SinkFactory] = None,
) -> ComparisonResult:
    """Run the named policies over one workload and collect their results.

    Every policy sees exactly the same jobs, the same cluster and the same
    straggler draws (the straggler model keys durations on the job, task and
    copy index, not on the policy's decisions), so differences are entirely
    due to scheduling.

    ``workers`` fans the independent (policy, seed) simulations out over
    that many processes (0 = auto, default = ``scale.workers``).  Each run is
    explicitly seeded and the merge happens in a fixed (policy, seed) order,
    so the result is byte-identical to the serial path.

    Warm-up semantics: learning policies (GRASS) first process a separate
    warm-up workload whose generation *and* simulation are seeded by
    ``workload seed + WARMUP_SEED_OFFSET`` — independent of the run seed, so
    one warmed state serves every seed.  With ``warm_cache`` (the default)
    each learning policy is warmed exactly once and its state snapshot is
    shipped to the workers; with ``warm_cache=False`` every request
    re-simulates the warm-up.  Both paths produce byte-identical metrics —
    the cache is purely a wall-clock optimisation.  Stateless policies are
    never warmed: warm-up cannot affect a policy without cross-job state.

    ``sink`` picks the per-simulation result sink (see :func:`replay`);
    figure producers that slice raw results by workload metadata need the
    retaining default.
    """
    scale = scale or ExperimentScale()
    if workers is None:
        workers = scale.workers
    sink = sink or SinkFactory()
    generator_config = replace(
        workload_config,
        num_jobs=scale.num_jobs,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
    )
    workload = generate_workload(generator_config)
    warmup_workload: Optional[GeneratedWorkload] = None
    warmup_sim_config: Optional[SimulationConfig] = None
    cache: Optional[WarmupCache] = None
    if warmup and scale.warmup_jobs > 0:
        warm_seed = generator_config.seed + WARMUP_SEED_OFFSET
        # A measured seed equal to the warm-up seed would silently measure
        # the very simulation the policy warmed up on; refuse it whether or
        # not the cache path is taken (the cache re-checks defensively).
        check_warmup_seed_collision(warm_seed, scale.seeds)
        warmup_generator_config = replace(
            generator_config,
            num_jobs=scale.warmup_jobs,
            seed=warm_seed,
        )
        warmup_workload = generate_workload(warmup_generator_config)
        warmup_sim_config = build_simulation_config(
            workload, scale, warm_seed, oracle_estimates=False
        )
        if warm_cache:
            cache = WarmupCache(
                warmup_workload, warmup_sim_config, measured_seeds=scale.seeds
            )
            cache.prewarm(
                policy_names, workers=ParallelExecutor(workers=workers).workers
            )

    def warm_fields(name: str) -> dict:
        if warmup_workload is None or not policy_learns(name):
            return {}
        if cache is not None:
            return {"warm_state": cache.snapshot_for(name)}
        return {"warmup": warmup_workload, "warmup_config": warmup_sim_config}

    requests = [
        RunRequest(
            workload=workload,
            config=build_simulation_config(
                workload, scale, seed, needs_oracle_estimates(name)
            ),
            policy_name=name,
            sink_factory=sink.with_tag(f"{name}-seed{seed}"),
            **warm_fields(name),
        )
        for name in policy_names
        for seed in scale.seeds
    ]
    all_metrics = ParallelExecutor(workers=workers).run(requests)

    comparison = ComparisonResult(workload=workload)
    index = 0
    for name in policy_names:
        run = PolicyRun(policy_name=name)
        for _seed in scale.seeds:
            metrics = all_metrics[index]
            index += 1
            if metrics.retains_results:
                run.results.extend(metrics.results)
            run.metrics.append(metrics)
        comparison.runs[name] = run
    return comparison

"""Runs workloads under speculation policies and computes the paper's metrics.

The central object is :class:`ComparisonResult`: per-policy job results over
the *same* workload (same jobs, same straggler draws), from which the paper's
improvement percentages — accuracy gains for deadline-bound jobs, speedups
for error-bound jobs — are derived overall, per job bin, per deadline bin and
per error bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.bounds import BoundType
from repro.core.job import JobResult
from repro.core.policies.base import SpeculationPolicy
from repro.experiments.executor import ParallelExecutor, RunRequest
from repro.experiments.policies import needs_oracle_estimates
from repro.simulator.cluster import ClusterConfig
from repro.simulator.engine import SimulationConfig
from repro.simulator.metrics import MetricsCollector
from repro.workload.bins import deadline_bin_label, error_bin_label
from repro.workload.synthetic import GeneratedWorkload, WorkloadConfig, generate_workload
from repro.workload.trace_replay import (
    TraceReplayConfig,
    TraceWorkload,
    slice_trace,
    trace_to_workload,
)
from repro.workload.traces import TraceJob
from repro.utils.stats import mean


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime.

    The defaults match the benchmark harness (laptop-scale, a couple of
    minutes per figure); ``paper()`` gives a larger setting for overnight
    runs closer to the trace-driven simulations of §6.
    """

    num_jobs: int = 60
    size_scale: float = 0.25
    max_tasks_per_job: int = 400
    num_machines: int = 150
    seeds: Sequence[int] = (1,)
    warmup_jobs: int = 40
    #: Worker processes used to fan (policy, seed) runs out; 1 = serial,
    #: 0 = auto-size to the machine.  Results are merged deterministically,
    #: so this knob never changes the numbers — only the wall-clock time.
    workers: int = 1

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A very small scale for unit tests and smoke benchmarks."""
        return cls(
            num_jobs=16,
            size_scale=0.12,
            max_tasks_per_job=120,
            num_machines=80,
            seeds=(1,),
            warmup_jobs=10,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """A heavier scale approximating the paper's trace-driven simulator."""
        return cls(
            num_jobs=300,
            size_scale=1.0,
            max_tasks_per_job=2000,
            num_machines=200,
            seeds=(1, 2, 3),
            warmup_jobs=150,
        )


@dataclass
class PolicyRun:
    """One policy's results over one workload (possibly several seeds)."""

    policy_name: str
    results: List[JobResult] = field(default_factory=list)
    metrics: List[MetricsCollector] = field(default_factory=list)

    def deadline_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.kind is BoundType.DEADLINE]

    def error_results(self) -> List[JobResult]:
        return [r for r in self.results if r.bound.kind is BoundType.ERROR]

    def average_accuracy(self, results: Optional[Iterable[JobResult]] = None) -> float:
        pool = list(results) if results is not None else self.deadline_results()
        if not pool:
            return 0.0
        return mean([r.accuracy for r in pool])

    def average_duration(self, results: Optional[Iterable[JobResult]] = None) -> float:
        pool = list(results) if results is not None else self.error_results()
        if not pool:
            return 0.0
        return mean([r.duration for r in pool])


def improvement_in_accuracy(baseline: float, improved: float) -> float:
    """Percentage improvement in average accuracy (larger accuracy is better)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (improved - baseline) / baseline


def improvement_in_duration(baseline: float, improved: float) -> float:
    """Percentage reduction in average duration (smaller duration is better)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def build_simulation_config(
    workload: GeneratedWorkload,
    scale: ExperimentScale,
    seed: int,
    oracle_estimates: bool,
) -> SimulationConfig:
    """Simulation config matching a generated workload's framework profile."""
    framework = workload.config.framework_profile
    return SimulationConfig(
        cluster=ClusterConfig(num_machines=scale.num_machines, seed=seed),
        stragglers=framework.stragglers,
        estimator=framework.estimator,
        seed=seed,
        oracle_estimates=oracle_estimates,
    )


def run_policy(
    workload: GeneratedWorkload,
    policy: SpeculationPolicy,
    scale: ExperimentScale,
    seed: int,
    oracle_estimates: bool = False,
    warmup: Optional[GeneratedWorkload] = None,
) -> MetricsCollector:
    """Run one policy instance over one workload (optionally warmed up first).

    The instance may carry state (a warm-started GRASS learner), so the run
    executes in-process; use :func:`compare_policies` with ``workers`` to fan
    registry-named policies out over processes.
    """
    request = RunRequest(
        workload=workload,
        config=build_simulation_config(workload, scale, seed, oracle_estimates),
        policy=policy,
        warmup=warmup,
    )
    return ParallelExecutor(workers=1).run([request])[0]


@dataclass
class ComparisonResult:
    """Per-policy results over the same workload, plus the workload metadata."""

    workload: GeneratedWorkload
    runs: Dict[str, PolicyRun] = field(default_factory=dict)

    def run(self, policy_name: str) -> PolicyRun:
        return self.runs[policy_name]

    # -- overall improvements --------------------------------------------------------

    def accuracy_improvement(self, policy: str, baseline: str) -> float:
        """Figure 5 style: % improvement in average accuracy of deadline jobs."""
        return improvement_in_accuracy(
            self.runs[baseline].average_accuracy(), self.runs[policy].average_accuracy()
        )

    def duration_improvement(self, policy: str, baseline: str) -> float:
        """Figure 7 style: % reduction in average duration of error jobs."""
        return improvement_in_duration(
            self.runs[baseline].average_duration(), self.runs[policy].average_duration()
        )

    # -- grouped improvements ----------------------------------------------------------

    def _grouped(self, results: Iterable[JobResult], group_fn) -> Dict[str, List[JobResult]]:
        grouped: Dict[str, List[JobResult]] = {}
        for result in results:
            grouped.setdefault(group_fn(result), []).append(result)
        return grouped

    def accuracy_improvement_by_bin(self, policy: str, baseline: str) -> Dict[str, float]:
        """Improvement per job-size bin (small / medium / large)."""
        improvements: Dict[str, float] = {}
        base_groups = self._grouped(
            self.runs[baseline].deadline_results(), lambda r: r.job_bin
        )
        pol_groups = self._grouped(
            self.runs[policy].deadline_results(), lambda r: r.job_bin
        )
        for bin_name in ("small", "medium", "large"):
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_accuracy(
                self.runs[baseline].average_accuracy(base),
                self.runs[policy].average_accuracy(pol),
            )
        return improvements

    def duration_improvement_by_bin(self, policy: str, baseline: str) -> Dict[str, float]:
        improvements: Dict[str, float] = {}
        base_groups = self._grouped(
            self.runs[baseline].error_results(), lambda r: r.job_bin
        )
        pol_groups = self._grouped(
            self.runs[policy].error_results(), lambda r: r.job_bin
        )
        for bin_name in ("small", "medium", "large"):
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_duration(
                self.runs[baseline].average_duration(base),
                self.runs[policy].average_duration(pol),
            )
        return improvements

    def accuracy_improvement_by_deadline_bin(
        self, policy: str, baseline: str
    ) -> Dict[str, float]:
        """Figure 6a: improvement grouped by the deadline slack-factor bin."""

        def group(result: JobResult) -> str:
            metadata = self.workload.metadata_for(result.job_id)
            slack = metadata.deadline_slack_percent or 0.0
            return deadline_bin_label(slack)

        improvements: Dict[str, float] = {}
        base_groups = self._grouped(self.runs[baseline].deadline_results(), group)
        pol_groups = self._grouped(self.runs[policy].deadline_results(), group)
        for bin_name in base_groups:
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_accuracy(
                self.runs[baseline].average_accuracy(base),
                self.runs[policy].average_accuracy(pol),
            )
        return improvements

    def duration_improvement_by_error_bin(
        self, policy: str, baseline: str
    ) -> Dict[str, float]:
        """Figure 6b: improvement grouped by the error-bound bin."""

        def group(result: JobResult) -> str:
            error = (result.bound.error or 0.0) * 100.0
            return error_bin_label(error)

        improvements: Dict[str, float] = {}
        base_groups = self._grouped(self.runs[baseline].error_results(), group)
        pol_groups = self._grouped(self.runs[policy].error_results(), group)
        for bin_name in base_groups:
            base = base_groups.get(bin_name, [])
            pol = pol_groups.get(bin_name, [])
            if not base or not pol:
                continue
            improvements[bin_name] = improvement_in_duration(
                self.runs[baseline].average_duration(base),
                self.runs[policy].average_duration(pol),
            )
        return improvements


def replay(
    policy_names: Sequence[str],
    trace: Sequence[TraceJob],
    replay_config: Optional[TraceReplayConfig] = None,
    scale: Optional[ExperimentScale] = None,
    shards: int = 1,
    workers: Optional[int] = None,
) -> ComparisonResult:
    """Replay a trace under the named policies and collect their results.

    The engine-facing twin of :func:`compare_policies` for trace-driven
    evaluation (§5/§6 methodology): the trace is adapted into the same
    ``JobSpec`` stream the synthetic generator emits, split into ``shards``
    arrival-window shards, and every (policy, seed, shard) triple fans out
    over the :class:`ParallelExecutor` as an independent simulation.

    Determinism mirrors ``compare_policies``: per-job bounds are seeded from
    ``(replay_config.seed, job_id)`` alone, every shard replays under the
    *full* trace's observed straggler severity, requests carry explicit
    seeds, and the merge happens in fixed (policy, seed, shard) order — so
    the result is byte-identical for any ``workers`` value.

    ``scale`` contributes the cluster size, seeds and default worker count;
    its workload-synthesis knobs (``num_jobs``, ``size_scale``, ...) are
    ignored because the trace decides the workload.
    """
    scale = scale or ExperimentScale()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if workers is None:
        workers = scale.workers
    replay_config = replay_config or TraceReplayConfig()

    full = trace_to_workload(trace, replay_config)
    if shards == 1:
        shard_workloads: List[TraceWorkload] = [full]
    else:
        shard_traces = slice_trace(trace, shards)
        shard_workloads = [
            trace_to_workload(
                shard,
                replay_config,
                shard_index=index,
                num_shards=len(shard_traces),
                stragglers=full.stragglers,
            )
            for index, shard in enumerate(shard_traces)
        ]

    def shard_config(seed: int, oracle: bool) -> SimulationConfig:
        base = build_simulation_config(full.workload, scale, seed, oracle)
        return replace(base, stragglers=full.stragglers)

    requests = [
        RunRequest(
            workload=shard.workload,
            config=shard_config(seed, needs_oracle_estimates(name)),
            policy_name=name,
        )
        for name in policy_names
        for seed in scale.seeds
        for shard in shard_workloads
    ]
    all_metrics = ParallelExecutor(workers=workers).run(requests)

    comparison = ComparisonResult(workload=full.workload)
    index = 0
    for name in policy_names:
        run = PolicyRun(policy_name=name)
        for _seed in scale.seeds:
            for _shard in shard_workloads:
                metrics = all_metrics[index]
                index += 1
                run.results.extend(metrics.results)
                run.metrics.append(metrics)
        comparison.runs[name] = run
    return comparison


def compare_policies(
    policy_names: Sequence[str],
    workload_config: WorkloadConfig,
    scale: Optional[ExperimentScale] = None,
    warmup: bool = True,
    workers: Optional[int] = None,
) -> ComparisonResult:
    """Run the named policies over one workload and collect their results.

    Every policy sees exactly the same jobs, the same cluster and the same
    straggler draws (the straggler model keys durations on the job, task and
    copy index, not on the policy's decisions), so differences are entirely
    due to scheduling.

    ``workers`` fans the independent (policy, seed) simulations out over
    that many processes (0 = auto, default = ``scale.workers``).  Each run is
    explicitly seeded and the merge happens in a fixed (policy, seed) order,
    so the result is byte-identical to the serial path.
    """
    scale = scale or ExperimentScale()
    if workers is None:
        workers = scale.workers
    generator_config = replace(
        workload_config,
        num_jobs=scale.num_jobs,
        size_scale=scale.size_scale,
        max_tasks_per_job=scale.max_tasks_per_job,
    )
    workload = generate_workload(generator_config)
    warmup_workload: Optional[GeneratedWorkload] = None
    if warmup and scale.warmup_jobs > 0:
        warmup_config = replace(
            generator_config,
            num_jobs=scale.warmup_jobs,
            seed=generator_config.seed + 7919,
        )
        warmup_workload = generate_workload(warmup_config)

    requests = [
        RunRequest(
            workload=workload,
            config=build_simulation_config(
                workload, scale, seed, needs_oracle_estimates(name)
            ),
            policy_name=name,
            warmup=warmup_workload,
        )
        for name in policy_names
        for seed in scale.seeds
    ]
    all_metrics = ParallelExecutor(workers=workers).run(requests)

    comparison = ComparisonResult(workload=workload)
    index = 0
    for name in policy_names:
        run = PolicyRun(policy_name=name)
        for _seed in scale.seeds:
            metrics = all_metrics[index]
            index += 1
            run.results.extend(metrics.results)
            run.metrics.append(metrics)
        comparison.runs[name] = run
    return comparison

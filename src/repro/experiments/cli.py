"""Command-line entry point: ``grass-experiments <figure> [options]``.

Examples::

    grass-experiments figure5
    grass-experiments figure7 --scale quick
    grass-experiments all --scale default

The output is the text table the corresponding :mod:`repro.experiments.figures`
function produces; EXPERIMENTS.md records one full run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.runner import ExperimentScale

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments",
        description="Regenerate the tables and figures of the GRASS paper.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale: quick (smoke), default (laptop), paper (overnight)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    scale = _SCALES[args.scale]()
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        started = time.time()
        result = run_figure(name, scale)
        elapsed = time.time() - started
        print(result.format_table())
        print(f"({name} regenerated in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

"""Command-line entry point: ``grass-experiments <figure> [options]``.

Examples::

    grass-experiments figure5
    grass-experiments figure7 --scale quick
    grass-experiments all --scale default --workers 0
    grass-experiments figure5 --repeat 3

The output is the text table the corresponding :mod:`repro.experiments.figures`
function produces; EXPERIMENTS.md records one full run.

``--workers N`` fans the independent (policy, seed) simulations inside each
figure out over N worker processes (``0`` auto-sizes to the machine, ``1`` —
the default — stays serial).  The merge is deterministic, so the tables are
identical for any worker count.  ``--repeat K`` regenerates each figure K
times and reports per-repeat wall times — useful for benchmarking the
harness itself.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.runner import ExperimentScale

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments",
        description="Regenerate the tables and figures of the GRASS paper.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale: quick (smoke), default (laptop), paper (overnight)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the (policy, seed) fan-out inside each "
        "figure; 1 = serial (default), 0 = auto-size to the machine; "
        "results are bit-identical for any value",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help="regenerate each figure K times and report per-repeat wall "
        "times (default 1)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 0:
        print("--workers must be >= 0 (0 means auto)", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    scale = replace(_SCALES[args.scale](), workers=args.workers)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        timings = []
        for _ in range(args.repeat):
            started = time.time()
            result = run_figure(name, scale)
            timings.append(time.time() - started)
        print(result.format_table())
        if args.repeat == 1:
            print(f"({name} regenerated in {timings[0]:.1f}s)\n")
        else:
            formatted = ", ".join(f"{elapsed:.1f}s" for elapsed in timings)
            print(
                f"({name} regenerated {args.repeat}x in [{formatted}], "
                f"best {min(timings):.1f}s)\n"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

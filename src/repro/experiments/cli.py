"""Command-line entry point: ``grass-experiments <figure>|replay|ingest|serve``.

Examples::

    grass-experiments ingest --format google --input task_events.csv \
        --output google.jsonl --limit-jobs 1000
    grass-experiments ingest --format alibaba --input batch_task.csv \
        --output alibaba.jsonl --window 0 3600
    grass-experiments replay --cluster-jobs 1000000 --stream-specs \
        --sink aggregate --shards 8 --workers 0

    grass-experiments figure5
    grass-experiments figure7 --scale quick
    grass-experiments all --scale default --workers 0
    grass-experiments figure5 --repeat 3
    grass-experiments replay --trace traces/facebook_like.jsonl --policy grass
    grass-experiments replay --trace t.jsonl --workers 4 --shards 8
    grass-experiments replay --trace big.jsonl --shards 64 --stream \
        --max-resident-shards 2 --workers 4
    grass-experiments replay --trace huge.jsonl --stream-specs
    grass-experiments replay --trace huge.jsonl --stream-specs --sink aggregate
    grass-experiments replay --trace big.jsonl --sink jsonl:out/rows
    grass-experiments replay --trace big.jsonl --cache ~/.grass-cache
    grass-experiments cache stats --cache ~/.grass-cache
    grass-experiments cache verify --cache ~/.grass-cache --sample 3

The figure verbs print the text table the corresponding
:mod:`repro.experiments.figures` function produces; EXPERIMENTS.md records
one full run.  The ``replay`` verb feeds a JSONL trace (schema documented in
``repro.workload.traces``) through the engine under one or more policies and
prints per-policy metrics plus a digest of the merged results.

``--workers N`` fans the independent simulations out over N worker processes
(``0`` auto-sizes to the machine, ``1`` — the default — stays serial).  The
merge is deterministic, so tables and digests are identical for any worker
count.  ``--repeat K`` regenerates each figure K times and reports
per-repeat wall times — useful for benchmarking the harness itself.

``replay --stream`` runs the bounded-memory pipeline: the trace is parsed
lazily and at most ``--max-resident-shards`` shard workloads exist at once,
with shard k+1 parsing while shard k simulates.  ``replay --stream-specs``
goes further: job specs stream lazily *inside* each simulation (the engine
holds a one-spec lookahead and evicts finished jobs), so even an unsharded
million-job replay runs with O(max concurrent jobs) resident state.  Both
digests are identical to the batch path at the same ``--shards`` count —
streaming is a memory knob, never a correctness knob.

``--sink`` picks where per-job results go (``repro.simulator.sinks``):
``retain`` keeps every ``JobResult`` (the default), ``aggregate`` folds each
result into constant-size mergeable aggregates the moment it is produced —
combined with ``--stream-specs`` this makes resident memory fully
independent of trace length — and ``jsonl:DIR`` spills one JSON row per
result under ``DIR`` for offline analysis.  Like streaming, the sink is a
memory knob only: table and digest are identical for every kind.

Every ``replay`` flag is generated from the :class:`ReplayPlan` dataclass's
field metadata (``repro.experiments.plan``), the single description of a
replay shared by this CLI, the library entry point ``runner.execute(plan)``
and the always-on replay service — ``grass-experiments serve`` starts that
service (``repro.service``), whose clients submit the same plans as JSON
and stream back per-shard aggregate deltas plus the same metrics digest.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.plan import PlanError, add_plan_arguments, plan_from_args
from repro.experiments.runner import (
    ExperimentScale,
    execute,
    metrics_digest,
    plan_scale,
)
from repro.simulator.sinks import parse_sink_spec
from repro.workload.ingest import INGEST_FORMATS, DEFAULT_CLOSE_GAP, ingest_trace
from repro.workload.traces import TraceFormatError

__all__ = [
    "build_parser",
    "build_replay_parser",
    "build_ingest_parser",
    "build_cache_parser",
    "cache_main",
    "ingest_main",
    "metrics_digest",  # re-exported from the runner for existing importers
    "replay_main",
    "main",
]

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale,
    "paper": ExperimentScale.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments",
        description="Regenerate the tables and figures of the GRASS paper "
        "(or use the 'replay' verb to feed a JSONL trace through the engine: "
        "grass-experiments replay --help).",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="default",
        help="experiment scale: quick (smoke), default (laptop), paper (overnight)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the (policy, seed) fan-out inside each "
        "figure; 1 = serial (default), 0 = auto-size to the machine; "
        "results are bit-identical for any value",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help="regenerate each figure K times and report per-repeat wall "
        "times (default 1)",
    )
    return parser


def build_replay_parser() -> argparse.ArgumentParser:
    """The ``replay`` verb's parser, generated from :class:`ReplayPlan`.

    Every flag comes from the plan's dataclass field metadata
    (:func:`repro.experiments.plan.add_plan_arguments`), so the CLI and the
    service's wire API expose exactly the same surface and cannot drift.
    """
    parser = argparse.ArgumentParser(
        prog="grass-experiments replay",
        description="Replay a JSONL trace through the engine under one or "
        "more speculation policies.",
    )
    add_plan_arguments(parser)
    return parser


def build_ingest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments ingest",
        description="Convert a real cluster trace (Google cluster-traces "
        "task events or Alibaba cluster-trace batch tasks, CSV) into the "
        "replay JSONL schema in one streaming pass: the input is never "
        "materialised, jobs are emitted in arrival order, and the output "
        "streams straight into 'replay --stream/--stream-specs'.",
    )
    parser.add_argument(
        "--format",
        required=True,
        choices=INGEST_FORMATS,
        help="source format: 'google' (task_events CSV, sorted by timestamp) "
        "or 'alibaba' (batch_task CSV, sorted by start time)",
    )
    parser.add_argument(
        "--input",
        required=True,
        metavar="CSV",
        help="source CSV file (column mappings documented in "
        "repro.workload.ingest and the README)",
    )
    parser.add_argument(
        "--output",
        required=True,
        metavar="JSONL",
        help="replay JSONL file to write (one job per line, arrival-ordered)",
    )
    parser.add_argument(
        "--limit-jobs",
        type=int,
        default=None,
        metavar="N",
        help="stop after emitting N jobs (the source is not read further, so "
        "converting the head of a multi-gigabyte trace stays cheap)",
    )
    parser.add_argument(
        "--window",
        type=float,
        nargs=2,
        default=None,
        metavar=("START", "END"),
        help="keep only jobs arriving in [START, END) seconds relative to "
        "the trace's first job",
    )
    parser.add_argument(
        "--close-gap",
        type=float,
        default=DEFAULT_CLOSE_GAP,
        metavar="SECONDS",
        help="idle seconds after which a job with no open tasks is considered "
        f"complete (default {DEFAULT_CLOSE_GAP:.0f}); raise it if the "
        "converter reports a job reappearing after close",
    )
    return parser


def ingest_main(argv: List[str]) -> int:
    args = build_ingest_parser().parse_args(argv)
    if args.limit_jobs is not None and args.limit_jobs < 1:
        print("--limit-jobs must be >= 1", file=sys.stderr)
        return 2
    if args.window is not None:
        start, end = args.window
        if not 0 <= start < end:
            print("--window must satisfy 0 <= START < END", file=sys.stderr)
            return 2
    if args.close_gap < 0:
        print("--close-gap must be >= 0", file=sys.stderr)
        return 2
    started = time.time()  # repro: allow[DET002] wall timing for display only
    try:
        stats = ingest_trace(
            args.format,
            args.input,
            args.output,
            limit_jobs=args.limit_jobs,
            window=tuple(args.window) if args.window is not None else None,
            close_gap=args.close_gap,
        )
    except FileNotFoundError:
        print(f"source file not found: {args.input}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"malformed source: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.time() - started  # repro: allow[DET002] wall timing for display only
    print(f"Ingested {args.input} ({args.format}) -> {args.output}")
    for label, value in stats.rows():
        print(f"  {label:<24} {value}")
    print(f"(converted in {elapsed:.1f}s; replay with: grass-experiments "
          f"replay --trace {args.output} --stream-specs --sink aggregate)")
    return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments cache",
        description="Inspect and maintain a content-addressed replay cache "
        "(repro.experiments.cache): 'stats' scans the store, 'clear' removes "
        "every entry, 'verify' re-simulates sampled entries and compares "
        "their chunk digests (non-zero exit on any mismatch).",
    )
    parser.add_argument(
        "action",
        choices=("stats", "clear", "verify"),
        help="stats: entry count/bytes/staleness; clear: delete every entry; "
        "verify: re-simulate sampled entries and compare digests",
    )
    parser.add_argument(
        "--cache",
        required=True,
        metavar="DIR",
        help="cache directory (the DIR given to replay --cache)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=3,
        metavar="N",
        help="verify: re-simulate up to N entries sampled evenly across the "
        "store (default 3)",
    )
    return parser


def cache_main(argv: List[str]) -> int:
    from repro.experiments.cache import (
        CACHE_FORMAT_VERSION,
        ReplayCache,
        StaleEntryError,
    )
    from repro.experiments.runner import resimulate_cached_entry

    args = build_cache_parser().parse_args(argv)
    if args.sample < 1:
        print("--sample must be >= 1", file=sys.stderr)
        return 2
    try:
        cache = ReplayCache(args.cache)
    except OSError as exc:
        print(f"cannot open replay cache at {args.cache}: {exc}", file=sys.stderr)
        return 2
    if args.action == "stats":
        stats = cache.store_stats()
        print(f"replay cache at {cache.root}")
        print(f"  entries              {stats.entries}")
        print(f"  total bytes          {stats.total_bytes}")
        print(f"  stale engine entries {stats.stale_engine_entries}")
        print(f"  invalid files        {stats.invalid_files}")
        print(f"  engine fingerprint   {cache.engine[:16]}...")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        noun = "entry" if removed == 1 else "entries"
        print(f"removed {removed} {noun} from {cache.root}")
        return 0
    # verify: sample current-engine entries evenly across the sorted store
    # and re-simulate each one through the lazy spec-source path; any digest
    # mismatch is a non-zero exit (the smoke tests' tamper-detection hook).
    candidates = [
        (path, payload)
        for path, payload in cache.iter_entries()
        if payload is not None
        and payload.get("version") == CACHE_FORMAT_VERSION
        and payload.get("engine") == cache.engine
    ]
    if not candidates:
        print(
            f"no verifiable entries in {cache.root} "
            "(empty store, stale engine, or invalid files)"
        )
        return 0
    step = max(1, len(candidates) // args.sample)
    selected = candidates[::step][: args.sample]
    failures = 0
    verified = 0
    for path, payload in selected:
        chunk = payload.get("chunk")
        stored = str(chunk.get("digest", "")) if isinstance(chunk, dict) else ""
        try:
            fresh = resimulate_cached_entry(payload)
        except StaleEntryError as exc:
            print(f"skip     {path.name}: {exc}")
            continue
        except (OSError, TraceFormatError, ValueError) as exc:
            print(f"skip     {path.name}: {exc}")
            continue
        if fresh == stored:
            verified += 1
            print(f"ok       {path.name}: digest {fresh[:16]}... matches")
        else:
            failures += 1
            print(
                f"MISMATCH {path.name}: stored {stored[:16]}... "
                f"recomputed {fresh[:16]}...",
                file=sys.stderr,
            )
    noun = "entry" if len(selected) == 1 else "entries"
    print(
        f"verified {verified}/{len(selected)} sampled {noun}, "
        f"{failures} mismatch(es)"
    )
    return 1 if failures else 0


def replay_main(argv: List[str]) -> int:
    args = build_replay_parser().parse_args(argv)
    try:
        plan = plan_from_args(args).validate()
    except PlanError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    sink_factory = parse_sink_spec(plan.sink)
    started = time.time()  # repro: allow[DET002] wall timing for display only
    try:
        executed = execute(plan)
    except PlanError as exc:  # discovered at execution time (empty trace, ...)
        print(str(exc), file=sys.stderr)
        return 2
    except FileNotFoundError:
        print(f"trace file not found: {plan.trace}", file=sys.stderr)
        return 2
    except IsADirectoryError:
        print(f"trace path is a directory, not a JSONL file: {plan.trace}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Satellite fix: any unreadable trace (permissions, I/O, ...) is a
        # one-line named error and a nonzero exit, never a traceback.
        reason = exc.strerror or str(exc)
        print(f"cannot read trace {plan.trace}: {reason}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.time() - started  # repro: allow[DET002] wall timing for display only
    comparison = executed.comparison
    num_jobs = executed.num_jobs
    streamed = executed.streamed
    scale = plan_scale(plan)
    source_label = plan.source_label

    # Accuracy is the paper's metric for deadline-bound jobs and duration the
    # metric for error-bound jobs; a column shows "-" when the replay assigned
    # no jobs of that class rather than a misleading 0.  "results" counts one
    # row per (job, seed, shard) — with several seeds it exceeds the trace's
    # job count.
    header = (
        f"{'policy':<22} | {'results':>7} | {'avg accuracy (deadline)':>23} | "
        f"{'avg duration (error)':>20} | {'bound met':>9} | {'spec copies':>11}"
    )
    if plan.stream_specs:
        mode = " (streaming specs)"
    elif plan.stream:
        mode = " (streaming)"
    else:
        mode = ""
    print(
        f"Replayed {source_label}{mode}: {num_jobs} jobs, {plan.shards} shard(s), "
        f"{len(scale.seeds)} seed(s), workers={plan.workers}, sink={plan.sink}"
    )
    print(header)
    print("-" * len(header))
    # The table is rendered from each run's StreamingAggregates — identically
    # maintained by every sink — so the rows (like the digest below) are
    # byte-identical whether the raw results were retained, folded away or
    # spilled to disk.
    for name in plan.policies:
        aggregates = comparison.runs[name].aggregates
        accuracy = (
            f"{aggregates.average_accuracy:.4f}" if aggregates.deadline_jobs else "-"
        )
        duration = (
            f"{aggregates.average_duration:.2f}" if aggregates.error_jobs else "-"
        )
        print(
            f"{name:<22} | {aggregates.num_results:>7} | {accuracy:>23} | "
            f"{duration:>20} | {aggregates.bound_met_jobs:>9} | "
            f"{aggregates.speculative_copies:>11}"
        )
    print(f"metrics digest: sha256={metrics_digest(comparison)}")
    if executed.cache_stats is not None:
        print(f"replay cache: {executed.cache_stats.summary()} ({plan.cache})")
    if sink_factory.kind == "jsonl":
        print(
            f"per-job rows spilled to {sink_factory.jsonl_dir}/"
            "results-<policy>-seed<seed>-shard<shard>.jsonl"
        )
    truncated = sum(
        metrics.truncated_jobs
        for run in comparison.runs.values()
        for metrics in run.metrics
    )
    if truncated:
        print(
            f"warning: {truncated} job run(s) truncated at max_simulated_time "
            "(in flight or never arrived when the clock ran out)",
            file=sys.stderr,
        )
    if streamed is not None:
        if streamed.stream_specs:
            print(
                f"peak resident jobs: {streamed.peak_resident_jobs} "
                f"(of {streamed.num_jobs} in the trace)"
            )
        else:
            print(
                f"peak resident shards: {streamed.peak_resident_shards} "
                f"(limit {streamed.max_resident_shards})"
            )
    print(f"(replayed in {elapsed:.1f}s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    if argv and argv[0] == "ingest":
        return ingest_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "analyze":
        # Imported lazily: the static analyzer is a dev/CI tool the
        # figure/replay verbs never need.
        from repro.analysis.cli import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "serve":
        # Imported lazily: the service pulls in asyncio machinery the
        # figure/replay verbs never need.
        from repro.service.server import build_serve_parser, serve_main

        return serve_main(build_serve_parser().parse_args(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.workers < 0:
        print("--workers must be >= 0 (0 means auto)", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    scale = replace(_SCALES[args.scale](), workers=args.workers)
    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        timings = []
        for _ in range(args.repeat):
            started = time.time()  # repro: allow[DET002] wall timing for display only
            result = run_figure(name, scale)
            timings.append(time.time() - started)  # repro: allow[DET002] wall timing for display only
        print(result.format_table())
        if args.repeat == 1:
            print(f"({name} regenerated in {timings[0]:.1f}s)\n")
        else:
            formatted = ", ".join(f"{elapsed:.1f}s" for elapsed in timings)
            print(
                f"({name} regenerated {args.repeat}x in [{formatted}], "
                f"best {min(timings):.1f}s)\n"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

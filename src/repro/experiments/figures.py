"""One reproduction function per table / figure of the paper's evaluation.

Every function returns a :class:`FigureResult` whose ``rows`` are plain
dictionaries (easy to print, assert on, or dump to CSV) and whose
``format_table()`` renders the same rows/series the paper reports.  The
``scale`` argument trades fidelity for runtime; the benchmark harness uses
the default (laptop) scale and records the outputs in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.bounds import ApproximationBound
from repro.core.estimators import EstimatorConfig
from repro.core.job import JobPhaseSpec, JobSpec
from repro.core.policies import GreedySpeculative, ResourceAwareSpeculative
from repro.experiments.policies import make_grass_with_perturbation
from repro.experiments.runner import (
    ComparisonResult,
    ExperimentScale,
    compare_policies,
    improvement_in_accuracy,
    improvement_in_duration,
    replay,
    run_policy,
)
from repro.model.hill import estimate_tail_index, hill_estimates
from repro.model.reactive import (
    ReactiveModelConfig,
    gs_omega,
    omega_grid,
    ras_omega,
    response_time_ratio_curve,
)
from repro.simulator.cluster import ClusterConfig
from repro.simulator.engine import Simulation, SimulationConfig
from repro.simulator.stragglers import StragglerConfig, StragglerModel
from repro.utils.stats import mean
from repro.workload.synthetic import WorkloadConfig, generate_workload
from repro.workload.trace_replay import TraceReplayConfig, synthesize_trace
from repro.workload.traces import summarize_trace, trace_from_specs


@dataclass
class FigureResult:
    """Rows regenerating one table or figure, plus a text rendering."""

    figure: str
    description: str
    rows: List[Dict] = field(default_factory=list)

    def format_table(self) -> str:
        if not self.rows:
            return f"{self.figure}: (no rows)"
        columns = list(self.rows[0].keys())
        widths = {
            col: max(len(str(col)), *(len(_fmt(row.get(col))) for row in self.rows))
            for col in columns
        }
        lines = [f"== {self.figure}: {self.description}"]
        lines.append(" | ".join(str(col).ljust(widths[col]) for col in columns))
        lines.append("-+-".join("-" * widths[col] for col in columns))
        for row in self.rows:
            lines.append(
                " | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
            )
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# --------------------------------------------------------------------------- Table 1


def table1_traces(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Table 1: properties of the (synthetic stand-ins for the) two traces."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Table 1",
        description="Facebook and Bing trace stand-ins (synthetic, calibrated to §2/§6.1)",
    )
    for workload, framework in (("facebook", "hadoop"), ("bing", "hadoop")):
        config = WorkloadConfig(
            workload=workload,
            framework=framework,
            num_jobs=scale.num_jobs,
            size_scale=scale.size_scale,
            max_tasks_per_job=scale.max_tasks_per_job,
            seed=11,
        )
        generated = generate_workload(config)
        # Durations include the straggler multiplier of the first copy so the
        # summary reflects observed task durations, not just data sizes.
        straggler = StragglerModel(config.framework_profile.stragglers, seed=11)
        trace = trace_from_specs(generated.specs())
        for job in trace:
            job.task_durations = [
                duration * straggler.multiplier(job.job_id, i, 0)
                for i, duration in enumerate(job.task_durations)
            ]
        summary = summarize_trace(trace, name=workload)
        result.rows.append(
            {
                "trace": workload,
                "jobs": summary.num_jobs,
                "tasks": summary.num_tasks,
                "small": summary.bin_counts.get("small", 0),
                "medium": summary.bin_counts.get("medium", 0),
                "large": summary.bin_counts.get("large", 0),
                "median task (s)": summary.median_task_duration,
                "p95 task (s)": summary.p95_task_duration,
                "slowest/median": summary.mean_slowest_to_median,
            }
        )
    return result


# ---------------------------------------------------------------- Figures 1 and 2 (worked examples)


class _PlantedStragglerModel(StragglerModel):
    """Deterministic straggler model for the worked examples of Figures 1/2.

    The *first* copy of each planted task is inflated by ``factor``; every
    other copy (including speculative re-executions of the planted tasks)
    runs at nominal speed, which is exactly the situation the paper's
    illustrations assume (trem of the straggler exceeds tnew of a re-run).
    """

    def __init__(self, planted: Dict[int, float]) -> None:
        super().__init__(StragglerConfig.none(), seed=0)
        self._planted = dict(planted)

    def multiplier(self, job_id: int, task_id: int, copy_index: int) -> float:
        if copy_index == 0 and task_id in self._planted:
            return self._planted[task_id]
        return 1.0


def _sole_result(metrics, figure: str, scenario: str):
    """The single result of a worked-example run, or a *named* failure.

    A scenario that yields no results (e.g. a zero-job workload, or a policy
    that never finishes the job within the horizon) used to surface as an
    opaque ``IndexError`` on ``metrics.results[0]``; fail with the figure and
    scenario in the message instead.
    """
    results = metrics.results
    if not results:
        raise ValueError(
            f"{figure}: scenario {scenario!r} produced no job results; "
            "the worked example needs exactly one finished job"
        )
    return results[0]


def _worked_example_job(works: Sequence[float], bound: ApproximationBound, slots: int) -> JobSpec:
    return JobSpec(
        job_id=0,
        arrival_time=0.0,
        phases=(JobPhaseSpec(phase_index=0, task_works=tuple(works)),),
        bound=bound,
        max_slots=slots,
    )


def _run_worked_example(
    works: Sequence[float],
    bound: ApproximationBound,
    slots: int,
    policy,
    planted: Dict[int, float],
):
    spec = _worked_example_job(works, bound, slots)
    # The examples use noise-free *reactive* estimates (not the oracle):
    # the straggler is only discovered once its progress reports arrive,
    # exactly as in the paper's illustration.
    config = SimulationConfig(
        cluster=ClusterConfig(num_machines=slots, heterogeneity=0.0, seed=0),
        stragglers=StragglerConfig.none(),
        estimator=EstimatorConfig.perfect(),
        seed=0,
        oracle_estimates=False,
    )
    simulation = Simulation(config, policy, [spec])
    simulation.stragglers = _PlantedStragglerModel(planted)
    return simulation.run()


def figure1_deadline_example() -> FigureResult:
    """Figure 1: GS vs RAS on a small deadline-bound job (9 tasks, 2 slots).

    The exact task sizes of the paper's illustration are not published, so
    the example uses a 9-task job with one straggling task and reports the
    accuracy each policy reaches under a loose and a tight deadline; the
    qualitative conclusion (RAS wins under the loose deadline, GS under the
    tight one) is the figure's point.
    """
    works = [2.0] * 9
    planted = {0: 5.0}  # T1's original copy takes 10 units; a re-run takes 2.
    result = FigureResult(
        figure="Figure 1",
        description="GS vs RAS, deadline-bound worked example (9 tasks, 2 slots, T1 straggles)",
    )
    for deadline_label, deadline in (("tight (~3 units)", 3.2), ("loose (~6 units)", 6.2)):
        for name, policy in (("gs", GreedySpeculative()), ("ras", ResourceAwareSpeculative())):
            metrics = _run_worked_example(
                works, ApproximationBound.with_deadline(deadline), 2, policy, planted
            )
            sole = _sole_result(
                metrics, "Figure 1", f"{name} under {deadline_label} deadline"
            )
            result.rows.append(
                {
                    "deadline": deadline_label,
                    "policy": name,
                    "tasks completed": sole.completed_input_tasks,
                    "accuracy": sole.accuracy,
                }
            )
    return result


def figure2_error_example() -> FigureResult:
    """Figure 2: GS vs RAS on a small error-bound job (6 tasks, 3 slots)."""
    works = [3.0] * 6
    planted = {2: 4.0}  # T3's original copy takes 12 units; a re-run takes 3.
    result = FigureResult(
        figure="Figure 2",
        description="GS vs RAS, error-bound worked example (6 tasks, 3 slots, T3 straggles)",
    )
    for error_label, error in (("40%", 0.40), ("20%", 0.20)):
        for name, policy in (("gs", GreedySpeculative()), ("ras", ResourceAwareSpeculative())):
            metrics = _run_worked_example(
                works, ApproximationBound.with_error(error), 3, policy, planted
            )
            sole = _sole_result(
                metrics, "Figure 2", f"{name} under {error_label} error bound"
            )
            result.rows.append(
                {
                    "error bound": error_label,
                    "policy": name,
                    "duration": sole.duration,
                }
            )
    return result


# --------------------------------------------------------------------------- Figure 3


def figure3_hill_plot(num_samples: int = 20_000, seed: int = 3) -> FigureResult:
    """Figure 3: Hill plot of task durations; the plateau gives β ≈ 1.259."""
    config = WorkloadConfig(
        workload="facebook", framework="hadoop", num_jobs=60, size_scale=0.5, seed=seed
    )
    generated = generate_workload(config)
    straggler = StragglerModel(config.framework_profile.stragglers, seed=seed)
    durations: List[float] = []
    for spec in generated.specs():
        for index, work in enumerate(spec.input_phase.task_works):
            durations.append(work * straggler.multiplier(spec.job_id, index, 0))
            if len(durations) >= num_samples:
                break
        if len(durations) >= num_samples:
            break
    estimates = hill_estimates(durations)
    beta = estimate_tail_index(durations)
    result = FigureResult(
        figure="Figure 3",
        description=f"Hill plot of task durations (estimated beta = {beta:.3f}; paper: 1.259)",
    )
    step = max(1, len(estimates) // 12)
    for k, estimate in estimates[::step]:
        result.rows.append({"order statistics (k)": k, "hill estimate of beta": estimate})
    result.rows.append({"order statistics (k)": "plateau", "hill estimate of beta": beta})
    return result


# --------------------------------------------------------------------------- Figure 4


def figure4_reactive_model(
    waves_list: Sequence[int] = (1, 2, 3, 4, 5),
    trials: int = 120,
    seed: int = 4,
) -> FigureResult:
    """Figure 4: response-time ratio of the ω-policy family vs ω, per wave count."""
    config = ReactiveModelConfig(shape=1.259, scale=1.0, slots=20, trials=trials, seed=seed)
    omegas = omega_grid(config.shape, config.scale, points=9, span=5.0)
    curves = response_time_ratio_curve(omegas, waves_list, config)
    gs_point = gs_omega(config.shape, config.scale)
    ras_point = ras_omega(config.shape, config.scale)
    result = FigureResult(
        figure="Figure 4",
        description=(
            "Processing time / optimal vs speculation delay ω "
            f"(GS at ω={gs_point:.2f}, RAS at ω={ras_point:.2f})"
        ),
    )
    for waves, curve in curves.items():
        for omega, ratio in curve:
            result.rows.append({"waves": waves, "omega": omega, "time/optimal": ratio})
    return result


# ------------------------------------------------------------------ §2.3 potential gains


def sec23_potential_gains(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """§2.3: headroom of an informed (oracle) scheduler over LATE and Mantri."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Section 2.3",
        description="Potential gains of the oracle over LATE/Mantri (paper: 48%/44% accuracy, 32%/40% speedup)",
    )
    for workload in ("facebook", "bing"):
        for bound_kind, metric in (("deadline", "accuracy"), ("error", "duration")):
            comparison = compare_policies(
                ["late", "mantri", "oracle"],
                WorkloadConfig(workload=workload, framework="hadoop", bound_kind=bound_kind, seed=23),
                scale=scale,
            )
            for baseline in ("late", "mantri"):
                if metric == "accuracy":
                    value = comparison.accuracy_improvement("oracle", baseline)
                else:
                    value = comparison.duration_improvement("oracle", baseline)
                result.rows.append(
                    {
                        "workload": workload,
                        "bound": bound_kind,
                        "baseline": baseline,
                        "oracle improvement (%)": value,
                    }
                )
    return result


# ------------------------------------------------------------------- Figures 5, 6, 7


def _per_bin_rows(
    comparison: ComparisonResult,
    policy: str,
    baselines: Sequence[str],
    metric: str,
    extra: Dict,
) -> List[Dict]:
    rows = []
    for baseline in baselines:
        if metric == "accuracy":
            by_bin = comparison.accuracy_improvement_by_bin(policy, baseline)
            overall = comparison.accuracy_improvement(policy, baseline)
        else:
            by_bin = comparison.duration_improvement_by_bin(policy, baseline)
            overall = comparison.duration_improvement(policy, baseline)
        row = dict(extra)
        row["baseline"] = baseline
        row["small (%)"] = by_bin.get("small", float("nan"))
        row["medium (%)"] = by_bin.get("medium", float("nan"))
        row["large (%)"] = by_bin.get("large", float("nan"))
        row["overall (%)"] = overall
        rows.append(row)
    return rows


def figure5_deadline_gains(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = ("facebook", "bing"),
    frameworks: Sequence[str] = ("hadoop", "spark"),
) -> FigureResult:
    """Figure 5: GRASS's accuracy improvement for deadline-bound jobs.

    Panels (a)-(d) of the paper correspond to the (workload, framework)
    combinations; improvements are reported against both LATE and Mantri,
    split by job-size bin.
    """
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 5",
        description="Accuracy improvement of GRASS for deadline-bound jobs (vs LATE and Mantri)",
    )
    for workload in workloads:
        for framework in frameworks:
            comparison = compare_policies(
                ["late", "mantri", "grass"],
                WorkloadConfig(workload=workload, framework=framework, bound_kind="deadline", seed=5),
                scale=scale,
            )
            result.rows.extend(
                _per_bin_rows(
                    comparison,
                    "grass",
                    ("late", "mantri"),
                    "accuracy",
                    {"workload": workload, "framework": framework},
                )
            )
    return result


def figure7_error_gains(
    scale: Optional[ExperimentScale] = None,
    workloads: Sequence[str] = ("facebook", "bing"),
    frameworks: Sequence[str] = ("hadoop", "spark"),
) -> FigureResult:
    """Figure 7: GRASS's speedup for error-bound jobs (vs LATE and Mantri)."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 7",
        description="Speedup of GRASS for error-bound jobs (vs LATE and Mantri)",
    )
    for workload in workloads:
        for framework in frameworks:
            comparison = compare_policies(
                ["late", "mantri", "grass"],
                WorkloadConfig(workload=workload, framework=framework, bound_kind="error", seed=7),
                scale=scale,
            )
            result.rows.extend(
                _per_bin_rows(
                    comparison,
                    "grass",
                    ("late", "mantri"),
                    "duration",
                    {"workload": workload, "framework": framework},
                )
            )
    return result


def figure6_bound_bins(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Figure 6: GRASS's gains binned by deadline slack factor and error bound."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 6",
        description="GRASS gains (vs LATE) binned by deadline factor and error bound",
    )
    for workload in ("facebook", "bing"):
        comparison = compare_policies(
            ["late", "grass"],
            WorkloadConfig(workload=workload, framework="hadoop", bound_kind="deadline", seed=6),
            scale=scale,
        )
        for bin_name, value in sorted(
            comparison.accuracy_improvement_by_deadline_bin("grass", "late").items()
        ):
            result.rows.append(
                {
                    "workload": workload,
                    "bound": "deadline",
                    "bin (%)": bin_name,
                    "improvement (%)": value,
                }
            )
        comparison = compare_policies(
            ["late", "grass"],
            WorkloadConfig(workload=workload, framework="hadoop", bound_kind="error", seed=6),
            scale=scale,
        )
        for bin_name, value in sorted(
            comparison.duration_improvement_by_error_bin("grass", "late").items()
        ):
            result.rows.append(
                {
                    "workload": workload,
                    "bound": "error",
                    "bin (%)": bin_name,
                    "improvement (%)": value,
                }
            )
    return result


# --------------------------------------------------------------------------- Figure 8


def figure8_optimality(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Figure 8: GRASS approaches the informed oracle (Facebook workload, Spark)."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 8",
        description="GRASS vs the oracle scheduler (improvements over LATE, Facebook/Spark)",
    )
    for bound_kind, metric in (("deadline", "accuracy"), ("error", "duration")):
        comparison = compare_policies(
            ["late", "grass", "oracle"],
            WorkloadConfig(workload="facebook", framework="spark", bound_kind=bound_kind, seed=8),
            scale=scale,
        )
        for policy in ("grass", "oracle"):
            rows = _per_bin_rows(
                comparison, policy, ("late",), metric, {"bound": bound_kind, "policy": policy}
            )
            result.rows.extend(rows)
    return result


# --------------------------------------------------------------------------- Figure 9


def figure9_dag(
    scale: Optional[ExperimentScale] = None, dag_lengths: Sequence[int] = (2, 3, 4, 5, 6)
) -> FigureResult:
    """Figure 9: GRASS's gains hold as the job DAG grows from 2 to 6 phases."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 9",
        description="GRASS gains (vs LATE) as a function of DAG length",
    )
    for bound_kind, metric in (("deadline", "accuracy"), ("error", "duration")):
        for dag_length in dag_lengths:
            comparison = compare_policies(
                ["late", "grass"],
                WorkloadConfig(
                    workload="facebook",
                    framework="hadoop",
                    bound_kind=bound_kind,
                    dag_length=dag_length,
                    seed=9,
                ),
                scale=scale,
            )
            if metric == "accuracy":
                value = comparison.accuracy_improvement("grass", "late")
            else:
                value = comparison.duration_improvement("grass", "late")
            result.rows.append(
                {"bound": bound_kind, "dag length": dag_length, "improvement (%)": value}
            )
    return result


# ------------------------------------------------------------------- Figures 10 and 11


def figure10_11_switching(
    scale: Optional[ExperimentScale] = None,
    bound_kind: str = "deadline",
    frameworks: Sequence[str] = ("hadoop", "spark"),
) -> FigureResult:
    """Figures 10/11: GS-only and RAS-only vs GRASS (Facebook workload, vs LATE)."""
    scale = scale or ExperimentScale()
    metric = "accuracy" if bound_kind == "deadline" else "duration"
    figure = "Figure 10" if bound_kind == "deadline" else "Figure 11"
    result = FigureResult(
        figure=figure,
        description=f"GS-only vs RAS-only vs GRASS for {bound_kind}-bound jobs (vs LATE)",
    )
    for framework in frameworks:
        comparison = compare_policies(
            ["late", "gs", "ras", "grass"],
            WorkloadConfig(workload="facebook", framework=framework, bound_kind=bound_kind, seed=10),
            scale=scale,
        )
        for policy in ("gs", "ras", "grass"):
            result.rows.extend(
                _per_bin_rows(
                    comparison,
                    policy,
                    ("late",),
                    metric,
                    {"framework": framework, "policy": policy},
                )
            )
    return result


# --------------------------------------------------------------------------- Figure 12


def figure12_strawman(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Figure 12: learned switching vs the static two-wave strawman."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 12",
        description="GRASS's learned switching vs the two-wave strawman (vs LATE)",
    )
    for bound_kind, metric in (("deadline", "accuracy"), ("error", "duration")):
        comparison = compare_policies(
            ["late", "grass-strawman", "grass"],
            WorkloadConfig(workload="facebook", framework="hadoop", bound_kind=bound_kind, seed=12),
            scale=scale,
        )
        for policy in ("grass-strawman", "grass"):
            result.rows.extend(
                _per_bin_rows(
                    comparison, policy, ("late",), metric, {"bound": bound_kind, "policy": policy}
                )
            )
    return result


# ------------------------------------------------------------------- Figures 13 and 14


def figure13_14_factors(
    scale: Optional[ExperimentScale] = None, bound_kind: str = "deadline"
) -> FigureResult:
    """Figures 13/14: one, two or all three switching factors (vs LATE)."""
    scale = scale or ExperimentScale()
    metric = "accuracy" if bound_kind == "deadline" else "duration"
    figure = "Figure 13" if bound_kind == "deadline" else "Figure 14"
    result = FigureResult(
        figure=figure,
        description=f"Best-1 / Best-2 / all-three switching factors for {bound_kind}-bound jobs",
    )
    policies = ("grass-1factor", "grass-2factor", "grass")
    labels = {"grass-1factor": "best-1", "grass-2factor": "best-2", "grass": "all-3"}
    for framework in ("hadoop", "spark"):
        comparison = compare_policies(
            ["late", *policies],
            WorkloadConfig(workload="facebook", framework=framework, bound_kind=bound_kind, seed=13),
            scale=scale,
        )
        for policy in policies:
            result.rows.extend(
                _per_bin_rows(
                    comparison,
                    policy,
                    ("late",),
                    metric,
                    {"framework": framework, "factors": labels[policy]},
                )
            )
    return result


# --------------------------------------------------------------------------- Figure 15


def figure15_perturbation(
    scale: Optional[ExperimentScale] = None,
    perturbations: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20),
) -> FigureResult:
    """Figure 15: sensitivity of GRASS to the perturbation probability ξ."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Figure 15",
        description="GRASS gains (vs LATE) as a function of the perturbation ξ",
    )
    for bound_kind, metric in (("deadline", "accuracy"), ("error", "duration")):
        for workload in ("facebook", "bing"):
            workload_config = WorkloadConfig(
                workload=workload, framework="hadoop", bound_kind=bound_kind, seed=15
            )
            baseline_comparison = compare_policies(
                ["late"], workload_config, scale=scale
            )
            baseline_run = baseline_comparison.runs["late"]
            workload_generated = baseline_comparison.workload
            for xi in perturbations:
                policy = make_grass_with_perturbation(xi)
                metrics_per_seed = []
                for seed in scale.seeds:
                    metrics_per_seed.append(
                        run_policy(
                            workload_generated,
                            policy,
                            scale,
                            seed=seed,
                        )
                    )
                results = [r for m in metrics_per_seed for r in m.results]
                if metric == "accuracy":
                    value = improvement_in_accuracy(
                        baseline_run.average_accuracy(),
                        mean([r.accuracy for r in results if r.bound.is_deadline])
                        if any(r.bound.is_deadline for r in results)
                        else 0.0,
                    )
                else:
                    error_results = [r for r in results if r.bound.is_error]
                    value = improvement_in_duration(
                        baseline_run.average_duration(),
                        mean([r.duration for r in error_results]) if error_results else 0.0,
                    )
                result.rows.append(
                    {
                        "bound": bound_kind,
                        "workload": workload,
                        "xi (%)": xi * 100.0,
                        "improvement (%)": value,
                    }
                )
    return result


# ----------------------------------------------------------------------- Exact jobs (§6.2.2)


def exact_jobs_speedup(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """§6.2.2: GRASS speeds up exact jobs (error bound of zero) as well."""
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Exact jobs",
        description="Speedup of exact (error=0) jobs under GRASS (paper: 34%)",
    )
    for workload in ("facebook", "bing"):
        comparison = compare_policies(
            ["late", "mantri", "grass"],
            WorkloadConfig(workload=workload, framework="hadoop", bound_kind="exact", seed=16),
            scale=scale,
        )
        for baseline in ("late", "mantri"):
            result.rows.append(
                {
                    "workload": workload,
                    "baseline": baseline,
                    "speedup (%)": comparison.duration_improvement("grass", baseline),
                }
            )
    return result


# ------------------------------------------------------------- Trace replay validation


def trace_vs_synthetic(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Replay methodology check: trace-driven vs synthetic GRASS gains.

    The paper evaluates against replayed production traces; this repo's
    stand-in synthesizes the same mix.  To validate the replay pipeline, the
    synthetic workload is exported as an observed-duration trace, replayed
    through :func:`~repro.experiments.runner.replay`, and GRASS's gains over
    LATE are reported side by side for both sources.  Close agreement means
    the trace adapter (bound assignment, straggler calibration, wave
    targeting) reproduces the synthetic methodology — the property that
    makes user-supplied traces trustworthy inputs.
    """
    scale = scale or ExperimentScale()
    result = FigureResult(
        figure="Trace replay",
        description="GRASS vs LATE: synthetic workload vs its trace-driven replay",
    )
    policies = ["late", "grass"]
    for workload in ("facebook", "bing"):
        synthetic_comparison = compare_policies(
            policies,
            WorkloadConfig(workload=workload, framework="hadoop", seed=21),
            scale=scale,
            warmup=False,
        )
        trace = synthesize_trace(
            workload=workload,
            framework="hadoop",
            num_jobs=scale.num_jobs,
            size_scale=scale.size_scale,
            max_tasks_per_job=scale.max_tasks_per_job,
            seed=21,
        )
        replay_comparison = replay(
            policies,
            trace,
            replay_config=TraceReplayConfig(framework="hadoop", seed=21),
            scale=scale,
            workers=scale.workers,
        )
        for source, comparison in (
            ("synthetic", synthetic_comparison),
            ("trace-replay", replay_comparison),
        ):
            # Job counts and improvements are read off the aggregates view so
            # the figure works under any result sink, not just the retaining
            # default (the improvements are aggregate-based too).
            result.rows.append(
                {
                    "workload": workload,
                    "source": source,
                    "jobs": comparison.runs["grass"].aggregates.num_results,
                    "accuracy gain (%)": comparison.accuracy_improvement("grass", "late"),
                    "speedup (%)": comparison.duration_improvement("grass", "late"),
                }
            )
    return result


#: Registry used by the CLI and the benchmark harness.  Every entry accepts an
#: optional :class:`ExperimentScale` (ignored by the experiments that do not
#: involve the cluster simulator, e.g. the worked examples and the analytic
#: model).
FIGURES = {
    "table1": table1_traces,
    "figure1": lambda scale=None: figure1_deadline_example(),
    "figure2": lambda scale=None: figure2_error_example(),
    "figure3": lambda scale=None: figure3_hill_plot(),
    "figure4": lambda scale=None: figure4_reactive_model(),
    "sec2.3": sec23_potential_gains,
    "figure5": figure5_deadline_gains,
    "figure6": figure6_bound_bins,
    "figure7": figure7_error_gains,
    "figure8": figure8_optimality,
    "figure9": figure9_dag,
    "figure10": lambda scale=None: figure10_11_switching(scale, bound_kind="deadline"),
    "figure11": lambda scale=None: figure10_11_switching(scale, bound_kind="error"),
    "figure12": figure12_strawman,
    "figure13": lambda scale=None: figure13_14_factors(scale, bound_kind="deadline"),
    "figure14": lambda scale=None: figure13_14_factors(scale, bound_kind="error"),
    "figure15": figure15_perturbation,
    "exact": exact_jobs_speedup,
    "trace-replay": trace_vs_synthetic,
}


def run_figure(name: str, scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Run one named experiment from :data:`FIGURES`."""
    try:
        producer = FIGURES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown figure {name!r}; expected one of {sorted(FIGURES)}"
        ) from exc
    return producer(scale)

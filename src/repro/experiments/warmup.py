"""Shared warm-up caching: warm each learning policy once, ship snapshots.

``compare_policies`` warms learning policies (GRASS) on a separate workload
so their sample stores reflect cluster history before the measured run.
Before this module existed, *every* ``(policy, seed)`` request re-simulated
that identical warm-up inside ``RunRequest.execute()`` — at ``paper()``
scale, 21 requests each paying a warm-up roughly a third as large as the
measured workload.  The cache runs each warm-up exactly once per
``(policy, warm-up seed)``, snapshots the policy's cross-job state
(:meth:`~repro.core.policies.base.SpeculationPolicy.state_snapshot`) and
ships the snapshot to workers, which restore it instead of re-simulating.

Cache semantics
---------------

* **Key**: ``(policy name, warm-up seed)`` where the warm-up seed is the
  warm-up *simulation config's* seed.  The warm-up workload itself is
  regenerated deterministically from its config, so two calls with the same
  key have byte-identical warm-up runs and may share a snapshot.
* **Invalidation**: a cache instance is scoped to the one warm-up workload +
  config pair it was constructed with — the memo key deliberately omits
  them, so do NOT reuse an instance across different warm-up workloads or
  configs.  Callers build a fresh cache per ``compare_policies`` call, so
  there is nothing to invalidate within a process: changing the workload,
  scale, framework or seed produces a different cache, never a stale hit.
* **Transparency**: restoring a snapshot is byte-equivalent to re-running
  the warm-up under the same config (locked in by
  ``tests/test_warmup_cache.py``), so caching changes wall-clock only —
  metrics digests are identical with the cache on or off.

Stateless policies (``learns_across_jobs`` false) are never warmed at all:
a warm-up simulation shares nothing with the measured one except the policy
object, so for a policy without cross-job state it is pure waste.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.policies import make_policy
from repro.simulator.engine import Simulation, SimulationConfig
from repro.workload.synthetic import GeneratedWorkload


def policy_learns(name: str) -> bool:
    """True if the named policy carries cross-job state (needs warm-up)."""
    return make_policy(name).learns_across_jobs


def check_warmup_seed_collision(
    warmup_seed: int, measured_seeds: Sequence[int]
) -> None:
    """Reject a warm-up seed that is also a measured run seed.

    A measured run whose simulation seed equals the warm-up seed replays the
    exact cluster and straggler draws the policy just warmed up on, silently
    biasing learning policies toward that one seed.  Nothing downstream can
    tell the two runs apart, so the collision must be refused up front.
    """
    if warmup_seed in measured_seeds:
        raise ValueError(
            f"warm-up seed collision: measured seed {warmup_seed} equals the "
            "derived warm-up seed (workload seed + WARMUP_SEED_OFFSET), so the "
            "measured run would replay the exact simulation the policy warmed "
            "up on; pick different run seeds or disable warm-up"
        )


def warm_policy_snapshot(
    policy_name: str,
    warmup: GeneratedWorkload,
    warmup_config: SimulationConfig,
) -> object:
    """Warm a fresh instance of ``policy_name`` and return its state snapshot."""
    policy = make_policy(policy_name)
    Simulation(warmup_config, policy, warmup.specs()).run()
    return policy.state_snapshot()


def _warm_one(args: Tuple[str, GeneratedWorkload, SimulationConfig]) -> object:
    """Pool trampoline for :func:`warm_policy_snapshot`."""
    return warm_policy_snapshot(*args)


class WarmupCache:
    """Memoised warm-up snapshots for one (warm-up workload, config) pair.

    ``measured_seeds`` (when given) are the simulation seeds of the runs the
    warm-ups will serve; the constructor refuses a warm-up seed that is also
    a measured seed (see :func:`check_warmup_seed_collision`).
    """

    def __init__(
        self,
        warmup: GeneratedWorkload,
        warmup_config: SimulationConfig,
        measured_seeds: Sequence[int] = (),
    ) -> None:
        check_warmup_seed_collision(warmup_config.seed, measured_seeds)
        self.warmup = warmup
        self.warmup_config = warmup_config
        self._snapshots: Dict[Tuple[str, int], object] = {}
        self.hits = 0
        self.misses = 0

    def _key(self, policy_name: str) -> Tuple[str, int]:
        return (policy_name, self.warmup_config.seed)

    def snapshot_for(self, policy_name: str) -> object:
        """The warmed state snapshot for one learning policy (memoised)."""
        key = self._key(policy_name)
        if key in self._snapshots:
            self.hits += 1
            return self._snapshots[key]
        self.misses += 1
        snapshot = warm_policy_snapshot(policy_name, self.warmup, self.warmup_config)
        self._snapshots[key] = snapshot
        return snapshot

    def prewarm(self, policy_names: Sequence[str], workers: int = 1) -> None:
        """Warm every *learning* policy in ``policy_names``, possibly in parallel.

        With ``workers > 1`` the independent warm-up simulations fan out over
        a pool (snapshots are plain data, so they pickle home cleanly); the
        pool is sized to the number of cache misses, never larger.  Results
        land in the memo, so later :meth:`snapshot_for` calls are hits.
        """
        missing = [
            name
            for name in dict.fromkeys(policy_names)  # preserve order, dedupe
            if policy_learns(name) and self._key(name) not in self._snapshots
        ]
        if not missing:
            return
        if workers > 1 and len(missing) > 1:
            pool_size = min(workers, len(missing))
            with multiprocessing.Pool(processes=pool_size) as pool:
                snapshots: List[object] = pool.map(
                    _warm_one,
                    [(name, self.warmup, self.warmup_config) for name in missing],
                )
            for name, snapshot in zip(missing, snapshots):
                self._snapshots[self._key(name)] = snapshot
                self.misses += 1
        else:
            for name in missing:
                self.snapshot_for(name)

    def snapshot_if_learning(self, policy_name: str) -> Optional[object]:
        """Snapshot for a learning policy, None for a stateless one."""
        if not policy_learns(policy_name):
            return None
        return self.snapshot_for(policy_name)

"""The analyzer's output type and its JSON codec.

A :class:`Finding` is one rule violation anchored to a file, line and
column, carrying the offending source line so reports are readable
without opening the file.  The JSON form round-trips exactly
(:func:`findings_to_json` / :func:`findings_from_json`) so CI artifacts
and downstream tooling can consume the analyzer's output without parsing
the text report.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``.

    Field order defines sort order: findings group by file, then by
    position, then by rule — the deterministic report order every output
    format uses.
    """

    path: str
    line: int  # 1-based, like compilers and editors
    col: int  # 0-based, matching ast.AST.col_offset
    rule_id: str
    message: str
    source: str  # the offending source line, stripped of trailing newline

    def format_text(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        lines = [f"{location}: {self.rule_id} {self.message}"]
        if self.source.strip():
            lines.append(f"    {self.source.strip()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        known = {field: payload[field] for field in cls.__dataclass_fields__}
        unknown = set(payload) - set(known)
        if unknown:
            raise ValueError(f"unknown finding fields: {sorted(unknown)}")
        return cls(**known)  # type: ignore[arg-type]


def findings_to_json(findings: Sequence[Finding], *, files_scanned: int) -> str:
    """Serialise ``findings`` to the versioned JSON report format."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def findings_from_json(text: str) -> List[Finding]:
    """Parse a report produced by :func:`findings_to_json` (exact inverse)."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("analysis report must be a JSON object")
    version = payload.get("version")
    if version != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported analysis report version {version!r} "
            f"(expected {JSON_SCHEMA_VERSION})"
        )
    raw = payload.get("findings")
    if not isinstance(raw, list):
        raise ValueError("analysis report has no 'findings' list")
    return [Finding.from_dict(entry) for entry in raw]

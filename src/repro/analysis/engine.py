"""Analysis driver: file discovery, scoping, rule dispatch, suppression.

The engine turns a list of paths into sorted :class:`Finding`\\ s:

1. discover ``*.py`` files (``__pycache__`` and the deliberately-violating
   fixture corpus under ``tests/fixtures/analysis/`` are skipped);
2. derive each file's *module scope* from its path (``src/repro/...`` →
   ``repro....``), which decides which rules apply;
3. run every applicable rule over one shared AST parse;
4. drop findings suppressed by a well-formed reasoned pragma on the same
   line (or a standalone pragma on the line above), and surface malformed
   pragmas as ``PRG001`` findings.

File order, rule order and finding order are all sorted — the analyzer
holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_RULE_ID, scan_pragmas
from repro.analysis.rules import RULES, FileContext

__all__ = [
    "AnalysisError",
    "DEFAULT_PATHS",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

# What `grass-experiments analyze` scans when given no paths: everything
# the lint pass covers.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "scripts", "examples")

# The fixture corpus exists to *violate* rules; walking it would drown the
# report.  Tests analyze those files one by one via analyze_file().
_SKIPPED_DIR_SUFFIXES = (("tests", "fixtures", "analysis"),)

_RULE_IDS = tuple(rule.id for rule in RULES)


class AnalysisError(Exception):
    """A path argument the analyzer cannot work with."""


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``*.py`` files under ``paths`` in sorted order.

    Directories are walked recursively; explicit file arguments are
    yielded as given (even fixture files — explicit wins).  Missing paths
    raise :class:`AnalysisError` so a typo'd CI invocation fails loudly
    instead of passing on an empty scan.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if name != "__pycache__" and not _skipped_dir(dirpath, name)
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _skipped_dir(dirpath: str, name: str) -> bool:
    parts = tuple(os.path.normpath(os.path.join(dirpath, name)).split(os.sep))
    return any(
        parts[-len(suffix):] == suffix for suffix in _SKIPPED_DIR_SUFFIXES
    )


def _module_of(path: str) -> Tuple[str, ...]:
    """Module scope of ``path``: the dotted parts after a ``src/`` root.

    ``src/repro/simulator/engine.py`` → ``("repro", "simulator", "engine")``;
    anything not under a ``src`` directory (tests, benchmarks, scripts) has
    no module scope and only the everywhere-rules apply.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "src" in parts:
        tail = parts[parts.index("src") + 1:]
    elif parts and parts[0] == "repro":
        tail = parts
    else:
        return ()
    if not tail:
        return ()
    tail = list(tail)
    tail[-1] = tail[-1][:-3] if tail[-1].endswith(".py") else tail[-1]
    if tail[-1] == "__init__":
        tail.pop()
    return tuple(tail)


def _is_test_path(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    filename = parts[-1]
    return (
        "tests" in parts[:-1]
        or filename.startswith("test_")
        or filename == "conftest.py"
    )


def analyze_source(
    source: str,
    path: str,
    *,
    module: Optional[Tuple[str, ...]] = None,
    is_test: Optional[bool] = None,
) -> List[Finding]:
    """Analyze ``source`` as if it lived at ``path``.

    ``module`` and ``is_test`` override the path-derived scope — this is
    how fixture files are analyzed under a virtual location (e.g. a
    fixture exercising a simulator-only rule passes
    ``module=("repro", "simulator", "fixture")``).
    """
    if module is None:
        module = _module_of(path)
    if is_test is None:
        is_test = _is_test_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = (exc.offset or 1) - 1
        lines = source.splitlines()
        return [
            Finding(
                path=path,
                line=line,
                col=max(col, 0),
                rule_id="SYN000",
                message=f"file does not parse: {exc.msg}",
                source=lines[line - 1] if line - 1 < len(lines) else "",
            )
        ]
    ctx = FileContext(
        path=path,
        module=module,
        tree=tree,
        lines=source.splitlines(),
        is_test=is_test,
    )
    pragmas_by_line, pragma_errors = scan_pragmas(source, _RULE_IDS)
    findings: List[Finding] = []
    for error in pragma_errors:
        findings.append(
            Finding(
                path=path,
                line=error.line,
                col=error.col,
                rule_id=PRAGMA_RULE_ID,
                message=error.message,
                source=error.source,
            )
        )
    for rule in RULES:
        if not rule.applies(ctx):
            continue
        for line, col, message in rule.visit(ctx):
            allowed = any(
                rule.id in pragma.rule_ids
                for pragma in pragmas_by_line.get(line, ())
            )
            if allowed:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule_id=rule.id,
                    message=message,
                    source=ctx.source_line(line),
                )
            )
    return sorted(findings)


def analyze_file(
    path: str,
    *,
    module: Optional[Tuple[str, ...]] = None,
    is_test: Optional[bool] = None,
) -> List[Finding]:
    """Analyze one file on disk (see :func:`analyze_source` for overrides)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path, module=module, is_test=is_test)


def analyze_paths(paths: Sequence[str]) -> Tuple[List[Finding], int]:
    """Analyze every Python file under ``paths``.

    Returns ``(findings, files_scanned)`` with findings in deterministic
    (path, line, col, rule) order.
    """
    findings: List[Finding] = []
    files_scanned = 0
    for path in iter_python_files(paths):
        files_scanned += 1
        findings.extend(analyze_file(path))
    return sorted(findings), files_scanned

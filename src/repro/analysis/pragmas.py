"""``# repro: allow[RULE-ID] reason`` pragma parsing.

A pragma suppresses the named rule(s) on its own line — or, when the
comment stands alone on a line, on the next code line (for constructs too
long to share a line with their justification).  The reason is
*required*: a pragma that does not say why the violation is safe is
itself reported as a :data:`PRAGMA_RULE_ID` finding and suppresses
nothing.  So is a pragma naming a rule id the registry does not know —
otherwise a typo (``DET01``) would silently disable nothing while
looking like an approved exception.

Pragmas are found with :mod:`tokenize` rather than a line-by-line regex
so a ``# repro: allow[...]`` inside a string literal is never mistaken
for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

# Findings produced by the pragma parser itself (malformed suppressions).
PRAGMA_RULE_ID = "PRG001"

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)\Z")
_RULE_ID_RE = re.compile(r"\A[A-Z]{3}\d{3}\Z")


@dataclass(frozen=True)
class Pragma:
    """One parsed suppression comment."""

    line: int  # line the comment sits on (1-based)
    applies_to: int  # line whose findings it suppresses
    rule_ids: Tuple[str, ...]
    reason: str
    standalone: bool  # comment was the only thing on its line


@dataclass(frozen=True)
class PragmaError:
    """A malformed pragma: missing reason or unknown rule id."""

    line: int
    col: int
    message: str
    source: str


def scan_pragmas(
    source: str, known_rule_ids: Tuple[str, ...]
) -> Tuple[Dict[int, List[Pragma]], List[PragmaError]]:
    """Parse every pragma comment in ``source``.

    Returns ``(by_line, errors)`` where ``by_line`` maps a *code* line
    number to the pragmas suppressing findings on it.  Malformed pragmas
    land in ``errors`` and never suppress anything.
    """
    lines = source.splitlines()
    pragmas: List[Pragma] = []
    errors: List[PragmaError] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST pass reports the syntax error; nothing to suppress here.
        return {}, []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.match(token.string)
        if match is None:
            continue
        row, col = token.start
        source_line = lines[row - 1] if row - 1 < len(lines) else token.string
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        problems = []
        if not rule_ids:
            problems.append("names no rule id")
        bad_ids = [rule for rule in rule_ids if not _RULE_ID_RE.match(rule)]
        unknown = [
            rule
            for rule in rule_ids
            if _RULE_ID_RE.match(rule) and rule not in known_rule_ids
        ]
        if bad_ids:
            problems.append(f"malformed rule id(s) {', '.join(bad_ids)}")
        if unknown:
            problems.append(f"unknown rule id(s) {', '.join(unknown)}")
        if not reason:
            problems.append("is missing the required reason")
        if problems:
            errors.append(
                PragmaError(
                    line=row,
                    col=col,
                    message=(
                        "pragma " + " and ".join(problems) + " — write "
                        "'# repro: allow[RULE-ID] why this is safe' "
                        "(the reason is mandatory; it suppresses nothing as is)"
                    ),
                    source=source_line,
                )
            )
            continue
        standalone = source_line[:col].strip() == ""
        applies_to = row
        if standalone:
            # A comment-only line covers the next code line.
            applies_to = _next_code_line(lines, row)
        pragmas.append(
            Pragma(
                line=row,
                applies_to=applies_to,
                rule_ids=rule_ids,
                reason=reason,
                standalone=standalone,
            )
        )
    by_line: Dict[int, List[Pragma]] = {}
    for pragma in pragmas:
        by_line.setdefault(pragma.applies_to, []).append(pragma)
    return by_line, errors


def _next_code_line(lines: List[str], comment_line: int) -> int:
    """First line after ``comment_line`` that holds code (not blank/comment)."""
    for offset, text in enumerate(lines[comment_line:], start=comment_line + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return comment_line  # dangling pragma at EOF: applies to itself (no-op)

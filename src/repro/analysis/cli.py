"""``grass-experiments analyze`` — run the determinism & safety linter.

Exit codes follow linter convention: ``0`` clean, ``1`` findings, ``2``
usage error.  ``--format json`` emits the versioned report schema
(:mod:`repro.analysis.findings`); ``--list-rules`` prints the registry
with each rule's rationale.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from typing import List, Optional

from repro.analysis.engine import DEFAULT_PATHS, AnalysisError, analyze_paths
from repro.analysis.findings import findings_to_json
from repro.analysis.rules import rule_table

__all__ = ["build_analyze_parser", "analyze_main"]


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grass-experiments analyze",
        description="Statically enforce the determinism, pickle-safety and "
        "async-hygiene invariants the replay digest matrix checks "
        "dynamically. Suppress a deliberate violation with "
        "'# repro: allow[RULE-ID] reason' on the offending line (or a "
        "standalone comment on the line above); the reason is mandatory.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable text (default) or the "
        "versioned JSON schema",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (id, what it catches, why) and exit",
    )
    return parser


def _print_rules() -> None:
    for rule_id, synopsis, rationale in rule_table():
        print(f"{rule_id}  {synopsis}")
        for line in textwrap.wrap(rationale, width=72):
            print(f"       {line}")


def analyze_main(argv: List[str]) -> int:
    args = build_analyze_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    try:
        findings, files_scanned = analyze_paths(args.paths)
    except AnalysisError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(findings_to_json(findings, files_scanned=files_scanned))
        return 1 if findings else 0
    for finding in findings:
        print(finding.format_text())
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"analyze: {len(findings)} {noun} in {files_scanned} files "
            "(suppress deliberate ones with '# repro: allow[RULE-ID] reason')"
        )
        return 1
    print(f"analyze: clean ({files_scanned} files scanned)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    return analyze_main(sys.argv[1:] if argv is None else argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The analyzer's rule registry: what each rule catches and why.

Rules are small AST passes over one file.  Each declares:

* ``id`` — stable identifier used in reports and pragmas (``DET001``);
* ``synopsis`` — one line: what the rule catches;
* ``rationale`` — why the replay digest (or the executor, or the event
  loop) cares;
* ``applies(ctx)`` — the path scope.  Determinism rules watch the
  digest-affecting packages (``repro.simulator``/``core``/``workload``/
  ``experiments``); pickle rules watch all of ``src``; async rules watch
  ``repro.service``.  Tests and benchmarks are scanned too, but only the
  rules whose scope says so fire there — a test may compare floats
  exactly, library code may not.

Scopes are derived from the *module path* (``repro.simulator.engine``),
not the filesystem root, so fixture sources can be analyzed under a
virtual path (see ``tests/fixtures/analysis/``).

Adding a rule: subclass :class:`Rule`, fill in the class attributes and
``visit``, and append it to :data:`RULES`.  The pragma parser, CLI table
and README all read from the registry, so one list is the whole story.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["FileContext", "RawFinding", "Rule", "RULES", "rule_table"]

# Packages whose code can reach the per-result digest fold: anything
# nondeterministic here shows up as a digest mismatch in the replay matrix.
DIGEST_PACKAGES = ("core", "experiments", "simulator", "workload")


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being analyzed."""

    path: str  # path used in findings (possibly virtual, for fixtures)
    module: Tuple[str, ...]  # ("repro", "simulator", "engine") or () outside src
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    is_test: bool = False

    @property
    def in_src(self) -> bool:
        return self.module[:1] == ("repro",)

    @property
    def in_digest_packages(self) -> bool:
        return len(self.module) >= 2 and self.module[1] in DIGEST_PACKAGES

    @property
    def in_service(self) -> bool:
        return self.module[:2] == ("repro", "service")

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


# (line, col, message) — the engine attaches path/source and applies pragmas.
RawFinding = Tuple[int, int, str]


class Rule:
    id: ClassVar[str]
    synopsis: ClassVar[str]
    rationale: ClassVar[str]

    def applies(self, ctx: FileContext) -> bool:
        raise NotImplementedError

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        raise NotImplementedError


def _dotted(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module, module: str) -> Tuple[Set[str], Dict[str, str]]:
    """Names bound to ``module`` and to objects imported from it.

    Returns ``(module_names, member_names)`` where ``module_names`` holds
    every local name referring to the module itself (``import random as
    rnd`` binds ``rnd``) and ``member_names`` maps each local name bound
    by ``from module import member [as alias]`` to the member's real name.
    """
    module_names: Set[str] = set()
    member_names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    module_names.add(alias.asname or module)
        elif isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                member_names[alias.asname or alias.name] = alias.name
    return module_names, member_names


# Functions on the random module that draw from the shared global RNG.
_MODULE_RNG_FUNCS = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices", "expovariate",
        "gammavariate", "gauss", "getrandbits", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint", "random",
        "randrange", "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)


class UnseededRandom(Rule):
    id = "DET001"
    synopsis = (
        "unseeded random.Random() construction or module-level random.* calls"
    )
    rationale = (
        "an RNG seeded from OS entropy (or the shared module-global RNG, "
        "whose state any import can perturb) makes every replay draw "
        "different values — digests diverge between runs and between "
        "workers; derive streams from repro.utils.rng.RngStream instead"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        module_names, members = _import_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.Random() / rnd.Random() / Random() with no seed argument.
            rng_class: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("Random", "SystemRandom")
                and isinstance(func.value, ast.Name)
                and func.value.id in module_names
            ):
                rng_class = func.attr
            elif (
                isinstance(func, ast.Name)
                and members.get(func.id) in ("Random", "SystemRandom")
            ):
                rng_class = members[func.id]
            if rng_class is not None:
                if rng_class == "SystemRandom":
                    yield (
                        node.lineno,
                        node.col_offset,
                        "SystemRandom draws OS entropy and can never replay "
                        "deterministically",
                    )
                elif not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "random.Random() without a seed draws OS entropy; "
                        "pass an explicit seed (or derive one from "
                        "repro.utils.rng.RngStream)",
                    )
                continue
            # random.random() / random.choice(...) — the shared global RNG.
            called: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_names
                and func.attr in _MODULE_RNG_FUNCS
            ):
                called = f"{func.value.id}.{func.attr}"
            elif (
                isinstance(func, ast.Name)
                and members.get(func.id) in _MODULE_RNG_FUNCS
            ):
                called = func.id
            if called is not None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{called}() uses the process-global RNG whose state any "
                    "import or library call can perturb; use a seeded "
                    "random.Random/RngStream instance",
                )


# Call suffixes that read wall-clock time or OS entropy.  Matching on the
# dotted suffix covers both `time.time()` and `datetime.datetime.now()`.
_WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
)
# Bare names these modules export that are wall-clock/entropy reads when
# imported with `from time import time`-style imports.
_WALL_CLOCK_MEMBERS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
    },
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
}


class WallClockRead(Rule):
    id = "DET002"
    synopsis = (
        "wall-clock/entropy reads (time.time, datetime.now, perf_counter, "
        "os.urandom, uuid4) in digest-affecting packages"
    )
    rationale = (
        "simulated time is the only clock the digest fold may observe; a "
        "wall-clock read that leaks into results, seeds or event order "
        "differs on every run and machine, so the 8-way replay matrix "
        "cannot stay byte-identical"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_digest_packages

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        bare: Dict[str, str] = {}
        for module, wanted in _WALL_CLOCK_MEMBERS.items():
            _, members = _import_aliases(ctx.tree, module)
            for local, real in members.items():
                if real in wanted:
                    bare[local] = f"{module}.{real}"
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            label: Optional[str] = None
            if dotted is not None and dotted.count(".") >= 1:
                for suffix in _WALL_CLOCK_SUFFIXES:
                    if dotted == suffix or dotted.endswith("." + suffix):
                        label = dotted
                        break
            elif isinstance(node.func, ast.Name) and node.func.id in bare:
                label = f"{node.func.id} (= {bare[node.func.id]})"
            if label is not None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{label}() reads the wall clock or OS entropy inside a "
                    "digest-affecting package; thread simulated time or an "
                    "explicit seed through instead",
                )


class UnorderedIteration(Rule):
    id = "DET003"
    synopsis = (
        "iteration over set values or os.listdir/glob results without sorted()"
    )
    rationale = (
        "set iteration order depends on insertion history and hash "
        "randomization, and the OS returns directory entries in on-disk "
        "order — any of them feeding the event stream or the digest fold "
        "reorders results between runs; wrap the iterable in sorted()"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_digest_packages

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        iter_nodes: List[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_nodes.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_nodes.extend(gen.iter for gen in node.generators)
        for expr in iter_nodes:
            problem = self._unordered(expr)
            if problem is not None:
                yield (
                    expr.lineno,
                    expr.col_offset,
                    f"iterating over {problem} yields an unstable order; "
                    "wrap it in sorted() before it can touch event or "
                    "result order",
                )

    @staticmethod
    def _unordered(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted in ("set", "frozenset"):
                return f"{dotted}(...)"
            if dotted is not None:
                for unordered in ("os.listdir", "glob.glob", "glob.iglob"):
                    if dotted == unordered or dotted.endswith("." + unordered):
                        return f"{dotted}(...)"
            if isinstance(expr.func, ast.Attribute) and expr.func.attr == "iterdir":
                return "Path.iterdir(...)"
        return None


class FloatEquality(Rule):
    id = "DET004"
    synopsis = "float == / != comparisons outside tests"
    rationale = (
        "float equality silently depends on accumulation order, so code "
        "that branches on it can take different paths when a refactor "
        "reassociates a sum — a digest change with no visible diff; use "
        "math.isclose, compare integers, or pragma an exact sentinel check"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(self._floatish(operand) for operand in operands):
                yield (
                    node.lineno,
                    node.col_offset,
                    "== / != against a float compares bit patterns, not "
                    "values; use math.isclose or an integer/sentinel "
                    "representation",
                )

    @staticmethod
    def _floatish(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return True
        if isinstance(expr, ast.UnaryOp):
            return FloatEquality._floatish(expr.operand)
        if isinstance(expr, ast.Call) and _dotted(expr.func) == "float":
            return True
        return False


# Call sites whose arguments cross a pickle boundary into worker processes.
_PICKLE_BOUNDARIES = ("ParallelExecutor", "RunRequest", "SinkFactory")


class UnpicklableCallable(Rule):
    id = "PIC101"
    synopsis = (
        "lambdas, nested functions or bound methods passed into "
        "ParallelExecutor/RunRequest/SinkFactory call sites"
    )
    rationale = (
        "these arguments are pickled to worker processes; lambdas, "
        "functions defined inside functions and bound methods fail (or "
        "drag their whole enclosing state across), surfacing only when a "
        "multi-worker replay first runs — pass a module-level callable or "
        "a picklable factory object"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        findings: List[RawFinding] = []
        _PickleBoundaryVisitor(findings).visit(ctx.tree)
        return iter(findings)


class _PickleBoundaryVisitor(ast.NodeVisitor):
    """Tracks nested-function and method names to judge call arguments."""

    def __init__(self, findings: List[RawFinding]) -> None:
        self.findings = findings
        self._function_depth = 0
        self._nested_functions: List[Set[str]] = []
        self._class_methods: List[Set[str]] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._class_methods.append(methods)
        self.generic_visit(node)
        self._class_methods.pop()

    def _visit_function(self, node: ast.AST) -> None:
        if self._function_depth > 0 and self._nested_functions:
            self._nested_functions[-1].add(node.name)  # type: ignore[attr-defined]
        self._function_depth += 1
        self._nested_functions.append(set())
        self.generic_visit(node)
        self._nested_functions.pop()
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name in _PICKLE_BOUNDARIES:
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                problem = self._unpicklable(value)
                if problem is not None:
                    self.findings.append(
                        (
                            value.lineno,
                            value.col_offset,
                            f"{problem} passed to {func_name}(...) cannot "
                            "cross the worker-process pickle boundary",
                        )
                    )
        self.generic_visit(node)

    def _unpicklable(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name):
            for scope in self._nested_functions:
                if value.id in scope:
                    return f"nested function '{value.id}'"
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self._class_methods
            and value.attr in self._class_methods[-1]
        ):
            return f"bound method 'self.{value.attr}'"
        return None


_MUTABLE_CONSTRUCTORS = ("bytearray", "deque", "defaultdict", "dict", "list", "set")


class MutableDefault(Rule):
    id = "PIC102"
    synopsis = "mutable default arguments (def f(x=[], y={}, z=set()))"
    rationale = (
        "the default is created once at import and shared by every call — "
        "state leaks across simulations and across ParallelExecutor "
        "requests, the classic source of works-serially-fails-in-parallel "
        "bugs; default to None and construct inside the function"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                problem = self._mutable(default)
                if problem is not None:
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default {problem} is shared across calls; "
                        "use None and construct per call",
                    )

    @staticmethod
    def _mutable(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.List):
            return "[]" if not expr.elts else "[...]"
        if isinstance(expr, ast.Dict):
            return "{}" if not expr.keys else "{...}"
        if isinstance(expr, ast.Set):
            return "{...}"
        if isinstance(expr, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "a comprehension"
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted is not None and dotted.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
                return f"{dotted}(...)"
        return None


# Dotted suffixes that block the calling thread.
_BLOCKING_SUFFIXES = (
    "time.sleep", "socket.socket", "socket.create_connection",
    "requests.get", "requests.post", "urllib.request.urlopen",
)


class BlockingInAsync(Rule):
    id = "ASY201"
    synopsis = (
        "blocking calls (time.sleep, subprocess, sync sockets, open/read) "
        "lexically inside async def in repro.service"
    )
    rationale = (
        "the replay service is one event loop; a blocking call inside a "
        "coroutine stalls every tenant's stream at once and reorders "
        "delta delivery under load — await asyncio.sleep, or push the "
        "blocking work through AsyncBridge.submit"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_service

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        _, time_members = _import_aliases(ctx.tree, "time")
        bare_sleep = {
            local for local, real in time_members.items() if real == "sleep"
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan_async_body(node, bare_sleep)

    def _scan_async_body(
        self, root: ast.AsyncFunctionDef, bare_sleep: Set[str]
    ) -> Iterator[RawFinding]:
        stack: List[ast.AST] = list(root.body)
        while stack:
            node = stack.pop()
            # A nested sync def is a callback that runs elsewhere (often via
            # loop_callback); its body is not on this coroutine's hot path.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                problem = self._blocking(node, bare_sleep)
                if problem is not None:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{problem} blocks the event loop inside "
                        f"'async def {root.name}'; await an async "
                        "equivalent or offload via AsyncBridge.submit",
                    )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _blocking(node: ast.Call, bare_sleep: Set[str]) -> Optional[str]:
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        if dotted in bare_sleep:
            return f"{dotted}() (= time.sleep)"
        for suffix in _BLOCKING_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return f"{dotted}()"
        if dotted == "subprocess" or dotted.startswith("subprocess."):
            return f"{dotted}()"
        if dotted == "open":
            return "open()"
        return None


_CROSS_THREAD_CALLS = ("call_soon_threadsafe", "run_coroutine_threadsafe")


class LoopUnsafeCrossThread(Rule):
    id = "ASY202"
    synopsis = (
        "raw call_soon_threadsafe/run_coroutine_threadsafe outside "
        "AsyncBridge.loop_callback"
    )
    rationale = (
        "worker threads touching the loop directly race against shutdown "
        "and lose the FIFO ordering AsyncBridge.loop_callback guarantees "
        "(deltas must precede 'done' for clients to re-verify the "
        "digest); route cross-thread calls through the bridge"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_src

    def visit(self, ctx: FileContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CROSS_THREAD_CALLS
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"raw {node.func.attr}() bypasses "
                    "AsyncBridge.loop_callback's FIFO ordering and "
                    "lifecycle guarantees; use the bridge",
                )


RULES: Tuple[Rule, ...] = (
    UnseededRandom(),
    WallClockRead(),
    UnorderedIteration(),
    FloatEquality(),
    UnpicklableCallable(),
    MutableDefault(),
    BlockingInAsync(),
    LoopUnsafeCrossThread(),
)


def rule_table() -> List[Tuple[str, str, str]]:
    """(id, synopsis, rationale) rows, in registry order — for docs/CLI."""
    return [(rule.id, rule.synopsis, rule.rationale) for rule in RULES]

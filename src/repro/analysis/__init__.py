"""Static determinism & safety analysis for the GRASS reproduction.

Every result in this repo rests on one invariant: replay digests are
byte-identical across sinks, modes and worker counts.  The CI digest
matrix enforces that *dynamically* — after a bug has already shipped into
a branch.  This package enforces the same invariants *statically*, at
lint time, with an AST pass (stdlib :mod:`ast` only) over the tree:

* **determinism** — unseeded RNGs, wall-clock reads, unordered iteration
  and float equality in digest-affecting packages (``DET001``–``DET004``);
* **executor/pickle safety** — unpicklable callables at the
  ``ParallelExecutor``/``RunRequest``/``SinkFactory`` boundaries and
  mutable default arguments (``PIC101``–``PIC102``);
* **async hygiene** — blocking calls inside the replay service's event
  loop and loop-unsafe cross-thread calls (``ASY201``–``ASY202``).

Deliberate violations are suppressed per line with a *reasoned* pragma::

    started = time.time()  # repro: allow[DET002] wall timing for display only

A pragma without a reason is itself a finding (``PRG001``): the analyzer
records *why* each exception is safe, not just that someone silenced it.

Entry points: ``grass-experiments analyze [--format text|json] [paths...]``,
``scripts/check.sh analyze`` and :func:`repro.analysis.analyze_paths`.
"""

from repro.analysis.engine import (
    DEFAULT_PATHS,
    AnalysisError,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.findings import (
    Finding,
    findings_from_json,
    findings_to_json,
)
from repro.analysis.pragmas import PRAGMA_RULE_ID, Pragma, scan_pragmas
from repro.analysis.rules import RULES, Rule, rule_table

__all__ = [
    "AnalysisError",
    "DEFAULT_PATHS",
    "Finding",
    "PRAGMA_RULE_ID",
    "Pragma",
    "RULES",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings_from_json",
    "findings_to_json",
    "iter_python_files",
    "rule_table",
    "scan_pragmas",
]

"""Workload and framework profiles.

Two orthogonal axes mirror the paper's evaluation matrix:

* :class:`WorkloadProfile` — whose trace the job mix resembles.  ``facebook``
  (Hadoop cluster: very many small interactive Hive jobs, some large ones)
  versus ``bing`` (Dryad cluster: fewer but larger Scope jobs).
* :class:`FrameworkProfile` — which prototype executes the jobs.  ``hadoop``
  (disk-backed, longer tasks) versus ``spark`` (in-memory RDDs, much shorter
  tasks, so stragglers hurt relatively more — §6.2.1).

The numbers here are calibrated to the qualitative statements in the paper
(task-duration Pareto tail β ≈ 1.259, slowest ≈ 8× median, Spark tasks much
shorter than Hadoop's), not to the raw traces, which are proprietary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.estimators import EstimatorConfig
from repro.simulator.stragglers import StragglerConfig


@dataclass(frozen=True)
class WorkloadProfile:
    """Job-mix parameters for one trace."""

    name: str
    #: probability of a job falling in the small / medium / large bin
    bin_probabilities: Tuple[float, float, float]
    #: inclusive task-count ranges per bin
    small_tasks: Tuple[int, int]
    medium_tasks: Tuple[int, int]
    large_tasks: Tuple[int, int]
    #: mean inter-arrival time between jobs, seconds
    mean_interarrival: float
    #: sigma of the log-normal per-task data-size jitter.  Input tasks read
    #: roughly equal splits, so this is small; the heavy Pareto tail of task
    #: *durations* (Figure 3) comes from the runtime straggler model instead.
    work_jitter_sigma: float = 0.20

    def __post_init__(self) -> None:
        if abs(sum(self.bin_probabilities) - 1.0) > 1e-9:
            raise ValueError("bin probabilities must sum to 1")
        for low, high in (self.small_tasks, self.medium_tasks, self.large_tasks):
            if low <= 0 or high < low:
                raise ValueError("task-count ranges must be positive and ordered")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.work_jitter_sigma < 0:
            raise ValueError("work_jitter_sigma must be non-negative")


@dataclass(frozen=True)
class FrameworkProfile:
    """Execution-framework parameters for one prototype."""

    name: str
    #: median task work in seconds on the reference machine
    median_task_work: float
    #: straggler behaviour of the framework's executors
    stragglers: StragglerConfig
    #: estimator accuracy the prototype achieves (§5.1)
    estimator: EstimatorConfig

    def __post_init__(self) -> None:
        if self.median_task_work <= 0:
            raise ValueError("median_task_work must be positive")


_WORKLOADS: Dict[str, WorkloadProfile] = {
    "facebook": WorkloadProfile(
        name="facebook",
        bin_probabilities=(0.60, 0.30, 0.10),
        small_tasks=(5, 50),
        medium_tasks=(51, 500),
        large_tasks=(501, 1500),
        mean_interarrival=25.0,
    ),
    "bing": WorkloadProfile(
        name="bing",
        bin_probabilities=(0.45, 0.35, 0.20),
        small_tasks=(10, 50),
        medium_tasks=(51, 500),
        large_tasks=(501, 2000),
        mean_interarrival=40.0,
    ),
}

_FRAMEWORKS: Dict[str, FrameworkProfile] = {
    "hadoop": FrameworkProfile(
        name="hadoop",
        median_task_work=24.0,
        stragglers=StragglerConfig(shape=1.259, cap=12.0, median=1.0, jitter=0.05),
        estimator=EstimatorConfig(trem_noise=0.05, tnew_noise=0.05),
    ),
    "spark": FrameworkProfile(
        name="spark",
        median_task_work=4.0,
        stragglers=StragglerConfig(shape=1.2, cap=14.0, median=1.0, jitter=0.06),
        estimator=EstimatorConfig(trem_noise=0.08, tnew_noise=0.06),
    ),
}


def workload_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by name ('facebook' or 'bing')."""
    try:
        return _WORKLOADS[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown workload profile {name!r}; expected one of {sorted(_WORKLOADS)}"
        ) from exc


def framework_profile(name: str) -> FrameworkProfile:
    """Look up a framework profile by name ('hadoop' or 'spark')."""
    try:
        return _FRAMEWORKS[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown framework profile {name!r}; expected one of {sorted(_FRAMEWORKS)}"
        ) from exc


def available_workloads() -> Tuple[str, ...]:
    return tuple(sorted(_WORKLOADS))


def available_frameworks() -> Tuple[str, ...]:
    return tuple(sorted(_FRAMEWORKS))

"""Probability distributions used by the workload generator.

All distributions draw from an injected :class:`~repro.utils.rng.RngStream`
so workload generation is reproducible, and expose analytic means where they
exist (the analytic model in :mod:`repro.model` reuses the Pareto forms).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.utils.rng import RngStream


class Distribution(abc.ABC):
    """A sampleable, non-negative distribution."""

    @abc.abstractmethod
    def sample(self, rng: RngStream) -> float:
        """Draw one sample."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic (or empirical) mean."""

    def sample_many(self, rng: RngStream, count: int) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class ConstantDistribution(Distribution):
    """Degenerate distribution: always the same value."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("value must be positive")

    def sample(self, rng: RngStream) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform over [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("need 0 <= low <= high")

    def sample(self, rng: RngStream) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class ExponentialDistribution(Distribution):
    """Exponential with the given mean (inter-arrival times)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: RngStream) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class ParetoDistribution(Distribution):
    """Pareto with shape ``beta`` and scale ``xm``: P(X > x) = (xm / x) ** beta."""

    shape: float
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def sample(self, rng: RngStream) -> float:
        return rng.pareto(self.shape, self.scale)

    def mean(self) -> float:
        if self.shape <= 1.0:
            return math.inf
        return self.shape * self.scale / (self.shape - 1.0)

    def survival(self, x: float) -> float:
        """P(X > x)."""
        if x <= self.scale:
            return 1.0
        return (self.scale / x) ** self.shape

    def quantile(self, q: float) -> float:
        """Inverse CDF."""
        if not 0.0 <= q < 1.0:
            raise ValueError("q must be in [0, 1)")
        return self.scale / ((1.0 - q) ** (1.0 / self.shape))


@dataclass(frozen=True)
class BoundedParetoDistribution(Distribution):
    """Pareto truncated (by rejection at the cap) to [scale, cap].

    Used for task-size skew so a single pathological draw cannot dominate an
    experiment while keeping the heavy-tailed body the paper measures.
    """

    shape: float
    scale: float
    cap: float

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.cap <= self.scale:
            raise ValueError("cap must exceed scale")

    def sample(self, rng: RngStream) -> float:
        return rng.bounded_pareto(self.shape, self.scale, self.cap)

    def mean(self) -> float:
        # Mean of a (clipped-at-cap) Pareto: E[min(X, cap)].
        beta, xm, cap = self.shape, self.scale, self.cap
        # repro: allow[DET004] analytic special case: the closed form divides by (beta - 1)
        if beta == 1.0:
            body = xm * math.log(cap / xm)
        else:
            body = (beta * xm / (beta - 1.0)) * (1.0 - (xm / cap) ** (beta - 1.0))
        tail = cap * (xm / cap) ** beta
        return body + tail


@dataclass(frozen=True)
class LogNormalDistribution(Distribution):
    """Log-normal with parameters mu and sigma of the underlying normal."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: RngStream) -> float:
        return rng.lognormal(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)


class EmpiricalDistribution(Distribution):
    """Resampling distribution over observed values (trace replay)."""

    def __init__(self, values: Sequence[float]) -> None:
        cleaned = [float(v) for v in values if v > 0]
        if not cleaned:
            raise ValueError("need at least one positive value")
        self._values = cleaned

    def sample(self, rng: RngStream) -> float:
        return rng.choice(self._values)

    def mean(self) -> float:
        return sum(self._values) / len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

"""Workload synthesis: the stand-in for the Facebook and Bing production traces.

The original traces (575 K Facebook Hadoop jobs, 500 K Bing Dryad jobs) are
proprietary; this package generates synthetic workloads calibrated to every
property the paper publishes about them — heavy-tailed (Pareto, β ≈ 1.259)
task durations, slowest-task ≈ 8× median, the small/medium/large job-size
mix, multi-waved execution, and the §6.1 recipe for assigning deadlines
(2–20 % over the ideal duration) and error bounds (5–30 %).
"""

from repro.workload.bins import (
    DEADLINE_BINS,
    ERROR_BINS,
    JOB_SIZE_BINS,
    deadline_bin_label,
    error_bin_label,
)
from repro.workload.distributions import (
    BoundedParetoDistribution,
    ConstantDistribution,
    Distribution,
    EmpiricalDistribution,
    ExponentialDistribution,
    LogNormalDistribution,
    ParetoDistribution,
    UniformDistribution,
)
from repro.workload.profiles import (
    FrameworkProfile,
    WorkloadProfile,
    framework_profile,
    workload_profile,
)
from repro.workload.ingest import (
    INGEST_FORMATS,
    IngestStats,
    ingest_trace,
    iter_ingested_trace,
)
from repro.workload.synthetic import SyntheticWorkloadGenerator, WorkloadConfig
from repro.workload.trace_replay import (
    ClusterSpecSource,
    ClusterTierConfig,
    TraceReplayConfig,
    TraceWorkload,
    cluster_trace_job,
    export_trace,
    iter_cluster_trace,
    slice_trace,
    synthesize_trace,
    trace_to_workload,
)
from repro.workload.traces import (
    TraceFormatError,
    TraceJob,
    TraceSummary,
    load_trace,
    save_trace,
    scan_jobs,
    scan_trace,
    summarize_trace,
    trace_from_specs,
)

__all__ = [
    "DEADLINE_BINS",
    "ERROR_BINS",
    "JOB_SIZE_BINS",
    "deadline_bin_label",
    "error_bin_label",
    "Distribution",
    "ConstantDistribution",
    "UniformDistribution",
    "ExponentialDistribution",
    "ParetoDistribution",
    "BoundedParetoDistribution",
    "LogNormalDistribution",
    "EmpiricalDistribution",
    "FrameworkProfile",
    "WorkloadProfile",
    "framework_profile",
    "workload_profile",
    "SyntheticWorkloadGenerator",
    "WorkloadConfig",
    "ClusterSpecSource",
    "ClusterTierConfig",
    "INGEST_FORMATS",
    "IngestStats",
    "TraceFormatError",
    "TraceJob",
    "TraceReplayConfig",
    "TraceSummary",
    "TraceWorkload",
    "cluster_trace_job",
    "export_trace",
    "ingest_trace",
    "iter_cluster_trace",
    "iter_ingested_trace",
    "load_trace",
    "save_trace",
    "scan_jobs",
    "scan_trace",
    "slice_trace",
    "summarize_trace",
    "synthesize_trace",
    "trace_from_specs",
    "trace_to_workload",
]
